//! The standard (restricted) chase with target tgds and egds over annotated
//! instances.
//!
//! Starting from `CSol_A(S)`, the chase repairs target-constraint violations:
//! tgd triggers add (annotated) head tuples with fresh nulls for existential
//! variables; egd triggers equate values — merging two nulls, or a null and
//! a constant; two distinct constants make the chase **fail** (no solution).
//! For weakly acyclic dependencies ([`crate::target_deps::is_weakly_acyclic`])
//! the chase terminates; a step limit backstops the general case.
//!
//! Annotation policy (a design decision the paper leaves open, §6): tuples
//! added by tgds carry the tgd's own head annotations; when an egd merges a
//! null into another value, tuples are rewritten in place and keep their
//! annotations. This conservatively extends the paper's semantics: the
//! all-closed fragment reproduces the CWA chase of
//! [Hernich–Schweikardt'07].

use crate::mapping::Mapping;
use crate::target_deps::{Egd, TargetDep, Tgd};
use dx_logic::Term;
use dx_relation::{
    AnnInstance, AnnTuple, Instance, NullGen, NullId, RelSym, Tuple, Valuation, Value, Var,
};
use std::collections::BTreeMap;

/// Why a chase run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// All dependencies satisfied.
    Satisfied,
    /// An egd required two distinct constants to be equal — no solution
    /// exists.
    Failed {
        /// The clashing constants.
        left: Value,
        /// The clashing constants.
        right: Value,
    },
    /// The step limit was reached (possible for non-weakly-acyclic sets).
    StepLimit,
}

/// Result of chasing an annotated instance.
#[derive(Clone, Debug)]
pub struct ChaseResult {
    /// The chased instance (meaningful for `Satisfied`; best-effort
    /// otherwise).
    pub instance: AnnInstance,
    /// Number of chase steps applied.
    pub steps: usize,
    /// Outcome.
    pub outcome: ChaseOutcome,
}

/// Default step limit for the chase.
pub const DEFAULT_CHASE_LIMIT: usize = 10_000;

/// Chase `instance` with `deps` (standard/restricted chase: a tgd fires only
/// when its head is not already satisfiable). `gen` supplies fresh nulls.
pub fn chase(
    mut instance: AnnInstance,
    deps: &[TargetDep],
    gen: &mut NullGen,
    max_steps: usize,
) -> ChaseResult {
    let mut steps = 0usize;
    loop {
        if steps >= max_steps {
            return ChaseResult {
                instance,
                steps,
                outcome: ChaseOutcome::StepLimit,
            };
        }
        let mut fired = false;
        for dep in deps {
            match dep {
                TargetDep::Tgd(tgd) => {
                    if let Some(asg) = find_unsatisfied_trigger(&instance, tgd) {
                        apply_tgd(&mut instance, tgd, &asg, gen);
                        steps += 1;
                        fired = true;
                        break;
                    }
                }
                TargetDep::Egd(egd) => match find_egd_violation(&instance, egd) {
                    Some((Value::Const(a), Value::Const(b))) => {
                        return ChaseResult {
                            instance,
                            steps,
                            outcome: ChaseOutcome::Failed {
                                left: Value::Const(a),
                                right: Value::Const(b),
                            },
                        };
                    }
                    Some((l, r)) => {
                        merge_values(&mut instance, l, r);
                        steps += 1;
                        fired = true;
                        break;
                    }
                    None => {}
                },
            }
        }
        if !fired {
            return ChaseResult {
                instance,
                steps,
                outcome: ChaseOutcome::Satisfied,
            };
        }
    }
}

/// Chase the canonical solution of `mapping` on `source` with target
/// dependencies (the data-exchange-with-constraints pipeline of §6's cited
/// works), using the reference [`crate::strategy::NaiveChase`] engine.
///
/// Performance-sensitive callers should prefer
/// [`crate::strategy::canonical_solution_with_deps_via`] with
/// `dx_engine::IndexedChase`.
pub fn canonical_solution_with_deps(
    mapping: &Mapping,
    deps: &[TargetDep],
    source: &Instance,
    max_steps: usize,
) -> ChaseResult {
    crate::strategy::canonical_solution_with_deps_via(
        &crate::strategy::NaiveChase,
        mapping,
        deps,
        source,
        max_steps,
    )
}

/// Does the (naive-table reading of the) instance satisfy all dependencies?
pub fn satisfies_deps(instance: &AnnInstance, deps: &[TargetDep]) -> bool {
    deps.iter().all(|dep| match dep {
        TargetDep::Tgd(tgd) => find_unsatisfied_trigger(instance, tgd).is_none(),
        TargetDep::Egd(egd) => find_egd_violation(instance, egd).is_none(),
    })
}

/// Find an assignment satisfying the tgd's body whose head has no extension
/// into the instance (a *restricted-chase* trigger).
fn find_unsatisfied_trigger(instance: &AnnInstance, tgd: &Tgd) -> Option<BTreeMap<Var, Value>> {
    let rel_part = instance.rel_part();
    let mut found = None;
    for_each_body_match(&rel_part, &tgd.body, &mut |asg| {
        if !head_satisfiable(&rel_part, tgd, asg) {
            found = Some(asg.clone());
            true // stop
        } else {
            false
        }
    });
    found
}

/// Can the tgd's head be satisfied under `asg` with *some* values for the
/// existential variables (drawn from the instance's tuples)?
fn head_satisfiable(rel_part: &Instance, tgd: &Tgd, asg: &BTreeMap<Var, Value>) -> bool {
    // Backtracking over head atoms, extending asg on existential variables.
    fn go(
        rel_part: &Instance,
        atoms: &[crate::std_dep::TargetAtom],
        i: usize,
        asg: &mut BTreeMap<Var, Value>,
    ) -> bool {
        if i == atoms.len() {
            return true;
        }
        let atom = &atoms[i];
        'tuples: for tuple in rel_part.tuples(atom.rel) {
            let mut bound: Vec<Var> = Vec::new();
            for (j, term) in atom.args.iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        if tuple.get(j) != Value::Const(*c) {
                            for v in bound.drain(..) {
                                asg.remove(&v);
                            }
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => match asg.get(v) {
                        Some(&val) => {
                            if tuple.get(j) != val {
                                for v in bound.drain(..) {
                                    asg.remove(&v);
                                }
                                continue 'tuples;
                            }
                        }
                        None => {
                            asg.insert(*v, tuple.get(j));
                            bound.push(*v);
                        }
                    },
                    Term::App(_, _) => unreachable!("tgd heads are function-free"),
                }
            }
            if go(rel_part, atoms, i + 1, asg) {
                return true;
            }
            for v in bound {
                asg.remove(&v);
            }
        }
        false
    }
    let mut asg = asg.clone();
    go(rel_part, &tgd.head, 0, &mut asg)
}

/// Apply a tgd trigger: fresh nulls for the existential variables, insert
/// annotated head tuples.
fn apply_tgd(instance: &mut AnnInstance, tgd: &Tgd, asg: &BTreeMap<Var, Value>, gen: &mut NullGen) {
    let mut env = asg.clone();
    for z in tgd.existential_vars() {
        env.insert(z, Value::Null(gen.fresh()));
    }
    for atom in &tgd.head {
        let vals: Vec<Value> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) => env[v],
                Term::Const(c) => Value::Const(*c),
                Term::App(_, _) => unreachable!(),
            })
            .collect();
        instance.insert(atom.rel, AnnTuple::new(Tuple::new(vals), atom.ann.clone()));
    }
}

/// Find an egd violation: a body match where the two sides differ.
fn find_egd_violation(instance: &AnnInstance, egd: &Egd) -> Option<(Value, Value)> {
    let rel_part = instance.rel_part();
    let mut found = None;
    for_each_body_match(&rel_part, &egd.body, &mut |asg| {
        let term_val = |t: &Term| -> Value {
            match t {
                Term::Var(v) => asg[v],
                Term::Const(c) => Value::Const(*c),
                Term::App(_, _) => unreachable!("egds are function-free"),
            }
        };
        let l = term_val(&egd.eq.0);
        let r = term_val(&egd.eq.1);
        if l != r {
            found = Some((l, r));
            true
        } else {
            false
        }
    });
    found
}

/// Enumerate body matches (naive-table semantics: nulls are atomic values),
/// invoking `visit`; stop when it returns `true`.
fn for_each_body_match(
    rel_part: &Instance,
    body: &[(RelSym, Vec<Term>)],
    visit: &mut dyn FnMut(&BTreeMap<Var, Value>) -> bool,
) {
    fn go(
        rel_part: &Instance,
        body: &[(RelSym, Vec<Term>)],
        i: usize,
        asg: &mut BTreeMap<Var, Value>,
        visit: &mut dyn FnMut(&BTreeMap<Var, Value>) -> bool,
        stop: &mut bool,
    ) {
        if *stop {
            return;
        }
        if i == body.len() {
            *stop = visit(asg);
            return;
        }
        let (rel, args) = &body[i];
        let tuples: Vec<Tuple> = rel_part.tuples(*rel).cloned().collect();
        'tuples: for tuple in tuples {
            let mut bound: Vec<Var> = Vec::new();
            for (j, term) in args.iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        if tuple.get(j) != Value::Const(*c) {
                            for v in bound.drain(..) {
                                asg.remove(&v);
                            }
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => match asg.get(v) {
                        Some(&val) => {
                            if tuple.get(j) != val {
                                for v in bound.drain(..) {
                                    asg.remove(&v);
                                }
                                continue 'tuples;
                            }
                        }
                        None => {
                            asg.insert(*v, tuple.get(j));
                            bound.push(*v);
                        }
                    },
                    Term::App(_, _) => unreachable!("dependency bodies are function-free"),
                }
            }
            go(rel_part, body, i + 1, asg, visit, stop);
            for v in bound {
                asg.remove(&v);
            }
            if *stop {
                return;
            }
        }
    }
    let mut asg = BTreeMap::new();
    let mut stop = false;
    go(rel_part, body, 0, &mut asg, visit, &mut stop);
}

/// Merge `l` into `r` (at least one side is a null): replace the null by
/// the other value throughout the instance.
fn merge_values(instance: &mut AnnInstance, l: Value, r: Value) {
    let (null, target) = match (l, r) {
        (Value::Null(n), other) => (n, other),
        (other, Value::Null(n)) => (n, other),
        _ => unreachable!("constant/constant clashes fail the chase"),
    };
    let subst = match target {
        Value::Const(c) => Valuation::from_pairs([(null, c)]),
        Value::Null(m) => {
            // Null-to-null: route through a substitution map.
            let mut out = AnnInstance::new();
            for (rel, arel) in instance.relations() {
                for at in arel.iter() {
                    let vals: Vec<Value> = at
                        .tuple
                        .iter()
                        .map(|v| {
                            if v == Value::Null(null) {
                                Value::Null(m)
                            } else {
                                v
                            }
                        })
                        .collect();
                    out.insert(rel, AnnTuple::new(Tuple::new(vals), at.ann.clone()));
                }
                for mark in arel.empty_marks() {
                    out.insert_empty_mark(rel, mark.clone());
                }
            }
            *instance = out;
            return;
        }
    };
    *instance = instance.apply(&subst);
}

/// Convenience: the set of nulls introduced by a chase run beyond those of
/// the input (diagnostics and tests).
pub fn new_nulls(before: &AnnInstance, after: &AnnInstance) -> Vec<NullId> {
    let old = before.nulls();
    after
        .nulls()
        .into_iter()
        .filter(|n| !old.contains(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Mapping;

    fn csol_of(rules: &str, facts: &[(&str, &[&str])]) -> AnnInstance {
        let m = Mapping::parse(rules).unwrap();
        let mut s = Instance::new();
        for (rel, names) in facts {
            s.insert_names(rel, names);
        }
        crate::canonical::canonical_solution(&m, &s).instance
    }

    #[test]
    fn symmetry_tgd_closes_the_graph() {
        let inst = csol_of("G(x:cl, y:cl) <- E(x, y)", &[("E", &["a", "b"])]);
        let deps = TargetDep::parse_many("G(y:cl, x:cl) <- G(x, y)").unwrap();
        assert!(crate::target_deps::is_weakly_acyclic(&deps));
        let mut gen = NullGen::after(inst.nulls());
        let out = chase(inst, &deps, &mut gen, DEFAULT_CHASE_LIMIT);
        assert_eq!(out.outcome, ChaseOutcome::Satisfied);
        assert_eq!(out.steps, 1);
        let g = out.instance.rel_part();
        assert!(g.contains(RelSym::new("G"), &Tuple::from_names(&["b", "a"])));
        assert!(satisfies_deps(&out.instance, &deps));
    }

    #[test]
    fn inventing_tgd_creates_annotated_nulls() {
        let inst = csol_of("Emp(e:cl) <- Src(e)", &[("Src", &["ada"])]);
        let deps = TargetDep::parse_many("Dept(e:cl, d:op) <- Emp(e)").unwrap();
        let mut gen = NullGen::after(inst.nulls());
        let out = chase(inst, &deps, &mut gen, DEFAULT_CHASE_LIMIT);
        assert_eq!(out.outcome, ChaseOutcome::Satisfied);
        let dept = out.instance.relation(RelSym::new("Dept")).unwrap();
        assert_eq!(dept.len(), 1);
        let at = dept.iter().next().unwrap();
        assert!(at.tuple.get(1).is_null(), "existential d gets a fresh null");
        assert_eq!(at.ann.get(1), dx_relation::Ann::Open, "tgd annotation kept");
        // Restricted chase: re-running adds nothing.
        let again = chase(out.instance.clone(), &deps, &mut gen, DEFAULT_CHASE_LIMIT);
        assert_eq!(again.steps, 0);
    }

    #[test]
    fn egd_merges_nulls() {
        // Two tuples for key a with different nulls; FD forces them equal.
        let inst = csol_of("R(x:cl, z:cl) <- E(x, y)", &[("E", &["a", "c1"])]);
        let mut inst = inst;
        // add a second R-tuple for the same key with another null.
        inst.insert(
            RelSym::new("R"),
            AnnTuple::new(
                Tuple::new(vec![Value::c("a"), Value::null(77)]),
                dx_relation::Annotation::all_closed(2),
            ),
        );
        let deps = TargetDep::parse_many("y1 = y2 <- R(x, y1) & R(x, y2)").unwrap();
        let mut gen = NullGen::after(inst.nulls());
        let out = chase(inst, &deps, &mut gen, DEFAULT_CHASE_LIMIT);
        assert_eq!(out.outcome, ChaseOutcome::Satisfied);
        assert_eq!(
            out.instance.relation(RelSym::new("R")).unwrap().len(),
            1,
            "merged tuples collapse"
        );
    }

    #[test]
    fn egd_null_to_constant() {
        let mut inst = AnnInstance::new();
        let r = RelSym::new("RC");
        inst.insert(
            r,
            AnnTuple::new(
                Tuple::new(vec![Value::c("a"), Value::null(0)]),
                dx_relation::Annotation::all_closed(2),
            ),
        );
        inst.insert(
            r,
            AnnTuple::new(
                Tuple::from_names(&["a", "k"]),
                dx_relation::Annotation::all_closed(2),
            ),
        );
        let deps = TargetDep::parse_many("y1 = y2 <- RC(x, y1) & RC(x, y2)").unwrap();
        let mut gen = NullGen::after(inst.nulls());
        let out = chase(inst, &deps, &mut gen, DEFAULT_CHASE_LIMIT);
        assert_eq!(out.outcome, ChaseOutcome::Satisfied);
        let rel = out.instance.relation(r).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(
            rel.iter().next().unwrap().tuple,
            Tuple::from_names(&["a", "k"])
        );
    }

    #[test]
    fn egd_constant_clash_fails() {
        let mut inst = AnnInstance::new();
        let r = RelSym::new("RF");
        inst.insert(
            r,
            AnnTuple::new(
                Tuple::from_names(&["a", "k"]),
                dx_relation::Annotation::all_closed(2),
            ),
        );
        inst.insert(
            r,
            AnnTuple::new(
                Tuple::from_names(&["a", "l"]),
                dx_relation::Annotation::all_closed(2),
            ),
        );
        let deps = TargetDep::parse_many("y1 = y2 <- RF(x, y1) & RF(x, y2)").unwrap();
        let mut gen = NullGen::new();
        let out = chase(inst, &deps, &mut gen, DEFAULT_CHASE_LIMIT);
        assert!(matches!(out.outcome, ChaseOutcome::Failed { .. }));
    }

    #[test]
    fn non_weakly_acyclic_hits_step_limit() {
        let mut inst = AnnInstance::new();
        inst.insert(
            RelSym::new("Chain"),
            AnnTuple::new(
                Tuple::from_names(&["a", "b"]),
                dx_relation::Annotation::all_closed(2),
            ),
        );
        let deps = TargetDep::parse_many("Chain(y:cl, z:cl) <- Chain(x, y)").unwrap();
        assert!(!crate::target_deps::is_weakly_acyclic(&deps));
        let mut gen = NullGen::new();
        let out = chase(inst, &deps, &mut gen, 25);
        assert_eq!(out.outcome, ChaseOutcome::StepLimit);
        assert_eq!(out.steps, 25);
    }

    #[test]
    fn full_pipeline_with_deps() {
        let m = Mapping::parse("Team(p:cl, t:op) <- Person(p)").unwrap();
        let deps = TargetDep::parse_many(
            "Lead(t:cl, l:op) <- Team(p, t); l1 = l2 <- Lead(t, l1) & Lead(t, l2)",
        )
        .unwrap();
        assert!(crate::target_deps::is_weakly_acyclic(&deps));
        let mut s = Instance::new();
        s.insert_names("Person", &["ada"]);
        s.insert_names("Person", &["bob"]);
        let out = canonical_solution_with_deps(&m, &deps, &s, DEFAULT_CHASE_LIMIT);
        assert_eq!(out.outcome, ChaseOutcome::Satisfied);
        assert!(satisfies_deps(&out.instance, &deps));
        // Every team value has exactly one leader.
        let leads = out.instance.relation(RelSym::new("Lead")).unwrap();
        let teams = out.instance.relation(RelSym::new("Team")).unwrap();
        assert_eq!(leads.len(), teams.len());
    }
}
