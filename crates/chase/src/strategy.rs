//! Pluggable chase execution strategies.
//!
//! The chase is the workhorse under every §6 result (and under the
//! downstream solver and composition pipelines), so its execution engine is
//! abstracted behind [`ChaseStrategy`]: callers pick *what* to chase, a
//! strategy decides *how* triggers are discovered and applied.
//!
//! Two implementations exist in the workspace:
//!
//! * [`NaiveChase`] (here) — the reference oracle: full instance rescans
//!   with nested-loop body matching, exactly the semantics of
//!   [`crate::chase_engine::chase`]. Slow, simple, trusted.
//! * `dx_engine::IndexedChase` — the production engine: per-relation hash
//!   indexes, delta-driven (semi-naive) trigger discovery, and
//!   selectivity-ordered index joins. Differentially tested against
//!   [`NaiveChase`] (`tests/engine_differential.rs`).
//!
//! Chase results are deterministic per strategy but **not identical across
//! strategies**: a terminating chase's result is unique only up to
//! homomorphic equivalence, and different trigger orders pick different
//! (isomorphic-core) representatives. Cross-strategy comparisons should use
//! `dx_chase::core::ann_hom_equivalent` / `ann_core_of` + `ann_isomorphic`.

use crate::canonical::{BodyEval, CanonicalSolution, NaiveBodyEval};
use crate::chase_engine::{self, ChaseResult};
use crate::mapping::Mapping;
use crate::target_deps::TargetDep;
use dx_relation::{AnnInstance, Instance, NullGen};

static NAIVE_BODY_EVAL: NaiveBodyEval = NaiveBodyEval;

/// A chase execution engine over annotated instances.
pub trait ChaseStrategy {
    /// A short human-readable engine name (used in bench/JSON output).
    fn name(&self) -> &'static str;

    /// The STD-body evaluation engine this strategy pairs with — used by
    /// [`canonical_solution_with_deps_via`] (and the `dx-core` pipelines)
    /// so the *whole* exchange runs on one architecture. Defaults to the
    /// tree-walking reference; `dx_engine::IndexedChase` overrides it with
    /// `dx-query`'s compiled plans.
    fn body_eval(&self) -> &dyn BodyEval {
        &NAIVE_BODY_EVAL
    }

    /// Run the standard (restricted) chase of `instance` with `deps`,
    /// drawing fresh nulls from `gen`, applying at most `max_steps` steps.
    fn chase(
        &self,
        instance: AnnInstance,
        deps: &[TargetDep],
        gen: &mut NullGen,
        max_steps: usize,
    ) -> ChaseResult;

    /// Does the (naive-table reading of the) instance satisfy all
    /// dependencies — no unsatisfied tgd trigger, no egd violation?
    fn satisfies(&self, instance: &AnnInstance, deps: &[TargetDep]) -> bool;
}

/// The reference strategy: rescan-everything nested-loop chase.
#[derive(Clone, Copy, Debug, Default)]
pub struct NaiveChase;

impl ChaseStrategy for NaiveChase {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn chase(
        &self,
        instance: AnnInstance,
        deps: &[TargetDep],
        gen: &mut NullGen,
        max_steps: usize,
    ) -> ChaseResult {
        chase_engine::chase(instance, deps, gen, max_steps)
    }

    fn satisfies(&self, instance: &AnnInstance, deps: &[TargetDep]) -> bool {
        chase_engine::satisfies_deps(instance, deps)
    }
}

/// [`chase_engine::canonical_solution_with_deps`] routed through a strategy:
/// compute `CSol_A(S)` (body evaluation on the strategy's
/// [`ChaseStrategy::body_eval`] engine), then let `strategy` repair
/// target-constraint violations.
pub fn canonical_solution_with_deps_via(
    strategy: &dyn ChaseStrategy,
    mapping: &Mapping,
    deps: &[TargetDep],
    source: &Instance,
    max_steps: usize,
) -> ChaseResult {
    let csol: CanonicalSolution =
        crate::canonical::canonical_solution_via(strategy.body_eval(), mapping, source);
    let mut gen = NullGen::after(csol.instance.nulls());
    strategy.chase(csol.instance, deps, &mut gen, max_steps)
}

/// [`chase_engine::satisfies_deps`] routed through a strategy.
pub fn satisfies_deps_via(
    strategy: &dyn ChaseStrategy,
    instance: &AnnInstance,
    deps: &[TargetDep],
) -> bool {
    strategy.satisfies(instance, deps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase_engine::{ChaseOutcome, DEFAULT_CHASE_LIMIT};
    use dx_relation::RelSym;

    #[test]
    fn naive_strategy_matches_free_functions() {
        let m = Mapping::parse("G(x:cl, y:cl) <- E(x, y)").unwrap();
        let deps = TargetDep::parse_many("G(y:cl, x:cl) <- G(x, y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("E", &["a", "b"]);
        let via = canonical_solution_with_deps_via(&NaiveChase, &m, &deps, &s, DEFAULT_CHASE_LIMIT);
        let direct = chase_engine::canonical_solution_with_deps(&m, &deps, &s, DEFAULT_CHASE_LIMIT);
        assert_eq!(via.outcome, ChaseOutcome::Satisfied);
        assert_eq!(via.steps, direct.steps);
        assert_eq!(via.instance, direct.instance);
        assert!(satisfies_deps_via(&NaiveChase, &via.instance, &deps));
        assert_eq!(
            via.instance.relation(RelSym::new("G")).unwrap().len(),
            2,
            "symmetric closure of one edge"
        );
        assert_eq!(NaiveChase.name(), "naive");
    }
}
