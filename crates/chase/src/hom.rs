//! Homomorphisms of annotated instances.
//!
//! Following §3 of the paper, a homomorphism `h : T → T′` is a map from
//! `Null` to `Null` (constants are fixed) such that for each annotated tuple
//! `(t, α)` of a relation `R` in `T`, the tuple `(h(t), α)` is in `R′` —
//! homomorphisms preserve annotations.
//!
//! Two search problems are implemented:
//!
//! * [`find_onto_hom`] — an `h` with `h(T) = T′` exactly (the
//!   "homomorphic image" half of presolutions / Proposition 1);
//! * [`find_hom_into_expansion`] — an `h` from `T` into *some expansion* of
//!   `T′` (the second half of Proposition 1): each image tuple must coincide
//!   with some `T′`-tuple on that tuple's closed positions.

use dx_relation::{AnnInstance, AnnTuple, NullId, Tuple, Value};
use std::collections::BTreeMap;

/// A (partial) map `Null → Null`; identity outside its domain.
pub type NullMap = BTreeMap<NullId, NullId>;

/// Apply a null map to a tuple (identity outside the domain).
pub fn apply_null_map_tuple(t: &Tuple, h: &NullMap) -> Tuple {
    Tuple::new(
        t.iter()
            .map(|v| match v {
                Value::Null(n) => Value::Null(*h.get(&n).unwrap_or(&n)),
                c => c,
            })
            .collect::<Vec<_>>(),
    )
}

/// Apply a null map to an annotated instance (annotations and empty markers
/// are preserved; tuples may merge).
pub fn apply_null_map(inst: &AnnInstance, h: &NullMap) -> AnnInstance {
    let mut out = AnnInstance::new();
    for (r, rel) in inst.relations() {
        for at in rel.iter() {
            out.insert(
                r,
                AnnTuple::new(apply_null_map_tuple(&at.tuple, h), at.ann.clone()),
            );
        }
        for m in rel.empty_marks() {
            out.insert_empty_mark(r, m.clone());
        }
    }
    out
}

/// Search for a homomorphism `h` with `h(from) = to` **exactly** (same
/// annotated tuples, same empty markers). Returns the witnessing map (total
/// on the nulls of `from`) or `None`.
pub fn find_onto_hom(from: &AnnInstance, to: &AnnInstance) -> Option<NullMap> {
    // Empty markers are unaffected by homomorphisms: they must agree.
    if !empty_marks_equal(from, to) {
        return None;
    }
    // Collect constraints tuple by tuple: each from-tuple must map onto a
    // to-tuple with identical annotation and identical constants.
    let work: Vec<(&AnnTuple, Vec<&AnnTuple>)> = from
        .relations()
        .flat_map(|(r, rel)| {
            rel.iter().map(move |at| {
                let candidates: Vec<&AnnTuple> = to
                    .tuples(r)
                    .filter(|cand| cand.ann == at.ann && compatible(at, cand))
                    .collect();
                (at, candidates)
            })
        })
        .collect();
    // Fail fast if any tuple has no candidate.
    if work.iter().any(|(_, c)| c.is_empty()) {
        return None;
    }
    let mut h = NullMap::new();
    search_onto(&work, 0, &mut h).and_then(|h| {
        // Verify the image covers all of `to` (the "onto" requirement).
        (apply_null_map(from, &h) == *to).then_some(h)
    })
}

fn empty_marks_equal(a: &AnnInstance, b: &AnnInstance) -> bool {
    let collect = |x: &AnnInstance| -> Vec<_> {
        x.relations()
            .flat_map(|(r, rel)| {
                rel.empty_marks()
                    .map(move |m| (r, m.clone()))
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    collect(a) == collect(b)
}

/// Can `from`'s tuple possibly map to `cand` (constants equal, nulls map to
/// nulls)? Null-consistency is resolved during search.
fn compatible(from: &AnnTuple, cand: &AnnTuple) -> bool {
    from.tuple
        .iter()
        .zip(cand.tuple.iter())
        .all(|(a, b)| match a {
            Value::Const(_) => a == b,
            Value::Null(_) => b.is_null(),
        })
}

fn search_onto(work: &[(&AnnTuple, Vec<&AnnTuple>)], i: usize, h: &mut NullMap) -> Option<NullMap> {
    if i == work.len() {
        return Some(h.clone());
    }
    let (at, candidates) = &work[i];
    'cands: for cand in candidates {
        let mut bound: Vec<NullId> = Vec::new();
        for (a, b) in at.tuple.iter().zip(cand.tuple.iter()) {
            if let (Value::Null(n), Value::Null(m)) = (a, b) {
                match h.get(&n) {
                    Some(&existing) if existing != m => {
                        for n in bound.drain(..) {
                            h.remove(&n);
                        }
                        continue 'cands;
                    }
                    Some(_) => {}
                    None => {
                        h.insert(n, m);
                        bound.push(n);
                    }
                }
            }
        }
        if let Some(found) = search_onto(work, i + 1, h) {
            return Some(found);
        }
        for n in bound {
            h.remove(&n);
        }
    }
    None
}

/// Search for a homomorphism from `t` into **an expansion of** `csol`
/// (Proposition 1): a map `h` on the nulls of `t` such that every image
/// tuple `(h(t̄), α)` coincides with some tuple `(t̄₁, α₁)` of `csol` on the
/// positions `α₁` marks closed, and every empty marker of `t` also occurs in
/// `csol`.
pub fn find_hom_into_expansion(t: &AnnInstance, csol: &AnnInstance) -> Option<NullMap> {
    // Empty markers of t must occur in csol.
    for (r, rel) in t.relations() {
        for m in rel.empty_marks() {
            let ok = csol
                .relation(r)
                .is_some_and(|cr| cr.empty_marks().any(|cm| cm == m));
            if !ok {
                return None;
            }
        }
    }
    // For each t-tuple, candidate matches: csol tuples (any annotation) whose
    // closed positions can be realized by mapping t's nulls.
    struct Constraint {
        /// For each candidate: the null bindings it would force.
        options: Vec<Vec<(NullId, NullId)>>,
    }
    let mut constraints: Vec<Constraint> = Vec::new();
    for (r, rel) in t.relations() {
        let crel = match csol.relation(r) {
            Some(c) => c,
            None => {
                if !rel.is_empty() {
                    return None;
                }
                continue;
            }
        };
        for at in rel.iter() {
            let mut options = Vec::new();
            'cands: for cand in crel.iter() {
                let mut forced: Vec<(NullId, NullId)> = Vec::new();
                for i in cand.ann.closed_positions() {
                    match (at.tuple.get(i), cand.tuple.get(i)) {
                        (Value::Const(a), Value::Const(b)) => {
                            if a != b {
                                continue 'cands;
                            }
                        }
                        (Value::Const(_), Value::Null(_)) => continue 'cands,
                        (Value::Null(_), Value::Const(_)) => {
                            // h maps nulls to nulls; cannot hit a constant.
                            continue 'cands;
                        }
                        (Value::Null(n), Value::Null(m)) => forced.push((n, m)),
                    }
                }
                // Consistency within one candidate.
                let mut local: BTreeMap<NullId, NullId> = BTreeMap::new();
                let consistent = forced
                    .iter()
                    .all(|&(n, m)| *local.entry(n).or_insert(m) == m);
                if consistent {
                    options.push(forced);
                }
            }
            if options.is_empty() {
                return None;
            }
            constraints.push(Constraint { options });
        }
    }
    // Backtracking over per-tuple options.
    fn go(cs: &[Constraint], i: usize, h: &mut NullMap) -> bool {
        if i == cs.len() {
            return true;
        }
        'opts: for opt in &cs[i].options {
            let mut bound: Vec<NullId> = Vec::new();
            for &(n, m) in opt {
                match h.get(&n) {
                    Some(&existing) if existing != m => {
                        for n in bound.drain(..) {
                            h.remove(&n);
                        }
                        continue 'opts;
                    }
                    Some(_) => {}
                    None => {
                        h.insert(n, m);
                        bound.push(n);
                    }
                }
            }
            if go(cs, i + 1, h) {
                return true;
            }
            for n in bound {
                h.remove(&n);
            }
        }
        false
    }
    let mut h = NullMap::new();
    go(&constraints, 0, &mut h).then_some(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_relation::{Ann, AnnTuple, Annotation, RelSym, Tuple, Value};

    fn at(vals: Vec<Value>, anns: Vec<Ann>) -> AnnTuple {
        AnnTuple::new(Tuple::new(vals), Annotation::new(anns))
    }

    /// The paper's CWA example: CSol = {(a,⊥1),(a,⊥2),(b,⊥3)} (all-closed),
    /// T = {(a,⊥10),(b,⊥11)} is a homomorphic image via ⊥1,⊥2↦⊥10, ⊥3↦⊥11.
    #[test]
    fn onto_hom_merges_nulls() {
        let r = RelSym::new("HomR");
        let cl2 = vec![Ann::Closed, Ann::Closed];
        let mut csol = AnnInstance::new();
        csol.insert(r, at(vec![Value::c("a"), Value::null(1)], cl2.clone()));
        csol.insert(r, at(vec![Value::c("a"), Value::null(2)], cl2.clone()));
        csol.insert(r, at(vec![Value::c("b"), Value::null(3)], cl2.clone()));
        let mut t = AnnInstance::new();
        t.insert(r, at(vec![Value::c("a"), Value::null(10)], cl2.clone()));
        t.insert(r, at(vec![Value::c("b"), Value::null(11)], cl2.clone()));
        let h = find_onto_hom(&csol, &t).expect("hom exists");
        assert_eq!(h[&NullId(1)], NullId(10));
        assert_eq!(h[&NullId(2)], NullId(10));
        assert_eq!(h[&NullId(3)], NullId(11));
        assert_eq!(apply_null_map(&csol, &h), t);
    }

    #[test]
    fn onto_hom_requires_full_coverage() {
        let r = RelSym::new("HomR2");
        let cl2 = vec![Ann::Closed, Ann::Closed];
        let mut csol = AnnInstance::new();
        csol.insert(r, at(vec![Value::c("a"), Value::null(1)], cl2.clone()));
        // T has an extra tuple that is not an image of anything.
        let mut t = AnnInstance::new();
        t.insert(r, at(vec![Value::c("a"), Value::null(10)], cl2.clone()));
        t.insert(r, at(vec![Value::c("zzz"), Value::null(11)], cl2.clone()));
        assert!(find_onto_hom(&csol, &t).is_none());
    }

    #[test]
    fn onto_hom_respects_annotations() {
        let r = RelSym::new("HomR3");
        let mut csol = AnnInstance::new();
        csol.insert(r, at(vec![Value::null(1)], vec![Ann::Open]));
        let mut t = AnnInstance::new();
        t.insert(r, at(vec![Value::null(10)], vec![Ann::Closed]));
        assert!(find_onto_hom(&csol, &t).is_none(), "annotation must match");
    }

    #[test]
    fn onto_hom_cannot_map_null_to_const() {
        let r = RelSym::new("HomR4");
        let cl = vec![Ann::Closed];
        let mut csol = AnnInstance::new();
        csol.insert(r, at(vec![Value::null(1)], cl.clone()));
        let mut t = AnnInstance::new();
        t.insert(r, at(vec![Value::c("a")], cl.clone()));
        assert!(find_onto_hom(&csol, &t).is_none());
    }

    /// Expansion matching: (a^cl, ⊥1^op) in csol licenses any image tuple
    /// agreeing on position 0.
    #[test]
    fn hom_into_expansion_open_positions_free() {
        let r = RelSym::new("ExpR");
        let mut csol = AnnInstance::new();
        csol.insert(
            r,
            at(
                vec![Value::c("a"), Value::null(1)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        let mut t = AnnInstance::new();
        // Two tuples with different nulls at the open position: fine.
        t.insert(
            r,
            at(
                vec![Value::c("a"), Value::null(10)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        t.insert(
            r,
            at(
                vec![Value::c("a"), Value::null(11)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        assert!(find_hom_into_expansion(&t, &csol).is_some());
        // A tuple with a different closed value: no expansion allows it.
        let mut bad = AnnInstance::new();
        bad.insert(
            r,
            at(
                vec![Value::c("b"), Value::null(12)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        assert!(find_hom_into_expansion(&bad, &csol).is_none());
    }

    /// Closed positions force null identification consistency.
    #[test]
    fn hom_into_expansion_closed_consistency() {
        let r = RelSym::new("ExpR2");
        let cl2 = vec![Ann::Closed, Ann::Closed];
        let mut csol = AnnInstance::new();
        csol.insert(r, at(vec![Value::null(1), Value::null(1)], cl2.clone()));
        // (⊥10, ⊥11) must map both nulls to ⊥1 — fine (they merge).
        let mut t = AnnInstance::new();
        t.insert(r, at(vec![Value::null(10), Value::null(11)], cl2.clone()));
        assert!(find_hom_into_expansion(&t, &csol).is_some());
        // But if t insists ⊥10 maps to two different images, fail:
        let mut csol2 = AnnInstance::new();
        csol2.insert(r, at(vec![Value::null(1), Value::null(2)], cl2.clone()));
        csol2.insert(r, at(vec![Value::null(3), Value::null(4)], cl2.clone()));
        let mut t2 = AnnInstance::new();
        // (⊥10,⊥10) needs an image (m,m) with both positions equal — none.
        t2.insert(r, at(vec![Value::null(10), Value::null(10)], cl2));
        assert!(find_hom_into_expansion(&t2, &csol2).is_none());
    }

    #[test]
    fn empty_marks_must_carry_over() {
        let r = RelSym::new("ExpR3");
        let mut csol = AnnInstance::new();
        csol.insert_empty_mark(r, Annotation::all_open(1));
        let mut t = AnnInstance::new();
        t.insert_empty_mark(r, Annotation::all_open(1));
        assert!(find_hom_into_expansion(&t, &csol).is_some());
        let mut t2 = AnnInstance::new();
        t2.insert_empty_mark(r, Annotation::all_closed(1));
        assert!(find_hom_into_expansion(&t2, &csol).is_none());
        assert!(find_onto_hom(&csol, &t).is_some());
        assert!(find_onto_hom(&csol, &t2).is_none());
    }
}
