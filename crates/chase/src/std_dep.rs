//! Annotated source-to-target dependencies (STDs).

use dx_logic::{Formula, ParsedRule, Term};
use dx_relation::{Ann, Annotation, RelSym, Var};
use std::collections::BTreeSet;
use std::fmt;

/// One atom of an STD head: a target relation applied to head terms, with a
/// per-position annotation.
///
/// Head terms of plain STDs are variables or constants; Skolem applications
/// are rejected here (they belong to `dx-core`'s SkSTDs).
#[derive(Clone, PartialEq, Eq)]
pub struct TargetAtom {
    /// The target relation.
    pub rel: RelSym,
    /// Argument terms (`Var` or `Const` only).
    pub args: Vec<Term>,
    /// Per-position open/closed annotation.
    pub ann: Annotation,
}

impl TargetAtom {
    /// Build a target atom; panics on arity mismatch or Skolem terms.
    pub fn new(rel: RelSym, args: Vec<Term>, ann: Annotation) -> Self {
        assert_eq!(args.len(), ann.arity(), "annotation arity mismatch");
        assert!(
            args.iter()
                .all(|t| matches!(t, Term::Var(_) | Term::Const(_))),
            "plain STD heads may not contain function terms (use SkSTDs)"
        );
        TargetAtom { rel, args, ann }
    }

    /// The arity of the atom.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Variables occurring in the atom.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.args.iter().flat_map(|t| t.vars()).collect()
    }

    /// The same atom with every position re-annotated to `ann`.
    pub fn reannotated(&self, ann: Ann) -> TargetAtom {
        TargetAtom {
            rel: self.rel,
            args: self.args.clone(),
            ann: Annotation::new(vec![ann; self.args.len()]),
        }
    }
}

impl fmt::Display for TargetAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", t, self.ann.get(i))?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for TargetAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// An annotated source-to-target dependency `ψ(x̄, z̄) :– φ(x̄, ȳ)`:
/// a conjunction of annotated target atoms (the head `ψ`) driven by an FO
/// formula over the source schema (the body `φ`).
#[derive(Clone, PartialEq, Eq)]
pub struct Std {
    /// Head atoms `ψ` (conjunction).
    pub head: Vec<TargetAtom>,
    /// Body formula `φ` over the source vocabulary.
    pub body: Formula,
}

impl Std {
    /// Build an STD; panics if the head is empty.
    pub fn new(head: Vec<TargetAtom>, body: Formula) -> Self {
        assert!(!head.is_empty(), "STD must have at least one head atom");
        Std { head, body }
    }

    /// Parse from the rule syntax of `dx-logic` (e.g.
    /// `Reviews(x:cl, z:op) <- Papers(x, y)`).
    pub fn parse(src: &str) -> Result<Self, dx_logic::ParseError> {
        Ok(Self::from_parsed(dx_logic::parse_rule(src)?))
    }

    /// Convert a [`ParsedRule`] into an STD.
    pub fn from_parsed(rule: ParsedRule) -> Self {
        let head = rule
            .head
            .into_iter()
            .map(|a| TargetAtom::new(a.rel, a.args, Annotation::new(a.anns)))
            .collect();
        Std::new(head, rule.body)
    }

    /// The *frontier* variables `x̄`: head variables that also occur free in
    /// the body (they carry source values into the target).
    pub fn frontier_vars(&self) -> BTreeSet<Var> {
        let body_vars = self.body.free_vars();
        self.head_vars().intersection(&body_vars).copied().collect()
    }

    /// The *existential* variables `z̄`: head variables not bound by the body
    /// (they are populated with fresh nulls by the canonical solution).
    pub fn existential_vars(&self) -> BTreeSet<Var> {
        let body_vars = self.body.free_vars();
        self.head_vars()
            .into_iter()
            .filter(|v| !body_vars.contains(v))
            .collect()
    }

    /// All head variables.
    pub fn head_vars(&self) -> BTreeSet<Var> {
        self.head.iter().flat_map(|a| a.vars()).collect()
    }

    /// Free variables of the body (`x̄ ∪ ȳ`), sorted — this is the canonical
    /// witness order used by justifications.
    pub fn body_vars(&self) -> Vec<Var> {
        self.body.free_vars().into_iter().collect()
    }

    /// Max number of open positions over the head atoms (the per-STD
    /// contribution to `#op(Σα)`, Theorem 3/4's classification parameter).
    pub fn max_open_per_atom(&self) -> usize {
        self.head
            .iter()
            .map(|a| a.ann.count_open())
            .max()
            .unwrap_or(0)
    }

    /// Max number of closed positions over the head atoms (`#cl`,
    /// Theorem 2's parameter).
    pub fn max_closed_per_atom(&self) -> usize {
        self.head
            .iter()
            .map(|a| a.ann.count_closed())
            .max()
            .unwrap_or(0)
    }

    /// The same STD with every position re-annotated (`Σop` / `Σcl`).
    pub fn reannotated(&self, ann: Ann) -> Std {
        Std {
            head: self.head.iter().map(|a| a.reannotated(ann)).collect(),
            body: self.body.clone(),
        }
    }

    /// Pointwise annotation order `α ⪯ α′` between two structurally equal
    /// STDs (Theorem 1(3)); `None` if the underlying rules differ.
    pub fn annotation_le(&self, other: &Std) -> Option<bool> {
        if self.body != other.body || self.head.len() != other.head.len() {
            return None;
        }
        let mut le = true;
        for (a, b) in self.head.iter().zip(other.head.iter()) {
            if a.rel != b.rel || a.args != b.args {
                return None;
            }
            le &= a.ann.le(&b.ann);
        }
        Some(le)
    }
}

impl fmt::Display for Std {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " <- {}", self.body)
    }
}

impl fmt::Debug for Std {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_vs_existential() {
        let std = Std::parse("R(x:cl, z:op) <- E(x, y)").unwrap();
        assert_eq!(std.frontier_vars(), [Var::new("x")].into());
        assert_eq!(std.existential_vars(), [Var::new("z")].into());
        assert_eq!(std.body_vars(), vec![Var::new("x"), Var::new("y")]);
    }

    #[test]
    fn open_closed_counts() {
        // Paper's example for #op: T(x:cl, y:op) ∧ T(x:cl, z:op) has #op = 1.
        let std = Std::parse("T(x:cl, y:op), T(x:cl, z:op) <- Phi(x)").unwrap();
        assert_eq!(std.max_open_per_atom(), 1);
        assert_eq!(std.max_closed_per_atom(), 1);
    }

    #[test]
    fn reannotation() {
        let std = Std::parse("R(x:cl, z:op) <- E(x, y)").unwrap();
        let open = std.reannotated(Ann::Open);
        assert_eq!(open.max_closed_per_atom(), 0);
        let closed = std.reannotated(Ann::Closed);
        assert_eq!(closed.max_open_per_atom(), 0);
    }

    #[test]
    fn annotation_order() {
        let a = Std::parse("R(x:cl, z:cl) <- E(x, y)").unwrap();
        let b = Std::parse("R(x:cl, z:op) <- E(x, y)").unwrap();
        assert_eq!(a.annotation_le(&b), Some(true));
        assert_eq!(b.annotation_le(&a), Some(false));
        let c = Std::parse("R(x:cl, z:op) <- E(y, x)").unwrap();
        assert_eq!(a.annotation_le(&c), None);
    }

    #[test]
    #[should_panic(expected = "function terms")]
    fn skolem_heads_rejected() {
        Std::parse("R(f(x):cl) <- E(x, y)").unwrap();
    }

    #[test]
    fn negated_body_allowed() {
        let std = Std::parse("Reviews(x:cl, z:op) <- Papers(x, y) & !exists r. Assignments(x, r)")
            .unwrap();
        assert_eq!(std.frontier_vars(), [Var::new("x")].into());
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let std = Std::parse("R(x:cl, z:op), S(z:op) <- E(x, y) & x != y").unwrap();
        let printed = std.to_string();
        let reparsed = Std::parse(&printed).unwrap();
        assert_eq!(std, reparsed);
    }
}
