//! Solution theories: OWA-solutions, CWA-(pre)solutions, and the paper's
//! `Σα`-solutions.
//!
//! * An **OWA-solution** for `S` under `Σ` is any target instance `T` over
//!   `Const ∪ Null` with `(S, T) |= Σ` ([FKMP'05]; §3 "Annotated mappings:
//!   basic properties").
//! * A **CWA-presolution** is a homomorphic image of the canonical solution;
//!   a **CWA-solution** additionally has all its facts justified
//!   ([Libkin'06]; §2).
//! * A **`Σα`-solution** is a presolution of `CSol_A(S)` whose annotated
//!   facts true under `|=_cl` are also true in `CSol_A(S)` — decided here
//!   via the effective characterization of **Proposition 1**: `T` is a
//!   `Σα`-solution iff it is a homomorphic image of `CSol_A(S)` *and* has a
//!   homomorphism into an expansion of `CSol_A(S)`.

use crate::canonical::{canonical_solution, std_satisfied, CanonicalSolution};
use crate::hom::{find_hom_into_expansion, find_onto_hom, NullMap};
use crate::mapping::Mapping;
use crate::std_dep::TargetAtom;
use dx_logic::Term;
use dx_relation::{AnnInstance, Instance, NullId, Value, Var};
use std::collections::BTreeMap;

/// Is `target` an OWA-solution for `source` under the (annotation-blind)
/// reading of the mapping's STDs, i.e. does `(S, T) |= Σ` hold?
pub fn is_owa_solution(mapping: &Mapping, source: &Instance, target: &Instance) -> bool {
    mapping
        .stds
        .iter()
        .all(|std| std_satisfied(std, source, target))
}

/// Is `t` a presolution for `source` under `mapping`, i.e. a homomorphic
/// image of `CSol_A(S)`? Returns the witnessing onto homomorphism.
pub fn find_presolution_hom(
    mapping: &Mapping,
    source: &Instance,
    t: &AnnInstance,
) -> Option<NullMap> {
    let csol = canonical_solution(mapping, source);
    find_onto_hom(&csol.instance, t)
}

/// Decide whether `t` is a `Σα`-solution for `source` under `mapping`, using
/// Proposition 1. Returns the pair of witnessing homomorphisms
/// `(h₁ : CSol_A(S) ↠ T, h₂ : T → expansion of CSol_A(S))`.
pub fn is_solution(
    mapping: &Mapping,
    source: &Instance,
    t: &AnnInstance,
) -> Option<(NullMap, NullMap)> {
    let csol = canonical_solution(mapping, source);
    is_solution_with(&csol, t)
}

/// [`is_solution`] against a precomputed canonical solution.
pub fn is_solution_with(csol: &CanonicalSolution, t: &AnnInstance) -> Option<(NullMap, NullMap)> {
    let h1 = find_onto_hom(&csol.instance, t)?;
    let h2 = find_hom_into_expansion(t, &csol.instance)?;
    Some((h1, h2))
}

/// An annotated fact `(f(ā), α)` where `f(ā) = ∃z̄ γ(ā, z̄)` and `γ` is a
/// conjunction of target atoms (§3, "Annotated solutions").
///
/// The atoms reuse [`TargetAtom`]: variables are the existential `z̄`,
/// constants are the `ā`.
#[derive(Clone, Debug)]
pub struct AnnotatedFact {
    /// The annotated atoms of `γ`.
    pub atoms: Vec<TargetAtom>,
}

impl AnnotatedFact {
    /// Build a fact from atoms.
    pub fn new(atoms: Vec<TargetAtom>) -> Self {
        AnnotatedFact { atoms }
    }

    /// The existential variables `z̄` of the fact.
    pub fn z_vars(&self) -> Vec<Var> {
        let mut out: Vec<Var> = Vec::new();
        for a in &self.atoms {
            for v in a.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// The satisfaction relation `T |=_cl (f(ā), α)`: is there a tuple `⊥̄`
    /// of nulls (of `T`) for `z̄` such that every atom `R(t)` of `γ(ā, ⊥̄)`
    /// coincides with some tuple `(t₀, α₀)` of `R` in `T` on the positions
    /// `α₀` marks closed?
    pub fn satisfied_cl(&self, t: &AnnInstance) -> bool {
        let mut asg: BTreeMap<Var, NullId> = BTreeMap::new();
        self.search(t, 0, &mut asg)
    }

    fn search(&self, t: &AnnInstance, i: usize, asg: &mut BTreeMap<Var, NullId>) -> bool {
        if i == self.atoms.len() {
            return true;
        }
        let atom = &self.atoms[i];
        let rel = match t.relation(atom.rel) {
            Some(r) => r,
            None => return false,
        };
        'cands: for cand in rel.iter() {
            // The candidate's closed positions constrain the atom's terms.
            let mut bound: Vec<Var> = Vec::new();
            for p in cand.ann.closed_positions() {
                let need = cand.tuple.get(p);
                match &atom.args[p] {
                    Term::Const(c) => {
                        if Value::Const(*c) != need {
                            for v in bound.drain(..) {
                                asg.remove(&v);
                            }
                            continue 'cands;
                        }
                    }
                    Term::Var(z) => {
                        // z must be a null equal to `need`.
                        let need_null = match need {
                            Value::Null(n) => n,
                            Value::Const(_) => {
                                // `⊥̄` ranges over nulls; a constant at a
                                // closed position cannot be matched by z.
                                for v in bound.drain(..) {
                                    asg.remove(&v);
                                }
                                continue 'cands;
                            }
                        };
                        match asg.get(z) {
                            Some(&existing) if existing != need_null => {
                                for v in bound.drain(..) {
                                    asg.remove(&v);
                                }
                                continue 'cands;
                            }
                            Some(_) => {}
                            None => {
                                asg.insert(*z, need_null);
                                bound.push(*z);
                            }
                        }
                    }
                    Term::App(_, _) => unreachable!("facts have no function terms"),
                }
            }
            if self.search(t, i + 1, asg) {
                return true;
            }
            for v in bound {
                asg.remove(&v);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_relation::{Ann, AnnTuple, Annotation, RelSym, Tuple};

    fn at(vals: Vec<Value>, anns: Vec<Ann>) -> AnnTuple {
        AnnTuple::new(Tuple::new(vals), Annotation::new(anns))
    }

    fn source_e3() -> Instance {
        let mut s = Instance::new();
        s.insert_names("E", &["a", "c1"]);
        s.insert_names("E", &["a", "c2"]);
        s.insert_names("E", &["b", "c3"]);
        s
    }

    /// Under the CWA (all-closed), merging ⊥1=⊥2 (both justified by source
    /// tuples with the same first component) yields a solution, but merging
    /// across different constants creates an unjustified fact and is
    /// rejected — the paper's §2 example.
    #[test]
    fn cwa_solutions_reject_unjustified_merges() {
        let m = Mapping::parse("R(x:cl, z:cl) <- E(x, y)").unwrap();
        let s = source_e3();
        let r = RelSym::new("R");
        let cl2 = vec![Ann::Closed, Ann::Closed];
        // Good: {(a,⊥), (b,⊥')} — merge the two a-nulls.
        let mut good = AnnInstance::new();
        good.insert(r, at(vec![Value::c("a"), Value::null(100)], cl2.clone()));
        good.insert(r, at(vec![Value::c("b"), Value::null(101)], cl2.clone()));
        assert!(is_solution(&m, &s, &good).is_some());
        // Bad: {(a,⊥), (a,⊥), (b,⊥)} with ⊥1=⊥3 merged: says a and b share a
        // value — unjustified under CWA.
        let mut bad = AnnInstance::new();
        bad.insert(r, at(vec![Value::c("a"), Value::null(100)], cl2.clone()));
        bad.insert(r, at(vec![Value::c("a"), Value::null(102)], cl2.clone()));
        bad.insert(r, at(vec![Value::c("b"), Value::null(100)], cl2.clone()));
        assert!(is_solution(&m, &s, &bad).is_none());
    }

    /// The canonical solution itself is always a Σα-solution.
    #[test]
    fn csol_is_a_solution() {
        let m = Mapping::parse(
            "Submissions(x:cl, z:op) <- Papers(x, y);\n\
             Reviews(x:cl, z:cl) <- Assignments(x, y)",
        )
        .unwrap();
        let mut s = Instance::new();
        s.insert_names("Papers", &["p1", "t1"]);
        s.insert_names("Assignments", &["p1", "r1"]);
        let csol = canonical_solution(&m, &s);
        assert!(is_solution_with(&csol, &csol.instance).is_some());
    }

    /// The paper's §3 worked example: STD R(x:op, z1:cl) ∧ R(y:cl, z2:cl) :-
    /// S(x, y), source {(a,b)}; equating the two nulls IS a Σα-solution.
    #[test]
    fn papers_solution_example() {
        let m = Mapping::parse("R(x:op, z1:cl), R(y:cl, z2:cl) <- S(x, y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("S", &["a", "b"]);
        let r = RelSym::new("R");
        let mut t = AnnInstance::new();
        t.insert(
            r,
            at(
                vec![Value::c("a"), Value::null(50)],
                vec![Ann::Open, Ann::Closed],
            ),
        );
        t.insert(
            r,
            at(
                vec![Value::c("b"), Value::null(50)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        assert!(
            is_solution(&m, &s, &t).is_some(),
            "equating z1 and z2 is allowed because the open x-position \
             lets the fact be matched in CSol_A"
        );
    }

    /// Contrast with the all-closed version of the same STD, where the merge
    /// creates an unjustified fact.
    #[test]
    fn all_closed_version_rejects_merge() {
        let m = Mapping::parse("R(x:cl, z1:cl), R(y:cl, z2:cl) <- S(x, y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("S", &["a", "b"]);
        let r = RelSym::new("R");
        let cl2 = vec![Ann::Closed, Ann::Closed];
        let mut t = AnnInstance::new();
        t.insert(r, at(vec![Value::c("a"), Value::null(50)], cl2.clone()));
        t.insert(r, at(vec![Value::c("b"), Value::null(50)], cl2.clone()));
        assert!(is_solution(&m, &s, &t).is_none());
    }

    #[test]
    fn owa_solution_check() {
        let m = Mapping::parse("R(x:op, z:op) <- E(x, y)").unwrap();
        let s = source_e3();
        let mut t = Instance::new();
        t.insert_names("R", &["a", "v"]);
        t.insert_names("R", &["b", "w"]);
        t.insert_names("R", &["extra", "tuples are fine under OWA"]);
        assert!(is_owa_solution(&m, &s, &t));
        let mut t2 = Instance::new();
        t2.insert_names("R", &["a", "v"]); // no tuple for b
        assert!(!is_owa_solution(&m, &s, &t2));
    }

    /// Annotated-fact satisfaction |=_cl, on the paper's §3 example.
    #[test]
    fn fact_satisfaction_cl() {
        // CSol_A = {(a^op, ⊥1^cl), (b^cl, ⊥2^cl)}.
        let r = RelSym::new("R");
        let mut csol = AnnInstance::new();
        csol.insert(
            r,
            at(
                vec![Value::c("a"), Value::null(1)],
                vec![Ann::Open, Ann::Closed],
            ),
        );
        csol.insert(
            r,
            at(
                vec![Value::c("b"), Value::null(2)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        // Fact ∃z R(a, z) ∧ R(b, z): satisfiable in CSol_A with z = ⊥1
        // because the first atom only needs to match (a^op, ⊥1^cl) on its
        // closed position (the second).
        let fact = AnnotatedFact::new(vec![
            TargetAtom::new(
                r,
                vec![Term::cst("a"), Term::var("z")],
                Annotation::new(vec![Ann::Open, Ann::Closed]),
            ),
            TargetAtom::new(
                r,
                vec![Term::cst("b"), Term::var("z")],
                Annotation::new(vec![Ann::Closed, Ann::Closed]),
            ),
        ]);
        assert!(fact.satisfied_cl(&csol));
        // All-closed CSol: the same fact is NOT satisfiable (⊥1 ≠ ⊥2 and the
        // first position now also has to match).
        let mut csol_cl = AnnInstance::new();
        csol_cl.insert(
            r,
            at(
                vec![Value::c("a"), Value::null(1)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        csol_cl.insert(
            r,
            at(
                vec![Value::c("b"), Value::null(2)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        assert!(!fact.satisfied_cl(&csol_cl));
    }
}
