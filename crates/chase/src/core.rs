//! Cores of instances with nulls, and minimal `Σα`-solutions.
//!
//! Fagin, Kolaitis and Popa ("Data exchange: getting to the core", cited as
//! \[12\] by the paper) argue that among all universal solutions the **core**
//! — the smallest instance homomorphically equivalent to the canonical
//! solution — is the preferred instance to materialize. This module supplies
//! that machinery in both homomorphism regimes that coexist in the paper:
//!
//! * the **classic FKP regime** — homomorphisms map nulls to constants *or*
//!   nulls (constants are fixed). [`core_of`] computes the FKP core of a
//!   plain [`Instance`]; this is the notion used by \[12\] for un-annotated
//!   data exchange.
//! * the **annotated regime of §3** — homomorphisms map nulls to nulls only
//!   and preserve annotations. [`ann_core_of`] computes the least fixpoint
//!   of tuple-dropping endomorphisms on an [`AnnInstance`]. Applied to
//!   `CSol_A(S)` it yields a *minimal `Σα`-presolution*: the result is a
//!   homomorphic image of `CSol_A(S)` (so a presolution) and is contained in
//!   `CSol_A(S)` as a set of annotated tuples (so the identity null map is a
//!   homomorphism back into `CSol_A(S)` itself — by Proposition 1 it is a
//!   full `Σα`-solution).
//!
//! Both computations follow the standard retract-iteration algorithm: while
//! some endomorphism `h : C → C` has an image smaller than `C`, replace `C`
//! by `h(C)`. Each step strictly shrinks the tuple count, so the loop
//! terminates; the result is unique up to isomorphism (the core of a finite
//! structure is unique). The search for `h` is NP in general — the
//! backtracking matcher below is exact and intended for the
//! canonical-solution-sized instances of this crate's tests and benches.

use crate::hom::{apply_null_map, NullMap};
use dx_relation::{AnnInstance, Instance, NullId, RelSym, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

/// A homomorphism in the classic FKP regime: nulls may map to constants or
/// nulls; constants are fixed; identity outside the domain.
pub type ValueMap = BTreeMap<NullId, Value>;

/// Apply a [`ValueMap`] to a tuple (identity outside the domain).
pub fn apply_value_map_tuple(t: &Tuple, h: &ValueMap) -> Tuple {
    Tuple::new(
        t.iter()
            .map(|v| match v {
                Value::Null(n) => h.get(&n).copied().unwrap_or(v),
                c => c,
            })
            .collect::<Vec<_>>(),
    )
}

/// Apply a [`ValueMap`] to a plain instance (tuples may merge).
pub fn apply_value_map(inst: &Instance, h: &ValueMap) -> Instance {
    let mut out = Instance::new();
    for (r, rel) in inst.relations() {
        out.declare(r, rel.arity());
        for t in rel.iter() {
            out.insert(r, apply_value_map_tuple(t, h));
        }
    }
    out
}

/// Search for a classic homomorphism `h : from → to` — a [`ValueMap`] on the
/// nulls of `from` such that the image of every `from`-tuple is a tuple of
/// `to` (constants fixed, nulls free to hit constants or nulls of `to`).
///
/// This is the FKP notion of homomorphism between instances with nulls; it
/// is *not* required to be onto. Backtracking over tuples, most-constrained
/// (fewest candidate matches) first.
pub fn find_value_hom(from: &Instance, to: &Instance) -> Option<ValueMap> {
    // Pre-compute candidate target tuples per source tuple.
    let mut work: Vec<(&Tuple, Vec<&Tuple>)> = Vec::new();
    for (r, rel) in from.relations() {
        if rel.is_empty() {
            continue;
        }
        let target = to.relation(r)?;
        for t in rel.iter() {
            let cands: Vec<&Tuple> = target
                .iter()
                .filter(|cand| value_compatible(t, cand))
                .collect();
            if cands.is_empty() {
                return None;
            }
            work.push((t, cands));
        }
    }
    work.sort_by_key(|(_, c)| c.len());
    let mut h = ValueMap::new();
    search_value_hom(&work, 0, &mut h).then_some(h)
}

/// Constants must agree; nulls can go anywhere (consistency checked during
/// search).
fn value_compatible(from: &Tuple, cand: &Tuple) -> bool {
    from.iter().zip(cand.iter()).all(|(a, b)| match a {
        Value::Const(_) => a == b,
        Value::Null(_) => true,
    })
}

fn search_value_hom(work: &[(&Tuple, Vec<&Tuple>)], i: usize, h: &mut ValueMap) -> bool {
    if i == work.len() {
        return true;
    }
    let (t, cands) = &work[i];
    'cands: for cand in cands {
        let mut bound: Vec<NullId> = Vec::new();
        for (a, b) in t.iter().zip(cand.iter()) {
            if let Value::Null(n) = a {
                match h.get(&n) {
                    Some(&existing) if existing != b => {
                        for n in bound.drain(..) {
                            h.remove(&n);
                        }
                        continue 'cands;
                    }
                    Some(_) => {}
                    None => {
                        h.insert(n, b);
                        bound.push(n);
                    }
                }
            }
        }
        if search_value_hom(work, i + 1, h) {
            return true;
        }
        for n in bound {
            h.remove(&n);
        }
    }
    false
}

/// Are two plain instances homomorphically equivalent in the FKP regime
/// (homomorphisms both ways)?
pub fn hom_equivalent(a: &Instance, b: &Instance) -> bool {
    find_value_hom(a, b).is_some() && find_value_hom(b, a).is_some()
}

/// The result of a core computation: the core itself plus the retraction
/// from the original instance onto it (the composition of all shrinking
/// endomorphisms found along the way).
#[derive(Debug, Clone)]
pub struct CoreResult {
    /// The core instance (unique up to isomorphism).
    pub core: Instance,
    /// A homomorphism from the original instance onto `core`.
    pub retraction: ValueMap,
    /// How many shrinking endomorphism steps were taken.
    pub steps: usize,
}

/// Compute the FKP **core** of an instance with nulls: the smallest
/// subinstance `C` such that there is a homomorphism `inst → C` (and hence
/// `C` is homomorphically equivalent to `inst`).
///
/// Algorithm: repeatedly look for a tuple `t` whose removal still leaves a
/// homomorphism `C → C∖{t}`; replace `C` by the image. Exponential-time in
/// the worst case (core identification is coNP-hard in general) but exact.
pub fn core_of(inst: &Instance) -> CoreResult {
    let mut current = inst.clone();
    let mut retraction: ValueMap = ValueMap::new();
    let mut steps = 0usize;
    'outer: loop {
        // Only tuples containing nulls can be dropped: ground tuples are
        // fixed by every homomorphism (constants are rigid).
        let candidates: Vec<(RelSym, Tuple)> = current
            .relations()
            .flat_map(|(r, rel)| {
                rel.iter()
                    .filter(|t| t.iter().any(|v| v.is_null()))
                    .map(move |t| (r, t.clone()))
            })
            .collect();
        for (r, t) in candidates {
            let mut smaller = Instance::new();
            for (r2, rel) in current.relations() {
                smaller.declare(r2, rel.arity());
                for t2 in rel.iter() {
                    if !(r2 == r && *t2 == t) {
                        smaller.insert(r2, t2.clone());
                    }
                }
            }
            if let Some(h) = find_value_hom(&current, &smaller) {
                current = apply_value_map(&current, &h);
                retraction = compose_value_maps(&retraction, &h, inst.nulls());
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    CoreResult {
        core: current,
        retraction,
        steps,
    }
}

/// `second ∘ first`, restricted to the given null domain; nulls untouched by
/// both maps are left out (identity).
fn compose_value_maps(
    first: &ValueMap,
    second: &ValueMap,
    domain: impl IntoIterator<Item = NullId>,
) -> ValueMap {
    let mut out = ValueMap::new();
    for n in domain {
        let mid = first.get(&n).copied().unwrap_or(Value::Null(n));
        let fin = match mid {
            Value::Null(m) => second.get(&m).copied().unwrap_or(mid),
            c => c,
        };
        if fin != Value::Null(n) {
            out.insert(n, fin);
        }
    }
    out
}

/// Search for a *plain* annotated homomorphism `h : from → to` in the §3
/// regime: `h` maps nulls to nulls, constants are fixed, and for every
/// annotated tuple `(t, α)` of `from` the tuple `(h(t), α)` is in `to`
/// (same annotation). Not required to be onto. Empty markers of `from`
/// must also occur in `to` (they are untouched by null maps).
pub fn find_ann_hom(from: &AnnInstance, to: &AnnInstance) -> Option<NullMap> {
    for (r, rel) in from.relations() {
        for m in rel.empty_marks() {
            let ok = to
                .relation(r)
                .is_some_and(|tr| tr.empty_marks().any(|tm| tm == m));
            if !ok {
                return None;
            }
        }
    }
    let mut work: Vec<(&dx_relation::AnnTuple, Vec<&dx_relation::AnnTuple>)> = Vec::new();
    for (r, rel) in from.relations() {
        if rel.is_empty() {
            continue;
        }
        let target = to.relation(r)?;
        for at in rel.iter() {
            let cands: Vec<&dx_relation::AnnTuple> = target
                .iter()
                .filter(|cand| {
                    cand.ann == at.ann
                        && at
                            .tuple
                            .iter()
                            .zip(cand.tuple.iter())
                            .all(|(a, b)| match a {
                                Value::Const(_) => a == b,
                                Value::Null(_) => b.is_null(),
                            })
                })
                .collect();
            if cands.is_empty() {
                return None;
            }
            work.push((at, cands));
        }
    }
    work.sort_by_key(|(_, c)| c.len());
    let mut h = NullMap::new();
    search_ann_hom(&work, 0, &mut h).then_some(h)
}

fn search_ann_hom(
    work: &[(&dx_relation::AnnTuple, Vec<&dx_relation::AnnTuple>)],
    i: usize,
    h: &mut NullMap,
) -> bool {
    if i == work.len() {
        return true;
    }
    let (at, cands) = &work[i];
    'cands: for cand in cands {
        let mut bound: Vec<NullId> = Vec::new();
        for (a, b) in at.tuple.iter().zip(cand.tuple.iter()) {
            if let (Value::Null(n), Value::Null(m)) = (a, b) {
                match h.get(&n) {
                    Some(&existing) if existing != m => {
                        for n in bound.drain(..) {
                            h.remove(&n);
                        }
                        continue 'cands;
                    }
                    Some(_) => {}
                    None => {
                        h.insert(n, m);
                        bound.push(n);
                    }
                }
            }
        }
        if search_ann_hom(work, i + 1, h) {
            return true;
        }
        for n in bound {
            h.remove(&n);
        }
    }
    false
}

/// Are two annotated instances homomorphically equivalent in the §3 regime
/// (annotation-preserving `Null → Null` homomorphisms both ways)?
pub fn ann_hom_equivalent(a: &AnnInstance, b: &AnnInstance) -> bool {
    find_ann_hom(a, b).is_some() && find_ann_hom(b, a).is_some()
}

/// The result of an annotated core computation.
#[derive(Debug, Clone)]
pub struct AnnCoreResult {
    /// The annotated core (a subinstance of the input).
    pub core: AnnInstance,
    /// A `Null → Null` homomorphism from the original instance onto `core`.
    pub retraction: NullMap,
    /// How many shrinking endomorphism steps were taken.
    pub steps: usize,
}

/// Compute the core of an annotated instance under the paper's `Null → Null`
/// annotation-preserving homomorphisms.
///
/// Applied to `CSol_A(S)` this produces a **minimal `Σα`-solution**: the
/// retraction makes it a homomorphic image of `CSol_A(S)` (a presolution),
/// and since the result is a set of tuples of `CSol_A(S)` itself, the
/// identity map is a homomorphism into `CSol_A(S)` — by Proposition 1 the
/// result is a `Σα`-solution. It is minimal because no smaller homomorphic
/// image exists (the core is the least retract).
pub fn ann_core_of(inst: &AnnInstance) -> AnnCoreResult {
    let mut current = inst.clone();
    let mut retraction = NullMap::new();
    let mut steps = 0usize;
    'outer: loop {
        let candidates: Vec<(RelSym, dx_relation::AnnTuple)> = current
            .relations()
            .flat_map(|(r, rel)| {
                rel.iter()
                    .filter(|at| at.tuple.iter().any(|v| v.is_null()))
                    .map(move |at| (r, at.clone()))
            })
            .collect();
        for (r, at) in candidates {
            let mut smaller = AnnInstance::new();
            for (r2, rel) in current.relations() {
                for at2 in rel.iter() {
                    if !(r2 == r && *at2 == at) {
                        smaller.insert(r2, at2.clone());
                    }
                }
                for m in rel.empty_marks() {
                    smaller.insert_empty_mark(r2, m.clone());
                }
            }
            if let Some(h) = find_ann_hom(&current, &smaller) {
                current = apply_null_map(&current, &h);
                retraction = compose_null_maps(&retraction, &h, inst.nulls());
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    AnnCoreResult {
        core: current,
        retraction,
        steps,
    }
}

/// Are two annotated instances **isomorphic**: equal up to a bijective
/// renaming of nulls (constants fixed, annotations preserved)? Returns the
/// witnessing renaming. The core of a finite instance is unique up to
/// exactly this relation.
pub fn ann_isomorphic(a: &AnnInstance, b: &AnnInstance) -> Option<NullMap> {
    if a.tuple_count() != b.tuple_count() || a.nulls().len() != b.nulls().len() {
        return None;
    }
    // An injective hom whose image is all of `b` is an isomorphism (finite,
    // equal sizes). Search homs and filter; tuple-level candidate pruning
    // keeps this fast at the sizes cores have.
    fn search(
        work: &[(&dx_relation::AnnTuple, RelSym, Vec<&dx_relation::AnnTuple>)],
        i: usize,
        h: &mut NullMap,
        used: &mut BTreeSet<NullId>,
    ) -> bool {
        if i == work.len() {
            return true;
        }
        let (at, _, cands) = &work[i];
        'cands: for cand in cands {
            let mut bound: Vec<NullId> = Vec::new();
            for (x, y) in at.tuple.iter().zip(cand.tuple.iter()) {
                if let (Value::Null(n), Value::Null(m)) = (x, y) {
                    match h.get(&n) {
                        Some(&e) if e != m => {
                            for n in bound.drain(..) {
                                used.remove(&h.remove(&n).expect("bound"));
                            }
                            continue 'cands;
                        }
                        Some(_) => {}
                        None => {
                            if used.contains(&m) {
                                for n in bound.drain(..) {
                                    used.remove(&h.remove(&n).expect("bound"));
                                }
                                continue 'cands;
                            }
                            h.insert(n, m);
                            used.insert(m);
                            bound.push(n);
                        }
                    }
                }
            }
            if search(work, i + 1, h, used) {
                return true;
            }
            for n in bound {
                used.remove(&h.remove(&n).expect("bound"));
            }
        }
        false
    }
    let mut work: Vec<(&dx_relation::AnnTuple, RelSym, Vec<&dx_relation::AnnTuple>)> = Vec::new();
    for (r, rel) in a.relations() {
        // Empty markers must agree verbatim.
        let b_marks: Vec<_> = b
            .relation(r)
            .map(|br| br.empty_marks().cloned().collect())
            .unwrap_or_default();
        let a_marks: Vec<_> = rel.empty_marks().cloned().collect();
        if a_marks != b_marks {
            return None;
        }
        let Some(brel) = b.relation(r) else {
            if !rel.is_empty() {
                return None;
            }
            continue;
        };
        if rel.len() != brel.len() {
            return None;
        }
        for at in rel.iter() {
            let cands: Vec<&dx_relation::AnnTuple> = brel
                .iter()
                .filter(|cand| {
                    cand.ann == at.ann
                        && at
                            .tuple
                            .iter()
                            .zip(cand.tuple.iter())
                            .all(|(x, y)| match x {
                                Value::Const(_) => x == y,
                                Value::Null(_) => y.is_null(),
                            })
                })
                .collect();
            if cands.is_empty() {
                return None;
            }
            work.push((at, r, cands));
        }
    }
    work.sort_by_key(|(_, _, c)| c.len());
    let mut h = NullMap::new();
    let mut used = BTreeSet::new();
    (search(&work, 0, &mut h, &mut used) && apply_null_map(a, &h) == *b).then_some(h)
}

/// `second ∘ first` on null maps, restricted to the given domain.
fn compose_null_maps(
    first: &NullMap,
    second: &NullMap,
    domain: impl IntoIterator<Item = NullId>,
) -> NullMap {
    let mut out = NullMap::new();
    for n in domain {
        let mid = first.get(&n).copied().unwrap_or(n);
        let fin = second.get(&mid).copied().unwrap_or(mid);
        if fin != n {
            out.insert(n, fin);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::canonical_solution;
    use crate::mapping::Mapping;
    use dx_relation::{Ann, AnnTuple, Annotation, RelSym};

    fn at(vals: Vec<Value>, anns: Vec<Ann>) -> AnnTuple {
        AnnTuple::new(Tuple::new(vals), Annotation::new(anns))
    }

    /// The paper's §2 example: CSol R = {(a,⊥1),(a,⊥2),(b,⊥3)}. The core
    /// merges ⊥1 and ⊥2 (justified by the two E-tuples with first column a)
    /// but cannot merge across a and b.
    #[test]
    fn core_of_paper_csol() {
        let r = RelSym::new("CoreR");
        let mut inst = Instance::new();
        inst.insert(r, Tuple::new(vec![Value::c("a"), Value::null(1)]));
        inst.insert(r, Tuple::new(vec![Value::c("a"), Value::null(2)]));
        inst.insert(r, Tuple::new(vec![Value::c("b"), Value::null(3)]));
        let res = core_of(&inst);
        assert_eq!(res.core.tuple_count(), 2);
        assert!(hom_equivalent(&inst, &res.core));
        // The retraction really maps the original onto the core.
        assert_eq!(apply_value_map(&inst, &res.retraction), res.core);
    }

    /// Ground instances are rigid: the core is the instance itself.
    #[test]
    fn ground_instance_is_its_own_core() {
        let mut inst = Instance::new();
        inst.insert_names("CoreE", &["a", "b"]);
        inst.insert_names("CoreE", &["b", "c"]);
        let res = core_of(&inst);
        assert_eq!(res.core, inst);
        assert_eq!(res.steps, 0);
    }

    /// FKP-style collapse of a null onto a constant: F = {(a,b), (a,⊥)} has
    /// core {(a,b)} because ⊥ ↦ b is a homomorphism. The Null→Null regime
    /// cannot do this — the annotated core keeps both tuples.
    #[test]
    fn value_core_vs_null_core() {
        let f = RelSym::new("CoreF");
        let mut inst = Instance::new();
        inst.insert(f, Tuple::from_names(&["a", "b"]));
        inst.insert(f, Tuple::new(vec![Value::c("a"), Value::null(7)]));
        let res = core_of(&inst);
        assert_eq!(res.core.tuple_count(), 1);
        assert_eq!(res.retraction.get(&NullId(7)), Some(&Value::c("b")));

        let cl2 = vec![Ann::Closed, Ann::Closed];
        let mut ann = AnnInstance::new();
        ann.insert(f, at(vec![Value::c("a"), Value::c("b")], cl2.clone()));
        ann.insert(f, at(vec![Value::c("a"), Value::null(7)], cl2));
        let ares = ann_core_of(&ann);
        assert_eq!(
            ares.core.tuple_count(),
            2,
            "null→null core keeps the null tuple"
        );
        assert_eq!(ares.steps, 0);
    }

    /// Cores are idempotent: core(core(T)) = core(T).
    #[test]
    fn core_idempotent() {
        let r = RelSym::new("CoreIdem");
        let mut inst = Instance::new();
        for i in 0..4 {
            inst.insert(r, Tuple::new(vec![Value::c("a"), Value::null(i)]));
        }
        let res = core_of(&inst);
        assert_eq!(res.core.tuple_count(), 1);
        let res2 = core_of(&res.core);
        assert_eq!(res2.core, res.core);
        assert_eq!(res2.steps, 0);
    }

    /// A path of invented nulls cannot collapse onto a single copied edge
    /// unless the constants line up: {(a,b), (a,⊥), (⊥,b)} keeps all three
    /// tuples (⊥ would need (x,x)-style support).
    #[test]
    fn chain_does_not_collapse_without_support() {
        let e = RelSym::new("CoreChain");
        let mut inst = Instance::new();
        inst.insert(e, Tuple::from_names(&["a", "b"]));
        inst.insert(e, Tuple::new(vec![Value::c("a"), Value::null(1)]));
        inst.insert(e, Tuple::new(vec![Value::null(1), Value::c("b")]));
        let res = core_of(&inst);
        assert_eq!(res.core.tuple_count(), 3);
    }

    /// ... but with a loop (c,c) present, the whole chain retracts onto it.
    #[test]
    fn chain_collapses_onto_loop() {
        let e = RelSym::new("CoreLoop");
        let mut inst = Instance::new();
        inst.insert(e, Tuple::from_names(&["c", "c"]));
        inst.insert(e, Tuple::new(vec![Value::null(1), Value::null(2)]));
        inst.insert(e, Tuple::new(vec![Value::null(2), Value::null(3)]));
        let res = core_of(&inst);
        assert_eq!(res.core.tuple_count(), 1);
    }

    /// Annotated core of the canonical solution is a minimal Σα-solution:
    /// hom image of CSol_A + (identity) hom back, and no further shrink.
    #[test]
    fn ann_core_of_csol_is_minimal_solution() {
        let m = Mapping::parse("CoreTgt(x:cl, z:cl) <- CoreSrc(x, y)").unwrap();
        let mut s = Instance::new();
        s.insert_names("CoreSrc", &["a", "c1"]);
        s.insert_names("CoreSrc", &["a", "c2"]);
        s.insert_names("CoreSrc", &["b", "c3"]);
        let csol = canonical_solution(&m, &s);
        let res = ann_core_of(&csol.instance);
        assert_eq!(res.core.tuple_count(), 2);
        // Hom image of CSol_A: the retraction maps CSol_A onto the core.
        assert_eq!(apply_null_map(&csol.instance, &res.retraction), res.core);
        // Hom back into CSol_A (identity suffices — the core is a
        // subinstance), so by Proposition 1 it is a Σα-solution.
        assert!(find_ann_hom(&res.core, &csol.instance).is_some());
        // It is in fact a solution according to the solution theory.
        assert!(crate::solutions::is_solution(&m, &s, &res.core).is_some());
    }

    /// Annotations block merges the relational part would allow: two tuples
    /// equal up to annotation do not merge across different annotations.
    #[test]
    fn ann_core_respects_annotations() {
        let r = RelSym::new("CoreAnnR");
        let mut ann = AnnInstance::new();
        ann.insert(
            r,
            at(
                vec![Value::c("a"), Value::null(1)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        ann.insert(
            r,
            at(
                vec![Value::c("a"), Value::null(2)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        let res = ann_core_of(&ann);
        assert_eq!(
            res.core.tuple_count(),
            2,
            "different annotations cannot merge"
        );
        // With equal annotations they do merge.
        let mut ann2 = AnnInstance::new();
        ann2.insert(
            r,
            at(
                vec![Value::c("a"), Value::null(1)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        ann2.insert(
            r,
            at(
                vec![Value::c("a"), Value::null(2)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        let res2 = ann_core_of(&ann2);
        assert_eq!(res2.core.tuple_count(), 1);
    }

    /// Empty markers survive the core computation untouched.
    #[test]
    fn ann_core_keeps_empty_marks() {
        let r = RelSym::new("CoreMarkR");
        let mut ann = AnnInstance::new();
        ann.insert_empty_mark(r, Annotation::all_open(2));
        ann.insert(
            r,
            at(
                vec![Value::null(1), Value::null(2)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        ann.insert(
            r,
            at(
                vec![Value::null(3), Value::null(4)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        let res = ann_core_of(&ann);
        assert_eq!(res.core.tuple_count(), 1);
        let marks: Vec<_> = res
            .core
            .relation(r)
            .unwrap()
            .empty_marks()
            .cloned()
            .collect();
        assert_eq!(marks, vec![Annotation::all_open(2)]);
    }

    /// Isomorphism: detects renamings, rejects structure changes.
    #[test]
    fn ann_iso_basics() {
        let r = RelSym::new("IsoR");
        let cl2 = vec![Ann::Closed, Ann::Closed];
        let mut a = AnnInstance::new();
        a.insert(r, at(vec![Value::c("a"), Value::null(1)], cl2.clone()));
        a.insert(r, at(vec![Value::null(1), Value::null(2)], cl2.clone()));
        // Same shape, different null names.
        let mut b = AnnInstance::new();
        b.insert(r, at(vec![Value::c("a"), Value::null(7)], cl2.clone()));
        b.insert(r, at(vec![Value::null(7), Value::null(9)], cl2.clone()));
        let h = ann_isomorphic(&a, &b).expect("isomorphic");
        assert_eq!(h[&NullId(1)], NullId(7));
        assert_eq!(h[&NullId(2)], NullId(9));
        // Different sharing structure: not isomorphic.
        let mut c = AnnInstance::new();
        c.insert(r, at(vec![Value::c("a"), Value::null(7)], cl2.clone()));
        c.insert(r, at(vec![Value::null(8), Value::null(9)], cl2.clone()));
        assert!(ann_isomorphic(&a, &c).is_none());
        // Different annotations: not isomorphic.
        let mut d = AnnInstance::new();
        d.insert(
            r,
            at(
                vec![Value::c("a"), Value::null(7)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        d.insert(r, at(vec![Value::null(7), Value::null(9)], cl2));
        assert!(ann_isomorphic(&a, &d).is_none());
    }

    /// The core is unique up to isomorphism: two different shrink orders
    /// (forced by seeding from differently-permuted inputs) give isomorphic
    /// results.
    #[test]
    fn core_unique_up_to_iso() {
        let r = RelSym::new("IsoCore");
        let cl2 = vec![Ann::Closed, Ann::Closed];
        // Three a-tuples with independent nulls plus one b-tuple.
        let build = |ids: [u32; 4]| {
            let mut inst = AnnInstance::new();
            for &i in &ids[..3] {
                inst.insert(r, at(vec![Value::c("a"), Value::null(i)], cl2.clone()));
            }
            inst.insert(r, at(vec![Value::c("b"), Value::null(ids[3])], cl2.clone()));
            inst
        };
        let core1 = ann_core_of(&build([1, 2, 3, 4])).core;
        let core2 = ann_core_of(&build([14, 13, 12, 11])).core;
        assert_eq!(core1.tuple_count(), 2);
        assert!(ann_isomorphic(&core1, &core2).is_some());
    }

    /// find_value_hom fails when constants clash, succeeds when a renaming
    /// of nulls exists.
    #[test]
    fn value_hom_basics() {
        let r = RelSym::new("CoreHomB");
        let mut a = Instance::new();
        a.insert(r, Tuple::new(vec![Value::null(1), Value::null(1)]));
        let mut b = Instance::new();
        b.insert(r, Tuple::new(vec![Value::c("x"), Value::c("y")]));
        // ⊥1 must map to both x and y — impossible.
        assert!(find_value_hom(&a, &b).is_none());
        b.insert(r, Tuple::new(vec![Value::c("z"), Value::c("z")]));
        // Now (z,z) supports it.
        let h = find_value_hom(&a, &b).unwrap();
        assert_eq!(h.get(&NullId(1)), Some(&Value::c("z")));
    }
}
