//! Annotated schema mappings `(σ, τ, Σα)`.

use crate::std_dep::Std;
use dx_logic::classify::{self, QueryClass};
use dx_logic::Term;
use dx_relation::{Ann, Schema};
use std::fmt;

/// An annotated schema mapping: source schema `σ`, target schema `τ`, and a
/// set of annotated STDs `Σα`.
#[derive(Clone, PartialEq, Eq)]
pub struct Mapping {
    /// The source schema `σ`.
    pub source: Schema,
    /// The target schema `τ`.
    pub target: Schema,
    /// The annotated STDs `Σα`.
    pub stds: Vec<Std>,
}

impl Mapping {
    /// Build a mapping with explicit schemas; panics if an STD uses a
    /// relation not declared (or at the wrong arity) in the schemas.
    pub fn new(source: Schema, target: Schema, stds: Vec<Std>) -> Self {
        for std in &stds {
            for (rel, arity) in std.body.relations() {
                assert_eq!(
                    source.arity(rel),
                    Some(arity),
                    "body relation {rel}/{arity} not in source schema"
                );
            }
            for atom in &std.head {
                assert_eq!(
                    target.arity(atom.rel),
                    Some(atom.arity()),
                    "head relation {} not in target schema",
                    atom.rel
                );
            }
        }
        Mapping {
            source,
            target,
            stds,
        }
    }

    /// Build a mapping inferring both schemas from the STDs.
    pub fn from_stds(stds: Vec<Std>) -> Self {
        let mut source = Schema::new();
        let mut target = Schema::new();
        for std in &stds {
            for (rel, arity) in std.body.relations() {
                source.add(rel, arity);
            }
            for atom in &std.head {
                target.add(atom.rel, atom.arity());
            }
        }
        Mapping {
            source,
            target,
            stds,
        }
    }

    /// Parse a `;`-separated list of rules and infer the schemas.
    pub fn parse(src: &str) -> Result<Self, dx_logic::ParseError> {
        let rules = dx_logic::parse_rules(src)?;
        Ok(Self::from_stds(
            rules.into_iter().map(Std::from_parsed).collect(),
        ))
    }

    /// `#op(Σα)`: the maximum number of open positions per atom over all
    /// STDs — the classification parameter of Theorems 3 and 4.
    pub fn num_op(&self) -> usize {
        self.stds
            .iter()
            .map(|s| s.max_open_per_atom())
            .max()
            .unwrap_or(0)
    }

    /// `#cl(Σα)`: the maximum number of closed positions per atom — the
    /// classification parameter of Theorem 2.
    pub fn num_cl(&self) -> usize {
        self.stds
            .iter()
            .map(|s| s.max_closed_per_atom())
            .max()
            .unwrap_or(0)
    }

    /// Is every annotation open (the OWA semantics of [FKMP'05])?
    pub fn is_all_open(&self) -> bool {
        self.num_cl() == 0
    }

    /// Is every annotation closed (the CWA semantics of [Libkin'06])?
    pub fn is_all_closed(&self) -> bool {
        self.num_op() == 0
    }

    /// The mapping `Σop` / `Σcl`: every position re-annotated.
    pub fn reannotated(&self, ann: Ann) -> Mapping {
        Mapping {
            source: self.source.clone(),
            target: self.target.clone(),
            stds: self.stds.iter().map(|s| s.reannotated(ann)).collect(),
        }
    }

    /// Shorthand for [`Mapping::reannotated`] with [`Ann::Open`].
    pub fn all_open(&self) -> Mapping {
        self.reannotated(Ann::Open)
    }

    /// Shorthand for [`Mapping::reannotated`] with [`Ann::Closed`].
    pub fn all_closed(&self) -> Mapping {
        self.reannotated(Ann::Closed)
    }

    /// Pointwise annotation order `α ⪯ α′` between two annotations of the
    /// same underlying STD set (Theorem 1(3)); `None` if the rules differ.
    pub fn annotation_le(&self, other: &Mapping) -> Option<bool> {
        if self.stds.len() != other.stds.len() {
            return None;
        }
        let mut le = true;
        for (a, b) in self.stds.iter().zip(other.stds.iter()) {
            le &= a.annotation_le(b)?;
        }
        Some(le)
    }

    /// The most general query class containing every STD body
    /// (`Conjunctive` < `Positive` < … < `FullFirstOrder`).
    pub fn body_class(&self) -> QueryClass {
        self.stds
            .iter()
            .map(|s| classify::classify(&s.body))
            .max()
            .unwrap_or(QueryClass::Conjunctive)
    }

    /// Do all bodies belong to a syntactically monotone class (CQ or
    /// positive)? Such mappings are the "monotone STDs" of Lemma 3.
    pub fn has_monotone_bodies(&self) -> bool {
        self.body_class().is_monotone()
    }

    /// Do all bodies use conjunctive queries only (the setting of
    /// [FKMP'05] and of the composition results for CQ-STDs)?
    pub fn has_cq_bodies(&self) -> bool {
        self.body_class() == QueryClass::Conjunctive
    }

    /// Is this a *copying* mapping (every STD of the form
    /// `R′(x̄) :– R(x̄)`)? Copying mappings witness several lower bounds in
    /// the paper (§4).
    pub fn is_copying(&self) -> bool {
        self.stds.iter().all(|s| {
            s.head.len() == 1
                && match &s.body {
                    dx_logic::Formula::Atom(_, args) => {
                        args == &s.head[0].args && args.iter().all(|t| matches!(t, Term::Var(_)))
                    }
                    _ => false,
                }
        })
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "σ = {}", self.source)?;
        writeln!(f, "τ = {}", self.target)?;
        for std in &self.stds {
            writeln!(f, "  {std}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_relation::RelSym;

    fn conference() -> Mapping {
        Mapping::parse(
            "Submissions(x:cl, z:op) <- Papers(x, y);\n\
             Reviews(x:cl, z:cl) <- Assignments(x, y);\n\
             Reviews(x:cl, z:op) <- Papers(x, y) & !exists r. Assignments(x, r);",
        )
        .unwrap()
    }

    #[test]
    fn schema_inference() {
        let m = conference();
        assert_eq!(m.source.arity(RelSym::new("Papers")), Some(2));
        assert_eq!(m.source.arity(RelSym::new("Assignments")), Some(2));
        assert_eq!(m.target.arity(RelSym::new("Submissions")), Some(2));
        assert_eq!(m.target.arity(RelSym::new("Reviews")), Some(2));
    }

    #[test]
    fn op_cl_statistics() {
        let m = conference();
        assert_eq!(m.num_op(), 1);
        assert_eq!(m.num_cl(), 2);
        assert!(!m.is_all_open() && !m.is_all_closed());
        assert!(m.all_open().is_all_open());
        assert!(m.all_closed().is_all_closed());
    }

    #[test]
    fn annotation_order_on_mappings() {
        let m = conference();
        assert_eq!(m.all_closed().annotation_le(&m), Some(true));
        assert_eq!(m.annotation_le(&m.all_open()), Some(true));
        assert_eq!(m.all_open().annotation_le(&m.all_closed()), Some(false));
    }

    #[test]
    fn body_classification() {
        let m = conference();
        // The third rule has negation, so the mapping is not monotone.
        assert!(!m.has_monotone_bodies());
        let cq = Mapping::parse("R(x:cl, z:op) <- E(x, y)").unwrap();
        assert!(cq.has_cq_bodies());
    }

    #[test]
    fn copying_detection() {
        let copy = Mapping::parse("Rp(x:cl, y:cl) <- R(x, y)").unwrap();
        assert!(copy.is_copying());
        let not_copy = Mapping::parse("Rp(x:cl, z:op) <- R(x, y)").unwrap();
        assert!(!not_copy.is_copying());
    }

    #[test]
    #[should_panic(expected = "not in source schema")]
    fn explicit_schema_validation() {
        let std = Std::parse("R(x:cl) <- E(x, x)").unwrap();
        Mapping::new(
            Schema::from_pairs([("Other", 2)]),
            Schema::from_pairs([("R", 1)]),
            vec![std],
        );
    }
}
