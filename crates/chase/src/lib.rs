//! # dx-chase — schema mappings and canonical solutions
//!
//! The data-exchange substrate of `oc-exchange`:
//!
//! * [`TargetAtom`], [`Std`] — annotated source-to-target dependencies
//!   `ψ(x̄, z̄) :– φ(x̄, ȳ)` with per-position `op`/`cl` annotations (§3 of
//!   Libkin & Sirangelo);
//! * [`Mapping`] — a triple `(σ, τ, Σα)` with annotation statistics
//!   (`#op(Σα)`, `#cl(Σα)`) that drive both trichotomy theorems;
//! * [`canonical::canonical_solution`] — the annotated canonical solution
//!   `CSol_A(S)` with per-null justification bookkeeping;
//! * [`hom`] — annotation-preserving homomorphisms (`Null → Null`), onto
//!   images, and homomorphisms into *expansions* (Proposition 1);
//! * [`solutions`] — solution theories: OWA-solutions of [FKMP'05],
//!   CWA-(pre)solutions of [Libkin'06], and the paper's `Σα`-solutions
//!   decided via the Proposition 1 characterization, plus annotated facts
//!   and the `|=_cl` satisfaction relation they are defined from;
//! * [`target_deps`] / [`chase_engine`] — the §6 extension: target tgds and
//!   egds, the weak-acyclicity test, and a standard chase over annotated
//!   instances (`canonical_solution_with_deps` runs the full
//!   exchange-then-repair pipeline);
//! * [`core`] — cores of instances with nulls: the classic FKP core
//!   (\[12\], nulls may collapse onto constants) and the annotated
//!   `Null → Null` core, whose application to `CSol_A(S)` yields a minimal
//!   `Σα`-solution.

#![warn(missing_docs)]

pub mod canonical;
pub mod chase_engine;
pub mod core;
pub mod hom;
pub mod mapping;
pub mod solutions;
pub mod std_dep;
pub mod strategy;
pub mod target_deps;

pub use canonical::{
    canonical_solution, canonical_solution_via, head_env, instantiate_atom, BodyEval,
    CanonicalSolution, Justification, NaiveBodyEval,
};
pub use chase_engine::{canonical_solution_with_deps, chase, ChaseOutcome, ChaseResult};
pub use core::{ann_core_of, ann_isomorphic, core_of, AnnCoreResult, CoreResult};
pub use hom::NullMap;
pub use mapping::Mapping;
pub use solutions::{is_owa_solution, is_solution, AnnotatedFact};
pub use std_dep::{Std, TargetAtom};
pub use strategy::{
    canonical_solution_with_deps_via, satisfies_deps_via, ChaseStrategy, NaiveChase,
};
pub use target_deps::{is_weakly_acyclic, Egd, TargetDep, Tgd};
