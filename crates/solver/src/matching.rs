//! Hopcroft–Karp maximum bipartite matching.
//!
//! The combinatorial engine behind the Codd-table fast path of
//! [`crate::repa`]: the paper remarks (§3, after Corollary 1) that `Rep`
//! membership is PTIME for Codd tables — where no null repeats — versus
//! NP-complete for naive tables. For Codd tables every `T`-tuple chooses its
//! image independently, so `R ∈ Rep(T)` reduces to a bipartite *surjective
//! assignment*: a matching that saturates the `R` side plus non-empty
//! candidate lists on the `T` side.
//!
//! `O(E·√V)` worst case; deterministic (adjacency order decides ties).

/// Compute a maximum matching in a bipartite graph given as adjacency lists
/// from left vertices to right vertices. Returns `(size, match_left,
/// match_right)` where `match_left[l] = Some(r)` iff `l` is matched to `r`.
pub fn max_bipartite_matching(
    n_left: usize,
    n_right: usize,
    adj: &[Vec<usize>],
) -> (usize, Vec<Option<usize>>, Vec<Option<usize>>) {
    assert_eq!(adj.len(), n_left, "one adjacency list per left vertex");
    const NIL: usize = usize::MAX;
    let mut match_l = vec![NIL; n_left];
    let mut match_r = vec![NIL; n_right];
    let mut dist = vec![0usize; n_left];
    let mut size = 0usize;

    // BFS layers from free left vertices.
    fn bfs(adj: &[Vec<usize>], match_l: &[usize], match_r: &[usize], dist: &mut [usize]) -> bool {
        const NIL: usize = usize::MAX;
        let mut queue = std::collections::VecDeque::new();
        for (l, &m) in match_l.iter().enumerate() {
            if m == NIL {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = NIL;
            }
        }
        let mut found = false;
        while let Some(l) = queue.pop_front() {
            for &r in &adj[l] {
                let next = match_r[r];
                if next == NIL {
                    found = true;
                } else if dist[next] == NIL {
                    dist[next] = dist[l] + 1;
                    queue.push_back(next);
                }
            }
        }
        found
    }

    fn dfs(
        l: usize,
        adj: &[Vec<usize>],
        match_l: &mut [usize],
        match_r: &mut [usize],
        dist: &mut [usize],
    ) -> bool {
        const NIL: usize = usize::MAX;
        for i in 0..adj[l].len() {
            let r = adj[l][i];
            let next = match_r[r];
            if next == NIL || (dist[next] == dist[l] + 1 && dfs(next, adj, match_l, match_r, dist))
            {
                match_l[l] = r;
                match_r[r] = l;
                return true;
            }
        }
        dist[l] = NIL;
        false
    }

    while bfs(adj, &match_l, &match_r, &mut dist) {
        for l in 0..n_left {
            if match_l[l] == NIL && dfs(l, adj, &mut match_l, &mut match_r, &mut dist) {
                size += 1;
            }
        }
    }

    let to_opt = |v: Vec<usize>| {
        v.into_iter()
            .map(|x| (x != NIL).then_some(x))
            .collect::<Vec<Option<usize>>>()
    };
    (size, to_opt(match_l), to_opt(match_r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_cycle() {
        // 3×3 cycle-ish graph with a perfect matching.
        let adj = vec![vec![0, 1], vec![1, 2], vec![2, 0]];
        let (size, ml, mr) = max_bipartite_matching(3, 3, &adj);
        assert_eq!(size, 3);
        // Every vertex matched consistently.
        for (l, r) in ml.iter().enumerate() {
            let r = r.expect("saturated");
            assert_eq!(mr[r], Some(l));
        }
    }

    #[test]
    fn augmenting_path_needed() {
        // Greedy l0→r0 blocks l1 (only r0); HK must augment.
        let adj = vec![vec![0, 1], vec![0]];
        let (size, ml, _) = max_bipartite_matching(2, 2, &adj);
        assert_eq!(size, 2);
        assert_eq!(ml[0], Some(1));
        assert_eq!(ml[1], Some(0));
    }

    #[test]
    fn deficient_graph() {
        // Three left vertices all pointing at one right vertex.
        let adj = vec![vec![0], vec![0], vec![0]];
        let (size, _, mr) = max_bipartite_matching(3, 1, &adj);
        assert_eq!(size, 1);
        assert!(mr[0].is_some());
    }

    #[test]
    fn empty_graph() {
        let (size, ml, mr) = max_bipartite_matching(0, 0, &[]);
        assert_eq!(size, 0);
        assert!(ml.is_empty() && mr.is_empty());
    }

    #[test]
    fn hall_violation_detected() {
        // Two left vertices share a single right neighbour; a third right
        // vertex is isolated.
        let adj = vec![vec![1], vec![1]];
        let (size, _, mr) = max_bipartite_matching(2, 3, &adj);
        assert_eq!(size, 1);
        assert!(mr[0].is_none() && mr[2].is_none());
    }

    /// Randomized sanity: matching size equals the brute-force maximum on
    /// small graphs.
    #[test]
    fn matches_brute_force() {
        fn brute(n_left: usize, adj: &[Vec<usize>], used: &mut Vec<bool>, l: usize) -> usize {
            if l == n_left {
                return 0;
            }
            // Skip l.
            let mut best = brute(n_left, adj, used, l + 1);
            for &r in &adj[l] {
                if !used[r] {
                    used[r] = true;
                    best = best.max(1 + brute(n_left, adj, used, l + 1));
                    used[r] = false;
                }
            }
            best
        }
        let mut seed = 0xDEADBEEFu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let n_left = (next() % 5 + 1) as usize;
            let n_right = (next() % 5 + 1) as usize;
            let adj: Vec<Vec<usize>> = (0..n_left)
                .map(|_| (0..n_right).filter(|_| next() % 3 == 0).collect())
                .collect();
            let (size, _, _) = max_bipartite_matching(n_left, n_right, &adj);
            let mut used = vec![false; n_right];
            assert_eq!(size, brute(n_left, &adj, &mut used, 0));
        }
    }
}
