//! `Rep_A` membership: deciding `R ∈ Rep_A(T)` by valuation search.
//!
//! Following §3 of the paper: a ground instance `R` is in `Rep_A(T)` iff for
//! some valuation `v` (total on the nulls of `T`),
//!
//! 1. `R` contains all non-empty tuples of `v(T)`, and
//! 2. every tuple of `R` coincides with some `v(tᵢ)` on all positions the
//!    annotation `αᵢ` marks closed (or is licensed by an all-open empty
//!    marker).
//!
//! This is the NP witness of Theorem 2; the search below is a backtracking
//! CSP over the nulls of `T`, with per-tuple candidate lists (each `T`-tuple
//! must land on *some* `R`-tuple) and the coverage condition (2) checked at
//! each leaf.

use dx_relation::index::{const_pattern_of, InstanceIndex};
use dx_relation::{AnnInstance, Instance, NullId, Tuple, Valuation, Value};

/// How candidate `R`-tuples are discovered during the `Rep_A` valuation
/// search (and the embedding search of Lemma 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MatchStrategy {
    /// Scan every `R`-tuple of the relation per `T`-tuple (the reference
    /// behaviour, kept as the ablation baseline).
    Scan,
    /// Probe a per-column hash index ([`dx_relation::InstanceIndex`]) on the
    /// constant positions of the `T`-tuple, post-filtering for repeated
    /// nulls.
    #[default]
    Indexed,
}

/// Decide `R ∈ Rep_A(T)`; returns a witnessing valuation if one exists.
///
/// `R` must be ground. Runs in exponential time in the number of nulls in
/// the worst case (the problem is NP-complete as soon as closed annotations
/// are present — Theorem 2), **except** for all-closed Codd tables, which
/// take the PTIME Hopcroft–Karp route of [`codd_rep_membership`] (the §3
/// complexity remark: canonical solutions are Codd whenever no rule head
/// shares an existential variable across atoms).
pub fn rep_a_membership(t: &AnnInstance, r: &Instance) -> Option<Valuation> {
    if t.is_all_closed() {
        let ground_part = t.rel_part();
        if is_codd(&ground_part) {
            // All-closed empty markers neither license nor require tuples;
            // the decision is exactly classical Rep membership.
            return codd_rep_membership(&ground_part, r);
        }
    }
    rep_a_membership_via(MatchStrategy::Indexed, t, r, true)
}

/// [`rep_a_membership`] with the most-constrained-first task ordering as an
/// ablation switch (`order_tasks = false` keeps declaration order); used by
/// the `ablations` bench. Keeps the scanning candidate discovery as the
/// second ablation baseline.
pub fn rep_a_membership_with(
    t: &AnnInstance,
    r: &Instance,
    order_tasks: bool,
) -> Option<Valuation> {
    rep_a_membership_via(MatchStrategy::Scan, t, r, order_tasks)
}

/// The generic `Rep_A` backtracking search with an explicit candidate
/// [`MatchStrategy`].
pub fn rep_a_membership_via(
    strategy: MatchStrategy,
    t: &AnnInstance,
    r: &Instance,
    order_tasks: bool,
) -> Option<Valuation> {
    assert!(r.is_ground(), "Rep_A members are instances over Const");

    // Fast failure: relations where R has tuples but T is entirely absent
    // can never be covered.
    for (rel, rrel) in r.relations() {
        if !rrel.is_empty() && t.relation(rel).is_none() {
            return None;
        }
    }

    let index = match strategy {
        MatchStrategy::Indexed => Some(InstanceIndex::build(r)),
        MatchStrategy::Scan => None,
    };

    // Build the matching tasks: every non-empty annotated tuple of T must be
    // mapped (via the valuation) onto an R-tuple.
    struct Task {
        tuple: Tuple,
        candidates: Vec<Tuple>,
    }
    let mut tasks: Vec<Task> = Vec::new();
    for (rel, trel) in t.relations() {
        for at in trel.iter() {
            let candidates: Vec<Tuple> = match &index {
                Some(idx) => idx
                    .relation(rel)
                    .map(|ri| {
                        ri.matching(&const_pattern_of(&at.tuple))
                            .into_iter()
                            .map(|id| ri.get(id))
                            .filter(|cand| positionally_compatible(&at.tuple, cand))
                            .cloned()
                            .collect()
                    })
                    .unwrap_or_default(),
                None => r
                    .tuples(rel)
                    .filter(|cand| positionally_compatible(&at.tuple, cand))
                    .cloned()
                    .collect(),
            };
            if candidates.is_empty() {
                return None;
            }
            tasks.push(Task {
                tuple: at.tuple.clone(),
                candidates,
            });
        }
    }
    // Most-constrained-first ordering keeps the search shallow.
    if order_tasks {
        tasks.sort_by_key(|t| t.candidates.len());
    }

    let all_nulls: Vec<NullId> = t.nulls().into_iter().collect();

    fn search(
        tasks: &[(Tuple, Vec<Tuple>)],
        i: usize,
        v: &mut Valuation,
        t: &AnnInstance,
        r: &Instance,
        all_nulls: &[NullId],
    ) -> bool {
        if i == tasks.len() {
            // All T-tuples placed. Any null not occurring in a tuple is
            // irrelevant; give it an arbitrary image so the valuation is
            // total (choose the first candidate constant or a base value).
            let mut extra: Vec<NullId> = Vec::new();
            for &n in all_nulls {
                if !v.is_defined(n) {
                    // Any constant works; nulls outside tuples do not affect
                    // either condition. Use a deterministic dummy.
                    v.set(n, dx_relation::ConstId::new("⋆unused"));
                    extra.push(n);
                }
            }
            let ok = t.apply(v).covers_instance(r);
            if !ok {
                for n in extra {
                    v.unset(n);
                }
            }
            return ok;
        }
        let (tuple, candidates) = &tasks[i];
        'cands: for cand in candidates {
            let mut bound: Vec<NullId> = Vec::new();
            for (tv, cv) in tuple.iter().zip(cand.iter()) {
                match tv {
                    Value::Const(_) => {} // compatibility pre-checked
                    Value::Null(n) => {
                        let c = cv.as_const().expect("R is ground");
                        match v.get(n) {
                            Some(existing) if existing != c => {
                                for n in bound.drain(..) {
                                    v.unset(n);
                                }
                                continue 'cands;
                            }
                            Some(_) => {}
                            None => {
                                v.set(n, c);
                                bound.push(n);
                            }
                        }
                    }
                }
            }
            if search(tasks, i + 1, v, t, r, all_nulls) {
                return true;
            }
            for n in bound {
                v.unset(n);
            }
        }
        false
    }

    let task_pairs: Vec<(Tuple, Vec<Tuple>)> =
        tasks.into_iter().map(|t| (t.tuple, t.candidates)).collect();
    let mut v = Valuation::new();
    search(&task_pairs, 0, &mut v, t, r, &all_nulls).then_some(v)
}

/// Positional compatibility of a T-tuple with an R-tuple: constants must
/// agree; repeated nulls must see equal R-values.
fn positionally_compatible(t: &Tuple, cand: &Tuple) -> bool {
    if t.arity() != cand.arity() {
        return false;
    }
    let mut local: Vec<(NullId, Value)> = Vec::new();
    for (tv, cv) in t.iter().zip(cand.iter()) {
        match tv {
            Value::Const(_) => {
                if tv != cv {
                    return false;
                }
            }
            Value::Null(n) => {
                if let Some((_, prev)) = local.iter().find(|(m, _)| *m == n) {
                    if *prev != cv {
                        return false;
                    }
                } else {
                    local.push((n, cv));
                }
            }
        }
    }
    true
}

/// Find a valuation `v` with `v(T) ⊆ R` (an *embedding* of the naive table
/// `T` into the ground instance `R`). This is the first condition of
/// `Rep_A` membership alone — the workhorse of the Lemma 3 composition
/// fast path, where the open-world target only has to *contain* the
/// valuation image.
///
/// Unlike the leaf-checked valuation enumeration, this is a per-tuple
/// candidate CSP: nulls are constrained by the `R`-tuples each `T`-tuple
/// can land on, so inconsistent prefixes are pruned immediately.
pub fn find_embedding_valuation(t: &Instance, r: &Instance) -> Option<Valuation> {
    assert!(r.is_ground(), "embedding targets are instances over Const");
    let index = InstanceIndex::build(r);
    let mut tasks: Vec<(Tuple, Vec<Tuple>)> = Vec::new();
    for (rel, trel) in t.relations() {
        for tuple in trel.iter() {
            let candidates: Vec<Tuple> = index
                .relation(rel)
                .map(|ri| {
                    ri.matching(&const_pattern_of(tuple))
                        .into_iter()
                        .map(|id| ri.get(id))
                        .filter(|cand| positionally_compatible(tuple, cand))
                        .cloned()
                        .collect()
                })
                .unwrap_or_default();
            if candidates.is_empty() {
                return None;
            }
            tasks.push((tuple.clone(), candidates));
        }
    }
    tasks.sort_by_key(|(_, c)| c.len());

    fn search(tasks: &[(Tuple, Vec<Tuple>)], i: usize, v: &mut Valuation) -> bool {
        if i == tasks.len() {
            return true;
        }
        let (tuple, candidates) = &tasks[i];
        'cands: for cand in candidates {
            let mut bound: Vec<NullId> = Vec::new();
            for (tv, cv) in tuple.iter().zip(cand.iter()) {
                if let Value::Null(n) = tv {
                    let c = cv.as_const().expect("target is ground");
                    match v.get(n) {
                        Some(existing) if existing != c => {
                            for n in bound.drain(..) {
                                v.unset(n);
                            }
                            continue 'cands;
                        }
                        Some(_) => {}
                        None => {
                            v.set(n, c);
                            bound.push(n);
                        }
                    }
                }
            }
            if search(tasks, i + 1, v) {
                return true;
            }
            for n in bound {
                v.unset(n);
            }
        }
        false
    }

    let mut v = Valuation::new();
    search(&tasks, 0, &mut v).then_some(v)
}

/// Is the instance a **Codd table**: no null occurs more than once across
/// the whole instance (so every null is an independent "unknown")? The
/// paper (§3, after Corollary 1) cites the classical complexity gap: `Rep`
/// membership is PTIME for Codd tables, NP-complete for naive tables.
pub fn is_codd(t: &Instance) -> bool {
    let mut seen = std::collections::BTreeSet::new();
    t.relations().all(|(_, rel)| {
        rel.iter().all(|tuple| {
            tuple.iter().all(|v| match v {
                Value::Null(n) => seen.insert(n),
                Value::Const(_) => true,
            })
        })
    })
}

/// PTIME `Rep` membership for **Codd tables** via Hopcroft–Karp matching.
///
/// For a Codd table each `T`-tuple's image under a valuation is chosen
/// independently (its nulls appear nowhere else), so `R = v(T)` for some `v`
/// iff (a) every `T`-tuple is *compatible* with at least one `R`-tuple of
/// its relation (constants agree), and (b) a matching in the compatibility
/// graph saturates every `R`-tuple (giving each `R`-tuple a private
/// preimage; the remaining `T`-tuples pile onto any compatible image).
/// Returns a witnessing valuation. Panics if `t` is not Codd.
pub fn codd_rep_membership(t: &Instance, r: &Instance) -> Option<Valuation> {
    assert!(r.is_ground(), "Rep members are instances over Const");
    assert!(is_codd(t), "codd_rep_membership requires a Codd table");
    // Flatten both sides, tracking relations.
    let t_tuples: Vec<(dx_relation::RelSym, &Tuple)> = t
        .relations()
        .flat_map(|(rel, rl)| rl.iter().map(move |tu| (rel, tu)))
        .collect();
    let r_tuples: Vec<(dx_relation::RelSym, &Tuple)> = r
        .relations()
        .flat_map(|(rel, rl)| rl.iter().map(move |tu| (rel, tu)))
        .collect();
    // Compatibility lists (left = R-tuples, to saturate; right = T-tuples).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); r_tuples.len()];
    let mut t_candidates: Vec<Option<usize>> = vec![None; t_tuples.len()];
    for (ri, (rrel, rt)) in r_tuples.iter().enumerate() {
        for (ti, (trel, tt)) in t_tuples.iter().enumerate() {
            if rrel == trel && positionally_compatible(tt, rt) {
                adj[ri].push(ti);
                t_candidates[ti].get_or_insert(ri);
            }
        }
    }
    // (a) every T-tuple has an image.
    if t_candidates.iter().any(|c| c.is_none()) {
        return None;
    }
    // (b) a matching saturating R.
    let (size, match_r_side, _) =
        crate::matching::max_bipartite_matching(r_tuples.len(), t_tuples.len(), &adj);
    if size != r_tuples.len() {
        return None;
    }
    // Build the valuation: matched T-tuples take their matched R-image;
    // unmatched ones take their first compatible image.
    let mut image: Vec<usize> = t_candidates.iter().map(|c| c.expect("checked")).collect();
    for (ri, m) in match_r_side.iter().enumerate() {
        let ti = m.expect("saturated");
        image[ti] = ri;
    }
    let mut v = Valuation::new();
    for (ti, (_, tt)) in t_tuples.iter().enumerate() {
        let (_, rt) = r_tuples[image[ti]];
        for (tv, rv) in tt.iter().zip(rt.iter()) {
            if let Value::Null(n) = tv {
                v.set(n, rv.as_const().expect("R is ground"));
            }
        }
    }
    let vt = t.apply(&v);
    debug_assert!(vt.is_subinstance_of(r) && r.is_subinstance_of(&vt));
    Some(v)
}

/// Classical `Rep` membership for naive tables (no annotations): is
/// `R = v(T)` ... more precisely `R ∈ Rep(T)` where `Rep(T) = {v(T)}`?
///
/// Under the paper's definition `Rep(T) = {v(T) | v a valuation}` — i.e. `R`
/// must equal some valuation image *exactly*. This is the all-closed special
/// case of `Rep_A` (Lemma 1), implemented directly for clarity and tests.
/// Codd tables (no repeated nulls) automatically take the PTIME matching
/// route of [`codd_rep_membership`].
pub fn rep_membership(t: &Instance, r: &Instance) -> Option<Valuation> {
    assert!(r.is_ground(), "Rep members are instances over Const");
    if is_codd(t) {
        return codd_rep_membership(t, r);
    }
    // v(T) ⊆ R via the Rep_A machinery with all-closed annotations, then
    // check equality v(T) = R.
    let mut annotated = AnnInstance::new();
    for (rel, trel) in t.relations() {
        for tuple in trel.iter() {
            annotated.insert(
                rel,
                dx_relation::AnnTuple::new(
                    tuple.clone(),
                    dx_relation::Annotation::all_closed(tuple.arity()),
                ),
            );
        }
    }
    let v = rep_a_membership(&annotated, r)?;
    // Coverage under all-closed annotations already forces R ⊆ v(T); the
    // membership search forces v(T) ⊆ R. Equality holds; but relations R has
    // that T lacks entirely were rejected up front. Double-check in debug.
    debug_assert_eq!(t.apply(&v).union(r), t.apply(&v));
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_relation::{Ann, AnnTuple, Annotation, RelSym};

    fn at(vals: Vec<Value>, anns: Vec<Ann>) -> AnnTuple {
        AnnTuple::new(Tuple::new(vals), Annotation::new(anns))
    }

    /// Rep_A({(a^cl, ⊥^op)}) contains all relations whose projection on the
    /// first attribute is {a} (paper §3).
    #[test]
    fn open_null_allows_replication() {
        let rel = RelSym::new("RA1");
        let mut t = AnnInstance::new();
        t.insert(
            rel,
            at(
                vec![Value::c("a"), Value::null(0)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        let mut r = Instance::new();
        r.insert_names("RA1", &["a", "x"]);
        r.insert_names("RA1", &["a", "y"]);
        r.insert_names("RA1", &["a", "z"]);
        assert!(rep_a_membership(&t, &r).is_some());
        // But a tuple with first attribute b is not covered.
        r.insert_names("RA1", &["b", "x"]);
        assert!(rep_a_membership(&t, &r).is_none());
    }

    /// Rep_A({(a^cl, ⊥^cl)}) contains exactly the one-tuple relations
    /// {(a, b)} (paper §3).
    #[test]
    fn closed_null_forces_single_value() {
        let rel = RelSym::new("RA2");
        let mut t = AnnInstance::new();
        t.insert(
            rel,
            at(
                vec![Value::c("a"), Value::null(0)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        let mut one = Instance::new();
        one.insert_names("RA2", &["a", "b"]);
        assert!(rep_a_membership(&t, &one).is_some());
        let mut two = Instance::new();
        two.insert_names("RA2", &["a", "b"]);
        two.insert_names("RA2", &["a", "c"]);
        assert!(rep_a_membership(&t, &two).is_none());
    }

    /// Repeated nulls must take equal values (naive-table semantics).
    #[test]
    fn shared_nulls_enforce_equality() {
        let rel = RelSym::new("RA3");
        let cl2 = vec![Ann::Closed, Ann::Closed];
        let mut t = AnnInstance::new();
        t.insert(rel, at(vec![Value::null(0), Value::null(0)], cl2.clone()));
        let mut good = Instance::new();
        good.insert_names("RA3", &["k", "k"]);
        assert!(rep_a_membership(&t, &good).is_some());
        let mut bad = Instance::new();
        bad.insert_names("RA3", &["k", "l"]);
        assert!(rep_a_membership(&t, &bad).is_none());
    }

    /// Cross-tuple null sharing.
    #[test]
    fn cross_tuple_null_consistency() {
        let rel = RelSym::new("RA4");
        let cl1 = vec![Ann::Closed];
        let mut t = AnnInstance::new();
        let r2 = RelSym::new("RA4b");
        t.insert(rel, at(vec![Value::null(0)], cl1.clone()));
        t.insert(r2, at(vec![Value::null(0)], cl1.clone()));
        let mut good = Instance::new();
        good.insert_names("RA4", &["k"]);
        good.insert_names("RA4b", &["k"]);
        assert!(rep_a_membership(&t, &good).is_some());
        let mut bad = Instance::new();
        bad.insert_names("RA4", &["k"]);
        bad.insert_names("RA4b", &["l"]);
        assert!(rep_a_membership(&t, &bad).is_none());
    }

    /// All-open empty markers license arbitrary tuples; others nothing.
    #[test]
    fn empty_marker_semantics() {
        let rel = RelSym::new("RA5");
        let mut t = AnnInstance::new();
        t.insert_empty_mark(rel, Annotation::all_open(2));
        let mut r = Instance::new();
        r.insert_names("RA5", &["p", "q"]);
        assert!(rep_a_membership(&t, &r).is_some());
        assert!(
            rep_a_membership(&t, &Instance::new()).is_some(),
            "the empty instance is in the semantics of an empty marker"
        );
        let mut t2 = AnnInstance::new();
        t2.insert_empty_mark(rel, Annotation::new(vec![Ann::Closed, Ann::Open]));
        assert!(rep_a_membership(&t2, &r).is_none());
        assert!(rep_a_membership(&t2, &Instance::new()).is_some());
    }

    /// The valuation returned is a real witness.
    #[test]
    fn witness_is_verifiable() {
        let rel = RelSym::new("RA6");
        let mut t = AnnInstance::new();
        t.insert(
            rel,
            at(
                vec![Value::null(0), Value::null(1)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        let mut r = Instance::new();
        r.insert_names("RA6", &["u", "v"]);
        r.insert_names("RA6", &["u", "w"]);
        let v = rep_a_membership(&t, &r).expect("member");
        let vt = t.apply(&v);
        assert!(vt.rel_part().is_subinstance_of(&r));
        assert!(vt.covers_instance(&r));
    }

    /// Codd detection: repeated nulls (within a tuple or across tuples)
    /// disqualify.
    #[test]
    fn codd_detection() {
        let rel = RelSym::new("CoddD");
        let mut codd = Instance::new();
        codd.insert(rel, Tuple::new(vec![Value::null(1), Value::null(2)]));
        codd.insert(rel, Tuple::new(vec![Value::c("a"), Value::null(3)]));
        assert!(is_codd(&codd));
        let mut naive = codd.clone();
        naive.insert(rel, Tuple::new(vec![Value::null(1), Value::c("b")]));
        assert!(!is_codd(&naive), "⊥1 repeats across tuples");
        let mut diag = Instance::new();
        diag.insert(rel, Tuple::new(vec![Value::null(9), Value::null(9)]));
        assert!(!is_codd(&diag), "⊥9 repeats within a tuple");
    }

    /// The matching-critical case: a greedy image assignment fails, an
    /// augmenting path succeeds.
    #[test]
    fn codd_membership_needs_augmenting_path() {
        let rel = RelSym::new("CoddM");
        let mut t = Instance::new();
        // t1 = (a, ⊥1) is compatible with both R-tuples; t2 = (a, x) only
        // with (a, x). Saturating both R-tuples forces t1 → (a, y).
        t.insert(rel, Tuple::new(vec![Value::c("a"), Value::null(1)]));
        t.insert(rel, Tuple::from_names(&["a", "x"]));
        let mut r = Instance::new();
        r.insert_names("CoddM", &["a", "x"]);
        r.insert_names("CoddM", &["a", "y"]);
        let v = codd_rep_membership(&t, &r).expect("member via augmenting path");
        assert_eq!(v.get(NullId(1)), Some(dx_relation::ConstId::new("y")));
    }

    /// Codd non-membership: more R-tuples than T-tuples can cover.
    #[test]
    fn codd_membership_counts() {
        let rel = RelSym::new("CoddC");
        let mut t = Instance::new();
        t.insert(rel, Tuple::new(vec![Value::null(1)]));
        let mut r = Instance::new();
        r.insert_names("CoddC", &["u"]);
        r.insert_names("CoddC", &["w"]);
        assert!(
            codd_rep_membership(&t, &r).is_none(),
            "one tuple cannot be two"
        );
        // And merging is fine the other way: two T-tuples, one R-tuple.
        let mut t2 = Instance::new();
        t2.insert(rel, Tuple::new(vec![Value::null(1)]));
        t2.insert(rel, Tuple::new(vec![Value::null(2)]));
        let mut r2 = Instance::new();
        r2.insert_names("CoddC", &["u"]);
        assert!(codd_rep_membership(&t2, &r2).is_some());
    }

    /// The PTIME path and the generic backtracking agree on randomized Codd
    /// tables (both directions of the decision).
    #[test]
    fn codd_agrees_with_generic_search() {
        let rel = RelSym::new("CoddA");
        let consts = ["a", "b", "c"];
        let mut seed = 0x5EEDu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..200 {
            let mut t = Instance::new();
            let mut null_id = 0u32;
            let n_t = (next() % 3 + 1) as usize;
            for _ in 0..n_t {
                let mut mk = |null_id: &mut u32| -> Value {
                    if next() % 2 == 0 {
                        Value::c(consts[(next() % 3) as usize])
                    } else {
                        *null_id += 1;
                        Value::null(*null_id)
                    }
                };
                let v1 = mk(&mut null_id);
                let v2 = mk(&mut null_id);
                t.insert(rel, Tuple::new(vec![v1, v2]));
            }
            assert!(is_codd(&t));
            let mut r = Instance::new();
            let n_r = (next() % 3 + 1) as usize;
            for _ in 0..n_r {
                r.insert_names(
                    "CoddA",
                    &[consts[(next() % 3) as usize], consts[(next() % 3) as usize]],
                );
            }
            // Generic route: all-closed Rep_A equality semantics.
            let mut annotated = AnnInstance::new();
            for (rl, trel) in t.relations() {
                for tuple in trel.iter() {
                    annotated.insert(
                        rl,
                        AnnTuple::new(tuple.clone(), Annotation::all_closed(tuple.arity())),
                    );
                }
            }
            let generic = rep_a_membership(&annotated, &r).is_some();
            let codd = codd_rep_membership(&t, &r).is_some();
            assert_eq!(generic, codd, "case {case}: t = {t}, r = {r}");
        }
    }

    /// The indexed candidate discovery is an optimization, not a semantics
    /// change: Scan and Indexed agree on randomized naive tables (both
    /// decisions and witness validity).
    #[test]
    fn indexed_and_scan_strategies_agree() {
        let rel = RelSym::new("IdxAgree");
        let consts = ["a", "b", "c"];
        let mut seed = 0xD1FFu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..300 {
            let mut t = AnnInstance::new();
            let n_t = (next() % 3 + 1) as usize;
            for ti in 0..n_t {
                let mk = |r: u64, nulls_from: u32| -> Value {
                    if r.is_multiple_of(2) {
                        Value::c(consts[(r / 2 % 3) as usize])
                    } else {
                        // Small null pool: repetitions across tuples likely.
                        Value::null(nulls_from + (r / 2 % 3) as u32)
                    }
                };
                let v1 = mk(next(), 0);
                let v2 = mk(next(), if ti % 2 == 0 { 0 } else { 2 });
                let ann = if next() % 2 == 0 {
                    Annotation::all_closed(2)
                } else {
                    Annotation::new(vec![Ann::Closed, Ann::Open])
                };
                t.insert(rel, AnnTuple::new(Tuple::new(vec![v1, v2]), ann));
            }
            let mut r = Instance::new();
            for _ in 0..(next() % 4 + 1) {
                r.insert_names(
                    "IdxAgree",
                    &[consts[(next() % 3) as usize], consts[(next() % 3) as usize]],
                );
            }
            let scan = rep_a_membership_via(MatchStrategy::Scan, &t, &r, true);
            let indexed = rep_a_membership_via(MatchStrategy::Indexed, &t, &r, true);
            assert_eq!(
                scan.is_some(),
                indexed.is_some(),
                "case {case}: t = {t}, r = {r}"
            );
            if let Some(v) = indexed {
                let vt = t.apply(&v);
                assert!(vt.rel_part().is_subinstance_of(&r));
                assert!(vt.covers_instance(&r));
            }
        }
    }

    #[test]
    fn rep_membership_exact_equality() {
        let mut t = Instance::new();
        t.insert(
            RelSym::new("RM"),
            Tuple::new(vec![Value::c("a"), Value::null(0)]),
        );
        let mut r = Instance::new();
        r.insert_names("RM", &["a", "b"]);
        assert!(rep_membership(&t, &r).is_some());
        // Rep requires equality, not containment.
        let mut r2 = r.clone();
        r2.insert_names("RM", &["c", "d"]);
        assert!(rep_membership(&t, &r2).is_none());
    }
}
