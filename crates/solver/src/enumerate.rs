//! Bounded search over `Rep_A(T)`, on one incrementally maintained index.
//!
//! The witness spaces of the paper's decidable query-answering cases all
//! have the shape `I = V ∪ E` (Lemma 2's `V ∪ E₀ ∪ E′`, Proposition 5's
//! `V ∪ E`): a valuation image `V = v(rel(T))` plus *extra* tuples that
//! replicate open positions with other constants. This module enumerates
//! exactly that space:
//!
//! 1. valuations `v` over a generic palette (base constants + canonically
//!    named fresh constants, first-use symmetry breaking);
//! 2. extra tuples drawn from the *candidate pool*: for every annotated
//!    tuple with open positions, its closed positions fixed to `v`-values
//!    and its open positions ranging over the extension palette (base ∪
//!    `max_external_consts` canonical external constants); all-open empty
//!    markers contribute arbitrary tuples of their relation;
//! 3. subsets of the pool of size `≤ max_extra_tuples`, smallest first.
//!
//! For an all-closed `T` the pool is empty and the search space is exactly
//! `Rep(rel(T))` — the coNP procedure of Theorem 3(1). With open positions
//! the space is complete only up to the configured replication budget
//! (the full Lemma 2 bound `(qr+arity)·2^n` is available but astronomically
//! expensive, matching coNEXPTIME-hardness); the returned
//! [`Completeness`] records which regime applied.
//!
//! ## The incremental candidate store
//!
//! Candidate instances are **never materialized per leaf**. The search
//! maintains one [`DeltaIndex`] — a refcounted, column-indexed instance —
//! and applies/undoes deltas on DFS enter/exit:
//!
//! * assigning a null `⊥ ↦ c` inserts the valued image of every `T`-tuple
//!   whose nulls just became fully assigned (and un-assignment removes
//!   exactly those images);
//! * choosing an extra tuple inserts it; backtracking removes it.
//!
//! Leaf checks receive a [`Leaf`] handle exposing the live index (for
//! compiled-plan probes — see `dx-query`), the materialized [`Instance`]
//! view (for tree-walking fallbacks), and the current valuation. The
//! closure-over-`&Instance` API ([`search_rep_a`]) remains as a shim; its
//! per-leaf instance is the same live view, so even legacy checks stop
//! paying a clone per candidate.
//!
//! Work metrics (see `dx-obs`): `solver.dfs.{nodes, leaves}` count search
//! tree nodes and candidate instances, `solver.dfs.deltas_applied` /
//! `solver.dfs.deltas_undone` count store mutations from the DFS
//! apply/undo pairs (balanced by construction, even on early witness
//! stops — the invariant the randomized counter tests assert), and
//! `solver.union.{unions_visited, deltas_applied, deltas_undone}` mirror
//! the same for [`for_each_union`].

use crate::palette::Palette;
use dx_relation::{
    AnnInstance, ConstId, DeltaIndex, FastMap, Instance, NullId, RelSym, Tuple, Valuation, Value,
};
use std::collections::BTreeSet;

/// Budget for the `Rep_A` search space.
#[derive(Clone, Debug)]
pub struct SearchBudget {
    /// Number of canonical *external* constants available to fill open
    /// positions in extra tuples (the `C′_X` constants of Lemma 2, the
    /// `D_{I₀}` of Proposition 5).
    pub max_external_consts: usize,
    /// Maximum number of extra (replicated) tuples added on top of
    /// `v(rel(T))`.
    pub max_extra_tuples: usize,
    /// Maximum extra tuples drawn from any *single* annotated tuple (or
    /// empty marker). `None` = unlimited. This implements the paper's §6
    /// *1-to-m* extension: an open null replicable at most `m` times
    /// corresponds to a per-template cap of `m − 1`.
    pub max_extra_per_template: Option<usize>,
    /// Cap on the size of the candidate pool (combinatorial guard; if the
    /// pool is truncated the result is flagged as bounded).
    pub max_candidate_pool: usize,
    /// Cap on the number of candidate instances examined; `None` = no cap.
    pub max_leaves: Option<u64>,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_external_consts: 2,
            max_extra_tuples: 3,
            max_extra_per_template: None,
            max_candidate_pool: 4096,
            max_leaves: Some(2_000_000),
        }
    }
}

impl SearchBudget {
    /// Budget for all-closed instances: no replication at all. The search is
    /// then exact (Theorem 3, `#op = 0` — the coNP case).
    pub fn closed_world() -> Self {
        SearchBudget {
            max_external_consts: 0,
            max_extra_tuples: 0,
            max_extra_per_template: None,
            max_candidate_pool: 0,
            max_leaves: None,
        }
    }

    /// Budget sufficient for refuting a `∀*∃*` query with `l` existential
    /// (outer, after negation) variables over a schema of maximal arity
    /// `max_arity` (Proposition 5: the counterexample can be restricted to
    /// `U_V ∪ D_{I₀}` with `|D_{I₀}| ≤ l · arity(τ)`).
    pub fn universal_existential(l: usize, max_arity: usize) -> Self {
        SearchBudget {
            max_external_consts: l * max_arity,
            max_extra_tuples: usize::MAX,
            max_extra_per_template: None,
            max_candidate_pool: usize::MAX,
            max_leaves: None,
        }
    }

    /// Budget for composition with **existential** `Δ`-bodies (the paper's
    /// §6 remark: NP for every annotation). A witness intermediate `J` can
    /// be shrunk to the values of `v(CSol) ∪ adom(W) ∪ query constants`
    /// **plus one kept supporting match per `W`-tuple**: positive body
    /// atoms of a kept match survive the restriction and negated atoms only
    /// get truer, while dropped values can only remove obligations. Each
    /// kept match contributes at most `max_body_vars` out-of-palette
    /// values, so `w_tuples · max_body_vars` canonical external constants
    /// (with unlimited replication over the resulting palette) are
    /// exhaustive — a polynomial witness, hence NP.
    pub fn existential_delta(w_tuples: usize, max_body_vars: usize) -> Self {
        SearchBudget {
            max_external_consts: w_tuples * max_body_vars,
            max_extra_tuples: usize::MAX,
            max_extra_per_template: None,
            max_candidate_pool: usize::MAX,
            max_leaves: None,
        }
    }

    /// An explicit replication budget.
    pub fn bounded(max_external_consts: usize, max_extra_tuples: usize) -> Self {
        SearchBudget {
            max_external_consts,
            max_extra_tuples,
            ..SearchBudget::default()
        }
    }

    /// The §6 *1-to-m* budget: every open tuple may be instantiated by at
    /// most `m` values, i.e. replicated at most `m − 1` extra times. With
    /// `open_templates` open tuples/markers in the instance and maximal
    /// arity `max_arity`, the witness space is finite and fully covered —
    /// the CWA-like complexity the paper's conclusions promise.
    pub fn one_to_m(m: usize, open_templates: usize, max_arity: usize) -> Self {
        let extra = m.saturating_sub(1) * open_templates;
        SearchBudget {
            max_external_consts: extra * max_arity.max(1),
            max_extra_tuples: extra,
            max_extra_per_template: Some(m.saturating_sub(1)),
            max_candidate_pool: usize::MAX,
            max_leaves: None,
        }
    }
}

/// How complete the search was.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Completeness {
    /// The entire witness space was covered: a negative answer is definitive.
    Exact,
    /// Open-position replication was capped; a negative answer only means
    /// "no witness within the budget".
    Bounded,
    /// The leaf cap (or pool cap) was hit; the space was not exhausted.
    Capped,
}

impl Completeness {
    /// The pessimistic join: the worse of two coverage reports
    /// (`Capped > Bounded > Exact`).
    pub fn worse(self, other: Completeness) -> Completeness {
        use Completeness::*;
        match (self, other) {
            (Capped, _) | (_, Capped) => Capped,
            (Bounded, _) | (_, Bounded) => Bounded,
            _ => Exact,
        }
    }
}

/// Result of a `Rep_A` search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The witness instance (and its valuation), if one was found.
    pub witness: Option<(Instance, Valuation)>,
    /// Completeness of the exploration (meaningful when `witness` is
    /// `None`).
    pub completeness: Completeness,
    /// Number of candidate instances examined.
    pub leaves: u64,
}

/// One candidate instance of the search, presented to a leaf check without
/// materialization: the live incremental index, its instance view, and the
/// valuation that produced it.
pub struct Leaf<'a> {
    delta: &'a DeltaIndex,
    valuation: &'a Valuation,
}

impl<'a> Leaf<'a> {
    /// The live incremental index over the candidate instance — the store
    /// compiled `dx-query` plans execute against (it implements
    /// `dx_query::QueryStore`).
    pub fn index(&self) -> &'a DeltaIndex {
        self.delta
    }

    /// The candidate instance (maintained in lock-step with the index; no
    /// per-leaf materialization cost).
    pub fn instance(&self) -> &'a Instance {
        self.delta.instance()
    }

    /// The valuation of this candidate (total on the nulls of `T`).
    pub fn valuation(&self) -> &Valuation {
        self.valuation
    }
}

/// Does the annotated instance admit extra tuples at all (any open position
/// on a tuple, or an all-open empty marker)?
pub fn admits_extras(t: &AnnInstance) -> bool {
    t.relations().any(|(_, rel)| {
        rel.has_all_open_empty_mark() || rel.iter().any(|at| at.ann.count_open() > 0)
    })
}

/// Search `Rep_A(T)` for an instance satisfying `check`, with the check
/// running against the incrementally maintained candidate store (see the
/// module docs). This is the engine behind every `Rep_A` refutation loop in
/// `dx-core`: compiled query plans probe [`Leaf::index`] directly instead of
/// indexing a freshly built instance per candidate.
///
/// `extra_base_consts` joins the palette (pass the constants of the query
/// being refuted, per the paper's `C_φ`). The search enumerates valuations
/// (with `#nulls` fresh constants — exact by genericity) and then extra
/// tuples within `budget`.
pub fn search_rep_a_indexed(
    t: &AnnInstance,
    extra_base_consts: &BTreeSet<ConstId>,
    budget: &SearchBudget,
    check: &mut dyn FnMut(&Leaf<'_>) -> bool,
) -> SearchOutcome {
    let _span = dx_obs::span!("solver.search_rep_a");
    let nulls: Vec<NullId> = t.nulls().into_iter().collect();
    let mut base: BTreeSet<ConstId> = t.adom_consts();
    base.extend(extra_base_consts.iter().copied());
    let val_palette = Palette::new(base.iter().copied(), nulls.len(), "v");

    // The tracked tuples of rel(T): each knows how many of its (distinct)
    // nulls are still unassigned; ground tuples enter the store up front.
    let mut delta = DeltaIndex::new();
    let mut tracked: Vec<TrackedTuple> = Vec::new();
    let mut by_null: FastMap<NullId, Vec<usize>> = FastMap::default();
    for (rel, arel) in t.relations() {
        delta.declare(rel, arel.arity());
        for at in arel.iter() {
            let tuple_nulls: BTreeSet<NullId> = at.tuple.nulls().collect();
            if tuple_nulls.is_empty() {
                delta.insert(rel, at.tuple.clone());
            } else {
                let idx = tracked.len();
                for &n in &tuple_nulls {
                    by_null.entry(n).or_default().push(idx);
                }
                tracked.push(TrackedTuple {
                    rel,
                    tuple: at.tuple.clone(),
                    unassigned: tuple_nulls.len(),
                });
            }
        }
    }

    let mut state = State {
        t,
        budget,
        check,
        extra_base: base,
        leaves: 0,
        capped: false,
        pool_truncated: false,
        witness: None,
        delta,
        tracked,
        by_null,
    };

    let mut v = Valuation::new();
    state.valuation_dfs(&nulls, 0, 0, &val_palette, &mut v);

    // Resident footprint of the candidate store once the sweep unwound:
    // the ground tuples stay, so this gauges what the search keeps alive
    // between invocations (last-value semantics; see `dx_obs::mem`).
    let mem = state.delta.mem_stats();
    dx_obs::mem::publish_all(&[
        (dx_obs::mem::names::DELTA_LIVE_SLOTS, mem.live_slots),
        (
            dx_obs::mem::names::DELTA_POSTING_ENTRIES,
            mem.posting_entries,
        ),
        (dx_obs::mem::names::DELTA_REFCOUNT_TOTAL, mem.refcount_total),
    ]);

    let completeness = if state.witness.is_some() {
        Completeness::Exact // irrelevant when a witness exists
    } else if state.capped || state.pool_truncated {
        Completeness::Capped
    } else if admits_extras(t)
        && (budget.max_extra_tuples < usize::MAX || budget.max_external_consts < usize::MAX)
    {
        // Replication was possible and the budget is finite. Whether this is
        // actually exhaustive depends on the caller's theory (e.g. Prop 5
        // budgets are exhaustive); callers override when they know better.
        Completeness::Bounded
    } else {
        Completeness::Exact
    };

    SearchOutcome {
        witness: state.witness,
        completeness,
        leaves: state.leaves,
    }
}

/// [`search_rep_a_indexed`] with a plain instance-closure check — the
/// compatibility shim for callers that do not probe the index. The instance
/// handed to `check` is the live view, so no per-leaf clone occurs; but a
/// check that builds its own index per call re-creates exactly the
/// rebuild-per-candidate baseline the indexed API exists to avoid.
pub fn search_rep_a(
    t: &AnnInstance,
    extra_base_consts: &BTreeSet<ConstId>,
    budget: &SearchBudget,
    check: &mut dyn FnMut(&Instance) -> bool,
) -> SearchOutcome {
    search_rep_a_indexed(t, extra_base_consts, budget, &mut |leaf| {
        check(leaf.instance())
    })
}

/// Enumerate members of `Rep_A(T)` within the budget, invoking `visit` on
/// each; stops early if `visit` returns `true`. Returns the number of
/// instances visited.
pub fn enumerate_rep_a(
    t: &AnnInstance,
    extra_base_consts: &BTreeSet<ConstId>,
    budget: &SearchBudget,
    visit: &mut dyn FnMut(&Instance) -> bool,
) -> u64 {
    search_rep_a(t, extra_base_consts, budget, visit).leaves
}

/// All **⊆-minimal members** of `Rep_A(T)` over the canonical valuation
/// palette (base constants of `T` ∪ `extra_base_consts`, plus one fresh
/// constant per null with first-use symmetry breaking).
///
/// Key observation: a member with extra (replicated) tuples strictly
/// contains the extras-free image `v(rel(T))` of its own witnessing
/// valuation, and that image is itself a member — so no member with extras
/// is ever minimal. Minimality is therefore decided among the valuation
/// images alone, and the enumeration runs with a zero-replication budget:
/// one pass over the valuation DFS, one live [`DeltaIndex`], no extras
/// phase. By genericity (the palette argument of Lemma 2), the returned set
/// is exact up to automorphisms of `Const` fixing `adom(T) ∪
/// extra_base_consts` — which is what any generic query over those
/// constants can observe.
///
/// This is the minimal-model substrate of the GCWA\*-regime in `dx-core`
/// (Hernich, *Answering Non-Monotonic Queries in Relational Data
/// Exchange*). The completeness is [`Completeness::Exact`] unless the leaf
/// cap of `max_leaves` interrupted the valuation sweep.
pub fn minimal_rep_a_members(
    t: &AnnInstance,
    extra_base_consts: &BTreeSet<ConstId>,
    max_leaves: Option<u64>,
) -> (Vec<Instance>, Completeness) {
    let budget = SearchBudget {
        max_external_consts: 0,
        max_extra_tuples: 0,
        max_extra_per_template: None,
        max_candidate_pool: 0,
        max_leaves,
    };
    let mut images: BTreeSet<Instance> = BTreeSet::new();
    let outcome = search_rep_a_indexed(t, extra_base_consts, &budget, &mut |leaf| {
        images.insert(leaf.instance().clone());
        false
    });
    let minimal: Vec<Instance> = images
        .iter()
        .filter(|i| !images.iter().any(|j| j != *i && j.is_subinstance_of(i)))
        .cloned()
        .collect();
    let completeness = match outcome.completeness {
        // The zero-replication budget makes the search report Bounded for
        // open instances; for *minimal* members the sweep is exhaustive.
        Completeness::Capped => Completeness::Capped,
        _ => Completeness::Exact,
    };
    (minimal, completeness)
}

/// Visit every nonempty union of at most `max_union_size` of the given
/// instances, maintained on **one** [`DeltaIndex`]: tuples shared between
/// instances are reference counted, so entering/leaving a DFS branch costs
/// only the chosen instance's *private* delta (its tuples outside the
/// common intersection, inserted once up front) — not a rebuild of the
/// union. `visit` sees the live index (compiled `dx-query` plans probe it
/// directly; [`DeltaIndex::instance`] is the materialized view for
/// tree-walking fallbacks) and returns `true` to stop early.
///
/// Returns the number of unions visited. This is the evaluation engine of
/// the GCWA\*-answer regime: the candidate unions of minimal solutions are
/// never materialized or re-indexed per candidate.
pub fn for_each_union(
    members: &[Instance],
    max_union_size: usize,
    visit: &mut dyn FnMut(&DeltaIndex) -> bool,
) -> u64 {
    if members.is_empty() || max_union_size == 0 {
        return 0;
    }
    let _span = dx_obs::span!("solver.for_each_union");
    let mut delta = DeltaIndex::new();
    for m in members {
        for (rel, r) in m.relations() {
            delta.declare(rel, r.arity());
        }
    }
    // The common base: tuples present in every member, inserted once. Every
    // nonempty union contains it, so per-branch deltas shrink to the
    // member's private remainder.
    let all_tuples = |m: &Instance| -> Vec<(RelSym, Tuple)> {
        m.relations()
            .flat_map(|(rel, r)| r.iter().map(move |t| (rel, t.clone())))
            .collect()
    };
    let base: Vec<(RelSym, Tuple)> = all_tuples(&members[0])
        .into_iter()
        .filter(|(rel, t)| members[1..].iter().all(|m| m.contains(*rel, t)))
        .collect();
    for (rel, t) in &base {
        delta.insert(*rel, t.clone());
    }
    let privates: Vec<Vec<(RelSym, Tuple)>> = members
        .iter()
        .map(|m| {
            all_tuples(m)
                .into_iter()
                .filter(|(rel, t)| !delta.contains(*rel, t))
                .collect()
        })
        .collect();

    fn dfs(
        privates: &[Vec<(RelSym, Tuple)>],
        delta: &mut DeltaIndex,
        visit: &mut dyn FnMut(&DeltaIndex) -> bool,
        start: usize,
        depth_left: usize,
        count: &mut u64,
    ) -> bool {
        for i in start..privates.len() {
            dx_obs::trace_instant!(
                "solver.union.branch",
                "member" = i,
                "depth_left" = depth_left
            );
            dx_obs::count!("solver.union.deltas_applied", privates[i].len());
            for (rel, t) in &privates[i] {
                delta.insert(*rel, t.clone());
            }
            *count += 1;
            dx_obs::count!("solver.union.unions_visited");
            let stop = visit(delta)
                || (depth_left > 1 && dfs(privates, delta, visit, i + 1, depth_left - 1, count));
            // LIFO undo keeps the store's removal on its O(1) path.
            dx_obs::count!("solver.union.deltas_undone", privates[i].len());
            for (rel, t) in privates[i].iter().rev() {
                delta.remove(*rel, t);
            }
            if stop {
                return true;
            }
        }
        false
    }

    let mut count = 0u64;
    dfs(
        &privates,
        &mut delta,
        visit,
        0,
        max_union_size.min(members.len()),
        &mut count,
    );
    // The walk unwound back to the common base — gauge what the shared
    // store held throughout (base slots + postings; last-value semantics).
    let mem = delta.mem_stats();
    dx_obs::mem::publish_all(&[
        (dx_obs::mem::names::DELTA_LIVE_SLOTS, mem.live_slots),
        (
            dx_obs::mem::names::DELTA_POSTING_ENTRIES,
            mem.posting_entries,
        ),
        (dx_obs::mem::names::DELTA_REFCOUNT_TOTAL, mem.refcount_total),
    ]);
    count
}

/// A `rel(T)` tuple containing nulls, waiting for its valuation image.
struct TrackedTuple {
    rel: RelSym,
    tuple: Tuple,
    /// Distinct nulls of `tuple` not yet assigned by the current valuation
    /// prefix; the image enters the store when this reaches 0.
    unassigned: usize,
}

struct State<'a> {
    t: &'a AnnInstance,
    budget: &'a SearchBudget,
    check: &'a mut dyn FnMut(&Leaf<'_>) -> bool,
    extra_base: BTreeSet<ConstId>,
    leaves: u64,
    capped: bool,
    pool_truncated: bool,
    witness: Option<(Instance, Valuation)>,
    /// The single candidate store, kept in sync with the DFS by the
    /// apply/undo pairs in [`State::valuation_dfs`] / [`State::subsets`].
    delta: DeltaIndex,
    tracked: Vec<TrackedTuple>,
    by_null: FastMap<NullId, Vec<usize>>,
}

impl<'a> State<'a> {
    /// Assign `null ↦ c` and insert the images of tuples that just became
    /// fully valued; returns the applied images for [`State::unassign`].
    fn assign(&mut self, null: NullId, c: ConstId, v: &mut Valuation) -> Vec<(usize, Tuple)> {
        v.set(null, c);
        let mut applied = Vec::new();
        if let Some(tis) = self.by_null.get(&null) {
            for &ti in tis {
                let tt = &mut self.tracked[ti];
                tt.unassigned -= 1;
                if tt.unassigned == 0 {
                    let image = tt.tuple.apply(v);
                    self.delta.insert(tt.rel, image.clone());
                    applied.push((ti, image));
                }
            }
        }
        dx_obs::count!("solver.dfs.deltas_applied", applied.len());
        applied
    }

    /// Undo one [`State::assign`]: retract the images that entered the
    /// store (newest-first, per the store's LIFO discipline) and restore
    /// the unassigned-null counter of *every* tuple containing the null.
    fn unassign(&mut self, null: NullId, applied: Vec<(usize, Tuple)>, v: &mut Valuation) {
        dx_obs::count!("solver.dfs.deltas_undone", applied.len());
        for (ti, image) in applied.into_iter().rev() {
            self.delta.remove(self.tracked[ti].rel, &image);
        }
        if let Some(tis) = self.by_null.get(&null) {
            for &ti in tis {
                self.tracked[ti].unassigned += 1;
            }
        }
        v.unset(null);
    }

    fn valuation_dfs(
        &mut self,
        nulls: &[NullId],
        i: usize,
        fresh_used: usize,
        palette: &Palette,
        v: &mut Valuation,
    ) {
        if self.witness.is_some() || self.capped {
            return;
        }
        dx_obs::count!("solver.dfs.nodes");
        dx_obs::trace_instant!("solver.dfs.depth", "depth" = i, "fresh_used" = fresh_used);
        if i == nulls.len() {
            self.extras_phase(v);
            return;
        }
        let choices: Vec<ConstId> = palette.choices(fresh_used).collect();
        for c in choices {
            let next_fresh = fresh_used + usize::from(palette.is_next_fresh(c, fresh_used));
            let applied = self.assign(nulls[i], c, v);
            self.valuation_dfs(nulls, i + 1, next_fresh, palette, v);
            self.unassign(nulls[i], applied, v);
            if self.witness.is_some() || self.capped {
                return;
            }
        }
    }

    /// Visit one candidate instance — the store as currently composed.
    fn leaf(&mut self, v: &Valuation) {
        dx_obs::count!("solver.dfs.leaves");
        self.leaves += 1;
        if let Some(cap) = self.budget.max_leaves {
            if self.leaves > cap {
                self.capped = true;
                return;
            }
        }
        let leaf = Leaf {
            delta: &self.delta,
            valuation: v,
        };
        if (self.check)(&leaf) {
            self.witness = Some((self.delta.instance().clone(), v.clone()));
        }
    }

    fn extras_phase(&mut self, v: &Valuation) {
        debug_assert!(self.delta.instance().is_ground());
        // The bare valuation image is itself the first candidate (k = 0).
        self.leaf(v);
        if self.witness.is_some() || self.capped || self.budget.max_extra_tuples == 0 {
            return;
        }

        // Extension palette: adom of the valued instance + caller constants
        // + canonical external constants.
        let mut ext_base: BTreeSet<ConstId> = self.delta.instance().adom_consts();
        ext_base.extend(self.extra_base.iter().copied());
        let ext_palette = Palette::new(
            ext_base.iter().copied(),
            self.budget.max_external_consts,
            "e",
        );
        let (pool, n_templates) = self.candidate_pool(v, &ext_palette);

        // Subsets of the pool, by increasing size.
        let max_k = self.budget.max_extra_tuples.min(pool.len());
        let mut chosen: Vec<usize> = Vec::new();
        let mut template_counts = vec![0usize; n_templates];
        for k in 1..=max_k {
            self.subsets(&pool, v, k, 0, &mut chosen, &mut template_counts);
            if self.witness.is_some() || self.capped {
                return;
            }
        }
    }

    /// Build the extra-tuple candidate pool. Each entry carries the id of
    /// the *template* (annotated tuple or empty marker) that licensed it,
    /// so per-template caps (1-to-m semantics) can be enforced. Returns the
    /// pool and the number of templates.
    ///
    /// Pool construction runs once per complete valuation (not per leaf) on
    /// the *valued* annotated instance `v(T)` — tuples that merge under `v`
    /// merge their templates, exactly as the paper's replication reading
    /// counts open tuples of the valued instance.
    fn candidate_pool(
        &mut self,
        v: &Valuation,
        palette: &Palette,
    ) -> (Vec<(RelSym, Tuple, usize)>, usize) {
        let valued = self.t.apply(v);
        let mut pool: Vec<(RelSym, Tuple, usize)> = Vec::new();
        let mut template = 0usize;
        let consts: Vec<ConstId> = palette.all().collect();
        for (rel, arel) in valued.relations() {
            // Replications of tuples with open positions.
            for at in arel.iter() {
                let open: Vec<usize> = at.ann.open_positions().collect();
                if open.is_empty() {
                    continue;
                }
                let tid = template;
                template += 1;
                let mut seen: BTreeSet<Tuple> = BTreeSet::new();
                let combos = consts.len().checked_pow(open.len() as u32);
                if combos.is_none_or(|c| pool.len() + c > self.budget.max_candidate_pool) {
                    self.pool_truncated = true;
                }
                let mut idx = vec![0usize; open.len()];
                'combo: loop {
                    if pool.len() >= self.budget.max_candidate_pool {
                        self.pool_truncated = true;
                        break 'combo;
                    }
                    let mut vals: Vec<Value> = at.tuple.values().to_vec();
                    for (slot, &pos) in open.iter().enumerate() {
                        vals[pos] = Value::Const(consts[idx[slot]]);
                    }
                    let cand = Tuple::new(vals);
                    if !self.delta.contains(rel, &cand) && seen.insert(cand.clone()) {
                        pool.push((rel, cand, tid));
                    }
                    // Next combination.
                    let mut carry = 0usize;
                    loop {
                        if carry == idx.len() {
                            break 'combo;
                        }
                        idx[carry] += 1;
                        if idx[carry] < consts.len() {
                            break;
                        }
                        idx[carry] = 0;
                        carry += 1;
                    }
                }
            }
            // Arbitrary tuples licensed by all-open empty markers.
            if arel.has_all_open_empty_mark() {
                let arity = arel.arity();
                if arity == 0 {
                    continue;
                }
                let tid = template;
                template += 1;
                let mut seen: BTreeSet<Tuple> = BTreeSet::new();
                let combos = consts.len().checked_pow(arity as u32);
                if combos.is_none_or(|c| pool.len() + c > self.budget.max_candidate_pool) {
                    self.pool_truncated = true;
                }
                let mut idx = vec![0usize; arity];
                'combo2: loop {
                    if pool.len() >= self.budget.max_candidate_pool {
                        self.pool_truncated = true;
                        break 'combo2;
                    }
                    let vals: Vec<Value> = idx.iter().map(|&j| Value::Const(consts[j])).collect();
                    let cand = Tuple::new(vals);
                    if !self.delta.contains(rel, &cand) && seen.insert(cand.clone()) {
                        pool.push((rel, cand, tid));
                    }
                    let mut carry = 0usize;
                    loop {
                        if carry == idx.len() {
                            break 'combo2;
                        }
                        idx[carry] += 1;
                        if idx[carry] < consts.len() {
                            break;
                        }
                        idx[carry] = 0;
                        carry += 1;
                    }
                }
            }
        }
        (pool, template)
    }

    #[allow(clippy::too_many_arguments)]
    fn subsets(
        &mut self,
        pool: &[(RelSym, Tuple, usize)],
        v: &Valuation,
        k: usize,
        start: usize,
        chosen: &mut Vec<usize>,
        template_counts: &mut [usize],
    ) {
        if self.witness.is_some() || self.capped {
            return;
        }
        dx_obs::count!("solver.dfs.nodes");
        if k == 0 {
            self.leaf(v);
            return;
        }
        if start + k > pool.len() {
            return;
        }
        let per_template = self.budget.max_extra_per_template.unwrap_or(usize::MAX);
        for i in start..=(pool.len() - k) {
            let (rel, tuple, tid) = &pool[i];
            if template_counts[*tid] >= per_template {
                continue;
            }
            template_counts[*tid] += 1;
            chosen.push(i);
            dx_obs::count!("solver.dfs.deltas_applied");
            self.delta.insert(*rel, tuple.clone());
            self.subsets(pool, v, k - 1, i + 1, chosen, template_counts);
            dx_obs::count!("solver.dfs.deltas_undone");
            self.delta.remove(*rel, tuple);
            chosen.pop();
            template_counts[*tid] -= 1;
            if self.witness.is_some() || self.capped {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_relation::{Ann, AnnTuple, Annotation};

    fn at(vals: Vec<Value>, anns: Vec<Ann>) -> AnnTuple {
        AnnTuple::new(Tuple::new(vals), Annotation::new(anns))
    }

    /// All-closed: the search space is exactly the valuations.
    #[test]
    fn closed_world_counts_valuations() {
        let rel = RelSym::new("EnumA");
        let mut t = AnnInstance::new();
        t.insert(
            rel,
            at(
                vec![Value::c("a"), Value::null(0)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        // Palette: base {a} + 1 fresh → 2 valuations → 2 leaves.
        let n = enumerate_rep_a(
            &t,
            &BTreeSet::new(),
            &SearchBudget::closed_world(),
            &mut |_| false,
        );
        assert_eq!(n, 2);
    }

    /// Symmetry breaking: with two independent nulls and no base constants,
    /// the canonical valuations are ⊥0↦f0 with ⊥1 ∈ {f0, f1}: 2 leaves,
    /// not 4.
    #[test]
    fn fresh_constant_symmetry_breaking() {
        let rel = RelSym::new("EnumB");
        let mut t = AnnInstance::new();
        t.insert(
            rel,
            at(
                vec![Value::null(0), Value::null(1)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        let n = enumerate_rep_a(
            &t,
            &BTreeSet::new(),
            &SearchBudget::closed_world(),
            &mut |_| false,
        );
        assert_eq!(n, 2);
    }

    /// Open positions produce replicated extras.
    #[test]
    fn open_replication_finds_bigger_instances() {
        let rel = RelSym::new("EnumC");
        let mut t = AnnInstance::new();
        t.insert(
            rel,
            at(
                vec![Value::c("a"), Value::null(0)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        // Look for an instance with ≥ 3 tuples (requires 2 extras).
        let outcome = search_rep_a(
            &t,
            &BTreeSet::new(),
            &SearchBudget::bounded(2, 2),
            &mut |i| i.tuple_count() >= 3,
        );
        let (w, _) = outcome.witness.expect("replication should reach 3 tuples");
        assert_eq!(w.tuple_count(), 3);
        // All tuples share the closed first coordinate.
        for tup in w.tuples(rel) {
            assert_eq!(tup.get(0), Value::c("a"));
        }
    }

    /// A closed instance can never grow.
    #[test]
    fn closed_instances_cannot_grow() {
        let rel = RelSym::new("EnumD");
        let mut t = AnnInstance::new();
        t.insert(
            rel,
            at(
                vec![Value::c("a"), Value::null(0)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        let outcome = search_rep_a(&t, &BTreeSet::new(), &SearchBudget::default(), &mut |i| {
            i.tuple_count() >= 2
        });
        assert!(outcome.witness.is_none());
        assert_eq!(outcome.completeness, Completeness::Exact);
    }

    /// Witnesses returned really are Rep_A members.
    #[test]
    fn witnesses_verify_via_repa_membership() {
        let rel = RelSym::new("EnumE");
        let mut t = AnnInstance::new();
        t.insert(
            rel,
            at(
                vec![Value::null(0), Value::null(1)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        let outcome = search_rep_a(
            &t,
            &BTreeSet::new(),
            &SearchBudget::bounded(1, 2),
            &mut |i| i.tuple_count() == 2,
        );
        let (w, _) = outcome.witness.expect("found");
        assert!(crate::repa::rep_a_membership(&t, &w).is_some());
    }

    /// Empty markers: all-open marks generate arbitrary tuples.
    #[test]
    fn all_open_marks_generate() {
        let rel = RelSym::new("EnumF");
        let mut t = AnnInstance::new();
        t.insert_empty_mark(rel, Annotation::all_open(1));
        let outcome = search_rep_a(
            &t,
            &BTreeSet::new(),
            &SearchBudget::bounded(2, 1),
            &mut |i| i.tuple_count() == 1,
        );
        assert!(outcome.witness.is_some());
        // And the empty instance is also in the space (first leaf).
        let outcome2 = search_rep_a(
            &t,
            &BTreeSet::new(),
            &SearchBudget::bounded(2, 1),
            &mut |i| i.is_empty(),
        );
        assert!(outcome2.witness.is_some());
    }

    /// Leaf caps are honoured and reported.
    #[test]
    fn leaf_cap_reported() {
        let rel = RelSym::new("EnumG");
        let mut t = AnnInstance::new();
        for i in 0..4 {
            t.insert(rel, at(vec![Value::null(i)], vec![Ann::Closed]));
        }
        let budget = SearchBudget {
            max_leaves: Some(3),
            ..SearchBudget::closed_world()
        };
        let outcome = search_rep_a(&t, &BTreeSet::new(), &budget, &mut |_| false);
        assert_eq!(outcome.completeness, Completeness::Capped);
    }

    /// Minimal members: extras never matter, merging valuations produce
    /// ⊆-comparable images, and only the minimal ones survive.
    #[test]
    fn minimal_members_are_minimal_images() {
        let rel = RelSym::new("MinA");
        let mut t = AnnInstance::new();
        // Two tuples sharing no nulls; ⊥0 = ⊥1 merges them into one image
        // that is a strict subset of every non-merging image.
        t.insert(
            rel,
            at(
                vec![Value::c("a"), Value::null(0)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        t.insert(
            rel,
            at(
                vec![Value::c("a"), Value::null(1)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        let (minimal, comp) = minimal_rep_a_members(&t, &BTreeSet::new(), None);
        assert_eq!(comp, Completeness::Exact);
        // Merged images {(a,c)} (one per palette constant, canonically one
        // for the fresh constant + one for "a") are the only minimal ones.
        for m in &minimal {
            assert_eq!(m.tuple_count(), 1, "minimal members merge the nulls: {m}");
        }
        assert!(!minimal.is_empty());
        // Every minimal member is a genuine Rep_A member.
        for m in &minimal {
            assert!(crate::repa::rep_a_membership(&t, m).is_some());
        }
        // And open positions admit strictly larger members, which are not
        // reported minimal: check by searching for a 3-tuple witness.
        let bigger = search_rep_a(
            &t,
            &BTreeSet::new(),
            &SearchBudget::bounded(1, 2),
            &mut |i| i.tuple_count() >= 3,
        );
        assert!(bigger.witness.is_some());
    }

    /// The union walker visits every nonempty subset once (up to the size
    /// cap), with the live store equal to the materialized union at every
    /// visit.
    #[test]
    fn union_walker_matches_materialized_unions() {
        let mk = |names: &[&str]| {
            let mut i = Instance::new();
            for n in names {
                i.insert_names("UnW", &[n, "shared"]);
                i.insert_names("UnW", &["common", "base"]);
            }
            i
        };
        let members = [mk(&["a"]), mk(&["b"]), mk(&["c"])];
        let mut seen: Vec<Instance> = Vec::new();
        let visited = for_each_union(&members, usize::MAX, &mut |delta| {
            seen.push(delta.instance().clone());
            // Index and view agree at every node.
            for (r, rl) in delta.instance().relations() {
                assert_eq!(delta.rel_len(r), rl.len());
                for t in rl.iter() {
                    assert!(delta.contains(r, t));
                }
            }
            false
        });
        assert_eq!(visited, 7, "2³ − 1 nonempty subsets");
        assert_eq!(seen.len(), 7);
        // Each visited store is the union of a distinct subset.
        let mut expected: Vec<Instance> = Vec::new();
        for mask in 1u32..8 {
            let mut u = Instance::new();
            for (i, m) in members.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    u = u.union(m);
                }
            }
            expected.push(u);
        }
        seen.sort();
        expected.sort();
        assert_eq!(seen, expected);
        // The size cap prunes: singletons + pairs only.
        let capped = for_each_union(&members, 2, &mut |_| false);
        assert_eq!(capped, 6);
        // Early stop is honoured.
        let mut n = 0;
        let stopped = for_each_union(&members, usize::MAX, &mut |_| {
            n += 1;
            n == 3
        });
        assert_eq!(stopped, 3);
    }

    /// The incremental store presented to leaves is exactly the instance the
    /// old rebuild-per-candidate engine materialized: `v(rel(T))` plus the
    /// chosen extras — validated against a from-scratch reconstruction at
    /// every leaf of a mixed open/closed search.
    #[test]
    fn leaf_store_matches_materialized_candidate() {
        let rel = RelSym::new("EnumH");
        let r2 = RelSym::new("EnumH2");
        let mut t = AnnInstance::new();
        t.insert(
            rel,
            at(
                vec![Value::c("a"), Value::null(0)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        t.insert(
            rel,
            at(
                vec![Value::null(0), Value::null(1)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        t.insert(r2, at(vec![Value::null(1)], vec![Ann::Closed]));
        t.insert_empty_mark(r2, Annotation::all_open(1));
        let mut leaves = 0u64;
        let outcome = search_rep_a_indexed(
            &t,
            &BTreeSet::new(),
            &SearchBudget::bounded(1, 2),
            &mut |leaf| {
                leaves += 1;
                let inst = leaf.instance();
                // The valuation is total and the view is its ground image
                // plus extras only.
                assert!(inst.is_ground());
                let base = t.apply(leaf.valuation()).rel_part();
                assert!(base.is_subinstance_of(inst), "valuation image present");
                // Index agrees with the instance on every point probe.
                for (r, rl) in inst.relations() {
                    assert_eq!(leaf.index().rel_len(r), rl.len());
                    for tu in rl.iter() {
                        assert!(leaf.index().contains(r, tu));
                    }
                }
                false
            },
        );
        assert!(outcome.witness.is_none());
        assert_eq!(outcome.leaves, leaves);
        assert!(leaves > 10, "mixed search explores replication space");
    }
}
