//! Bounded search over `Rep_A(T)`, on one incrementally maintained index.
//!
//! The witness spaces of the paper's decidable query-answering cases all
//! have the shape `I = V ∪ E` (Lemma 2's `V ∪ E₀ ∪ E′`, Proposition 5's
//! `V ∪ E`): a valuation image `V = v(rel(T))` plus *extra* tuples that
//! replicate open positions with other constants. This module enumerates
//! exactly that space:
//!
//! 1. valuations `v` over a generic palette (base constants + canonically
//!    named fresh constants, first-use symmetry breaking);
//! 2. extra tuples drawn from the *candidate pool*: for every annotated
//!    tuple with open positions, its closed positions fixed to `v`-values
//!    and its open positions ranging over the extension palette (base ∪
//!    `max_external_consts` canonical external constants); all-open empty
//!    markers contribute arbitrary tuples of their relation;
//! 3. subsets of the pool of size `≤ max_extra_tuples`, smallest first.
//!
//! For an all-closed `T` the pool is empty and the search space is exactly
//! `Rep(rel(T))` — the coNP procedure of Theorem 3(1). With open positions
//! the space is complete only up to the configured replication budget
//! (the full Lemma 2 bound `(qr+arity)·2^n` is available but astronomically
//! expensive, matching coNEXPTIME-hardness); the returned
//! [`Completeness`] records which regime applied.
//!
//! ## The incremental candidate store
//!
//! Candidate instances are **never materialized per leaf**. The search
//! maintains one [`DeltaIndex`] — a refcounted, column-indexed instance —
//! and applies/undoes deltas on DFS enter/exit:
//!
//! * assigning a null `⊥ ↦ c` inserts the valued image of every `T`-tuple
//!   whose nulls just became fully assigned (and un-assignment removes
//!   exactly those images);
//! * choosing an extra tuple inserts it; backtracking removes it.
//!
//! Leaf checks receive a [`Leaf`] handle exposing the live index (for
//! compiled-plan probes — see `dx-query`), the materialized [`Instance`]
//! view (for tree-walking fallbacks), and the current valuation. The
//! closure-over-`&Instance` API ([`search_rep_a`]) remains as a shim; its
//! per-leaf instance is the same live view, so even legacy checks stop
//! paying a clone per candidate.
//!
//! Work metrics (see `dx-obs`): `solver.dfs.{nodes, leaves}` count search
//! tree nodes and candidate instances, `solver.dfs.deltas_applied` /
//! `solver.dfs.deltas_undone` count store mutations from the DFS
//! apply/undo pairs (balanced by construction, even on early witness
//! stops — the invariant the randomized counter tests assert), and
//! `solver.union.{unions_visited, deltas_applied, deltas_undone}` mirror
//! the same for [`for_each_union`].

use crate::palette::Palette;
use dx_relation::{
    AnnInstance, ConstId, DeltaIndex, FastMap, FrozenIndex, Instance, NullId, OverlayIndex, RelSym,
    Tuple, Valuation, Value,
};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Budget for the `Rep_A` search space.
#[derive(Clone, Debug)]
pub struct SearchBudget {
    /// Number of canonical *external* constants available to fill open
    /// positions in extra tuples (the `C′_X` constants of Lemma 2, the
    /// `D_{I₀}` of Proposition 5).
    pub max_external_consts: usize,
    /// Maximum number of extra (replicated) tuples added on top of
    /// `v(rel(T))`.
    pub max_extra_tuples: usize,
    /// Maximum extra tuples drawn from any *single* annotated tuple (or
    /// empty marker). `None` = unlimited. This implements the paper's §6
    /// *1-to-m* extension: an open null replicable at most `m` times
    /// corresponds to a per-template cap of `m − 1`.
    pub max_extra_per_template: Option<usize>,
    /// Cap on the size of the candidate pool (combinatorial guard; if the
    /// pool is truncated the result is flagged as bounded).
    pub max_candidate_pool: usize,
    /// Cap on the number of candidate instances examined; `None` = no cap.
    pub max_leaves: Option<u64>,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_external_consts: 2,
            max_extra_tuples: 3,
            max_extra_per_template: None,
            max_candidate_pool: 4096,
            max_leaves: Some(2_000_000),
        }
    }
}

impl SearchBudget {
    /// Budget for all-closed instances: no replication at all. The search is
    /// then exact (Theorem 3, `#op = 0` — the coNP case).
    pub fn closed_world() -> Self {
        SearchBudget {
            max_external_consts: 0,
            max_extra_tuples: 0,
            max_extra_per_template: None,
            max_candidate_pool: 0,
            max_leaves: None,
        }
    }

    /// Budget sufficient for refuting a `∀*∃*` query with `l` existential
    /// (outer, after negation) variables over a schema of maximal arity
    /// `max_arity` (Proposition 5: the counterexample can be restricted to
    /// `U_V ∪ D_{I₀}` with `|D_{I₀}| ≤ l · arity(τ)`).
    pub fn universal_existential(l: usize, max_arity: usize) -> Self {
        SearchBudget {
            max_external_consts: l * max_arity,
            max_extra_tuples: usize::MAX,
            max_extra_per_template: None,
            max_candidate_pool: usize::MAX,
            max_leaves: None,
        }
    }

    /// Budget for composition with **existential** `Δ`-bodies (the paper's
    /// §6 remark: NP for every annotation). A witness intermediate `J` can
    /// be shrunk to the values of `v(CSol) ∪ adom(W) ∪ query constants`
    /// **plus one kept supporting match per `W`-tuple**: positive body
    /// atoms of a kept match survive the restriction and negated atoms only
    /// get truer, while dropped values can only remove obligations. Each
    /// kept match contributes at most `max_body_vars` out-of-palette
    /// values, so `w_tuples · max_body_vars` canonical external constants
    /// (with unlimited replication over the resulting palette) are
    /// exhaustive — a polynomial witness, hence NP.
    pub fn existential_delta(w_tuples: usize, max_body_vars: usize) -> Self {
        SearchBudget {
            max_external_consts: w_tuples * max_body_vars,
            max_extra_tuples: usize::MAX,
            max_extra_per_template: None,
            max_candidate_pool: usize::MAX,
            max_leaves: None,
        }
    }

    /// An explicit replication budget.
    pub fn bounded(max_external_consts: usize, max_extra_tuples: usize) -> Self {
        SearchBudget {
            max_external_consts,
            max_extra_tuples,
            ..SearchBudget::default()
        }
    }

    /// The §6 *1-to-m* budget: every open tuple may be instantiated by at
    /// most `m` values, i.e. replicated at most `m − 1` extra times. With
    /// `open_templates` open tuples/markers in the instance and maximal
    /// arity `max_arity`, the witness space is finite and fully covered —
    /// the CWA-like complexity the paper's conclusions promise.
    pub fn one_to_m(m: usize, open_templates: usize, max_arity: usize) -> Self {
        let extra = m.saturating_sub(1) * open_templates;
        SearchBudget {
            max_external_consts: extra * max_arity.max(1),
            max_extra_tuples: extra,
            max_extra_per_template: Some(m.saturating_sub(1)),
            max_candidate_pool: usize::MAX,
            max_leaves: None,
        }
    }
}

/// How complete the search was.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Completeness {
    /// The entire witness space was covered: a negative answer is definitive.
    Exact,
    /// Open-position replication was capped; a negative answer only means
    /// "no witness within the budget".
    Bounded,
    /// The leaf cap (or pool cap) was hit; the space was not exhausted.
    Capped,
}

impl Completeness {
    /// The pessimistic join: the worse of two coverage reports
    /// (`Capped > Bounded > Exact`).
    pub fn worse(self, other: Completeness) -> Completeness {
        use Completeness::*;
        match (self, other) {
            (Capped, _) | (_, Capped) => Capped,
            (Bounded, _) | (_, Bounded) => Bounded,
            _ => Exact,
        }
    }
}

/// Result of a `Rep_A` search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The witness instance (and its valuation), if one was found.
    pub witness: Option<(Instance, Valuation)>,
    /// Completeness of the exploration (meaningful when `witness` is
    /// `None`).
    pub completeness: Completeness,
    /// Number of candidate instances examined.
    pub leaves: u64,
}

/// One candidate instance of the search, presented to a leaf check without
/// materialization: the live incremental index, its instance view, and the
/// valuation that produced it.
pub struct Leaf<'a> {
    delta: &'a DeltaIndex,
    valuation: &'a Valuation,
}

impl<'a> Leaf<'a> {
    /// The live incremental index over the candidate instance — the store
    /// compiled `dx-query` plans execute against (it implements
    /// `dx_query::QueryStore`).
    pub fn index(&self) -> &'a DeltaIndex {
        self.delta
    }

    /// The candidate instance (maintained in lock-step with the index; no
    /// per-leaf materialization cost).
    pub fn instance(&self) -> &'a Instance {
        self.delta.instance()
    }

    /// The valuation of this candidate (total on the nulls of `T`).
    pub fn valuation(&self) -> &Valuation {
        self.valuation
    }
}

/// Does the annotated instance admit extra tuples at all (any open position
/// on a tuple, or an all-open empty marker)?
pub fn admits_extras(t: &AnnInstance) -> bool {
    t.relations().any(|(_, rel)| {
        rel.has_all_open_empty_mark() || rel.iter().any(|at| at.ann.count_open() > 0)
    })
}

/// Search `Rep_A(T)` for an instance satisfying `check`, with the check
/// running against the incrementally maintained candidate store (see the
/// module docs). This is the engine behind every `Rep_A` refutation loop in
/// `dx-core`: compiled query plans probe [`Leaf::index`] directly instead of
/// indexing a freshly built instance per candidate.
///
/// `extra_base_consts` joins the palette (pass the constants of the query
/// being refuted, per the paper's `C_φ`). The search enumerates valuations
/// (with `#nulls` fresh constants — exact by genericity) and then extra
/// tuples within `budget`.
pub fn search_rep_a_indexed(
    t: &AnnInstance,
    extra_base_consts: &BTreeSet<ConstId>,
    budget: &SearchBudget,
    check: &mut dyn FnMut(&Leaf<'_>) -> bool,
) -> SearchOutcome {
    let _span = dx_obs::span!("solver.search_rep_a");
    let nulls: Vec<NullId> = t.nulls().into_iter().collect();
    let mut base: BTreeSet<ConstId> = t.adom_consts();
    base.extend(extra_base_consts.iter().copied());
    let val_palette = Palette::new(base.iter().copied(), nulls.len(), "v");

    // The tracked tuples of rel(T): each knows how many of its (distinct)
    // nulls are still unassigned; ground tuples enter the store up front.
    let mut delta = DeltaIndex::new();
    let mut tracked: Vec<TrackedTuple> = Vec::new();
    let mut by_null: FastMap<NullId, Vec<usize>> = FastMap::default();
    for (rel, arel) in t.relations() {
        delta.declare(rel, arel.arity());
        for at in arel.iter() {
            let tuple_nulls: BTreeSet<NullId> = at.tuple.nulls().collect();
            if tuple_nulls.is_empty() {
                delta.insert(rel, at.tuple.clone());
            } else {
                let idx = tracked.len();
                for &n in &tuple_nulls {
                    by_null.entry(n).or_default().push(idx);
                }
                tracked.push(TrackedTuple {
                    rel,
                    tuple: at.tuple.clone(),
                    unassigned: tuple_nulls.len(),
                });
            }
        }
    }

    let mut state = State {
        t,
        budget,
        check,
        extra_base: base,
        leaves: 0,
        capped: false,
        pool_truncated: false,
        witness: None,
        delta,
        tracked,
        by_null,
    };

    let mut v = Valuation::new();
    state.valuation_dfs(&nulls, 0, 0, &val_palette, &mut v);

    // Resident footprint of the candidate store once the sweep unwound:
    // the ground tuples stay, so this gauges what the search keeps alive
    // between invocations (last-value semantics; see `dx_obs::mem`).
    let mem = state.delta.mem_stats();
    dx_obs::mem::publish_all(&[
        (dx_obs::mem::names::DELTA_LIVE_SLOTS, mem.live_slots),
        (
            dx_obs::mem::names::DELTA_POSTING_ENTRIES,
            mem.posting_entries,
        ),
        (dx_obs::mem::names::DELTA_REFCOUNT_TOTAL, mem.refcount_total),
    ]);

    let completeness = if state.witness.is_some() {
        Completeness::Exact // irrelevant when a witness exists
    } else if state.capped || state.pool_truncated {
        Completeness::Capped
    } else if admits_extras(t)
        && (budget.max_extra_tuples < usize::MAX || budget.max_external_consts < usize::MAX)
    {
        // Replication was possible and the budget is finite. Whether this is
        // actually exhaustive depends on the caller's theory (e.g. Prop 5
        // budgets are exhaustive); callers override when they know better.
        Completeness::Bounded
    } else {
        Completeness::Exact
    };

    SearchOutcome {
        witness: state.witness,
        completeness,
        leaves: state.leaves,
    }
}

/// [`search_rep_a_indexed`] with a plain instance-closure check — the
/// compatibility shim for callers that do not probe the index. The instance
/// handed to `check` is the live view, so no per-leaf clone occurs; but a
/// check that builds its own index per call re-creates exactly the
/// rebuild-per-candidate baseline the indexed API exists to avoid.
pub fn search_rep_a(
    t: &AnnInstance,
    extra_base_consts: &BTreeSet<ConstId>,
    budget: &SearchBudget,
    check: &mut dyn FnMut(&Instance) -> bool,
) -> SearchOutcome {
    search_rep_a_indexed(t, extra_base_consts, budget, &mut |leaf| {
        check(leaf.instance())
    })
}

/// Enumerate members of `Rep_A(T)` within the budget, invoking `visit` on
/// each; stops early if `visit` returns `true`. Returns the number of
/// instances visited.
pub fn enumerate_rep_a(
    t: &AnnInstance,
    extra_base_consts: &BTreeSet<ConstId>,
    budget: &SearchBudget,
    visit: &mut dyn FnMut(&Instance) -> bool,
) -> u64 {
    search_rep_a(t, extra_base_consts, budget, visit).leaves
}

/// All **⊆-minimal members** of `Rep_A(T)` over the canonical valuation
/// palette (base constants of `T` ∪ `extra_base_consts`, plus one fresh
/// constant per null with first-use symmetry breaking).
///
/// Key observation: a member with extra (replicated) tuples strictly
/// contains the extras-free image `v(rel(T))` of its own witnessing
/// valuation, and that image is itself a member — so no member with extras
/// is ever minimal. Minimality is therefore decided among the valuation
/// images alone, and the enumeration runs with a zero-replication budget:
/// one pass over the valuation DFS, one live [`DeltaIndex`], no extras
/// phase. By genericity (the palette argument of Lemma 2), the returned set
/// is exact up to automorphisms of `Const` fixing `adom(T) ∪
/// extra_base_consts` — which is what any generic query over those
/// constants can observe.
///
/// This is the minimal-model substrate of the GCWA\*-regime in `dx-core`
/// (Hernich, *Answering Non-Monotonic Queries in Relational Data
/// Exchange*). The completeness is [`Completeness::Exact`] unless the leaf
/// cap of `max_leaves` interrupted the valuation sweep.
///
/// With more than one pool thread (see `rayon::current_num_threads`) the
/// valuation walk splits across workers by valuation *prefix*, each on a
/// private [`OverlayIndex`] over the frozen ground base. The image set is
/// collected order-independently (a `BTreeSet` merge), so the result is
/// bit-identical to the sequential walk at every thread count; a sweep
/// that overruns `max_leaves` falls back to the sequential walk, which is
/// authoritative for capped reports.
pub fn minimal_rep_a_members(
    t: &AnnInstance,
    extra_base_consts: &BTreeSet<ConstId>,
    max_leaves: Option<u64>,
) -> (Vec<Instance>, Completeness) {
    let parallel = if rayon::current_num_threads() > 1 {
        minimal_images_parallel(t, extra_base_consts, max_leaves)
    } else {
        None
    };
    let (images, completeness) = match parallel {
        Some(images) => (images, Completeness::Exact),
        None => minimal_images_sequential(t, extra_base_consts, max_leaves),
    };
    // Minimality filter. The images are pairwise distinct, so a strict
    // subinstance has strictly fewer tuples — bucket by tuple count and
    // compare each image only against strictly smaller ones. When every
    // valuation image has the same size (no tuples merge under any
    // valuation — the common case) the filter does no instance
    // comparisons at all, where the naive all-pairs scan is quadratic in
    // the image count.
    let mut by_count: std::collections::BTreeMap<usize, Vec<&Instance>> =
        std::collections::BTreeMap::new();
    for i in &images {
        by_count.entry(i.tuple_count()).or_default().push(i);
    }
    let minimal: Vec<Instance> = images
        .iter()
        .filter(|i| {
            by_count
                .range(..i.tuple_count())
                .all(|(_, smaller)| smaller.iter().all(|j| !j.is_subinstance_of(i)))
        })
        .cloned()
        .collect();
    (minimal, completeness)
}

/// The sequential image sweep behind [`minimal_rep_a_members`]: one
/// zero-replication valuation DFS on the incrementally maintained store.
fn minimal_images_sequential(
    t: &AnnInstance,
    extra_base_consts: &BTreeSet<ConstId>,
    max_leaves: Option<u64>,
) -> (BTreeSet<Instance>, Completeness) {
    let budget = SearchBudget {
        max_external_consts: 0,
        max_extra_tuples: 0,
        max_extra_per_template: None,
        max_candidate_pool: 0,
        max_leaves,
    };
    let mut images: BTreeSet<Instance> = BTreeSet::new();
    let outcome = search_rep_a_indexed(t, extra_base_consts, &budget, &mut |leaf| {
        images.insert(leaf.instance().clone());
        false
    });
    let completeness = match outcome.completeness {
        // The zero-replication budget makes the search report Bounded for
        // open instances; for *minimal* members the sweep is exhaustive.
        Completeness::Capped => Completeness::Capped,
        _ => Completeness::Exact,
    };
    (images, completeness)
}

/// The parallel image sweep behind [`minimal_rep_a_members`]: enumerate
/// valuation prefixes over the leading nulls (in the exact DFS order,
/// tracking the fresh-constant symmetry discipline) until there are enough
/// to feed the pool, then give each prefix to a [`MinimalWalker`] over a
/// private overlay of the frozen ground base.
///
/// Returns `None` when the space cannot be split (fewer than two nulls) or
/// when the leaf cap was exceeded — the caller then runs the sequential
/// sweep, whose capped report is authoritative. On success the merged image
/// set and the total leaf count equal the sequential sweep's exactly.
fn minimal_images_parallel(
    t: &AnnInstance,
    extra_base_consts: &BTreeSet<ConstId>,
    max_leaves: Option<u64>,
) -> Option<BTreeSet<Instance>> {
    let nulls: Vec<NullId> = t.nulls().into_iter().collect();
    if nulls.len() < 2 {
        return None;
    }
    let _span = dx_obs::span!("solver.minimal_sweep.parallel");
    let threads = rayon::current_num_threads();
    let mut base: BTreeSet<ConstId> = t.adom_consts();
    base.extend(extra_base_consts.iter().copied());
    let palette = Palette::new(base.iter().copied(), nulls.len(), "v");

    // Valuation prefixes over nulls[..d], with the per-path fresh-constant
    // count carried along (symmetry breaking is path dependent).
    let mut prefixes: Vec<(Vec<ConstId>, usize)> = vec![(Vec::new(), 0)];
    let mut d = 0usize;
    while d + 1 < nulls.len() && prefixes.len() < threads * 4 {
        let mut next = Vec::with_capacity(prefixes.len() * 2);
        for (choices, fresh_used) in &prefixes {
            for c in palette.choices(*fresh_used).collect::<Vec<_>>() {
                let nf = fresh_used + usize::from(palette.is_next_fresh(c, *fresh_used));
                let mut ext = choices.clone();
                ext.push(c);
                next.push((ext, nf));
            }
        }
        prefixes = next;
        d += 1;
    }
    if prefixes.len() < 2 {
        return None;
    }

    // Ground tuples enter the shared frozen base; tuples with nulls become
    // per-worker tracked templates.
    let mut ground = DeltaIndex::new();
    let mut templates: Vec<(RelSym, Tuple, usize)> = Vec::new();
    for (rel, arel) in t.relations() {
        ground.declare(rel, arel.arity());
        for at in arel.iter() {
            let distinct: BTreeSet<NullId> = at.tuple.nulls().collect();
            if distinct.is_empty() {
                ground.insert(rel, at.tuple.clone());
            } else {
                templates.push((rel, at.tuple.clone(), distinct.len()));
            }
        }
    }
    let frozen = ground.freeze();
    let shared_leaves = AtomicU64::new(0);
    let results = rayon::par_map(prefixes.len(), |pi| {
        let (prefix, fresh_used) = &prefixes[pi];
        let mut walker =
            MinimalWalker::new(Arc::clone(&frozen), &templates, max_leaves, &shared_leaves);
        let mut v = Valuation::new();
        for (j, &c) in prefix.iter().enumerate() {
            walker.assign(nulls[j], c, &mut v);
        }
        walker.dfs(&nulls, d, *fresh_used, &palette, &mut v);
        // No unwinding needed: the overlay drops with the walker.
        (walker.images, walker.leaves, walker.capped)
    });
    let mut images: BTreeSet<Instance> = BTreeSet::new();
    let mut leaves = 0u64;
    for (imgs, n, capped) in results {
        if capped {
            return None;
        }
        leaves += n;
        images.extend(imgs);
    }
    if max_leaves.is_some_and(|cap| leaves > cap) {
        return None;
    }
    Some(images)
}

/// One worker of the parallel minimal-member sweep: the zero-replication
/// subset of [`State`] (no extras phase, no witness, no check closure)
/// running against a private [`OverlayIndex`] and collecting leaf images.
/// Counter names match the sequential walk (`solver.dfs.*`), so fleet
/// totals stay comparable across thread counts.
struct MinimalWalker<'a> {
    overlay: OverlayIndex,
    tracked: Vec<TrackedTuple>,
    by_null: FastMap<NullId, Vec<usize>>,
    images: BTreeSet<Instance>,
    leaves: u64,
    /// Fleet-wide running leaf total — the cap abort only needs to be an
    /// over-approximation, since an aborted sweep's results are discarded.
    shared_leaves: &'a AtomicU64,
    cap: Option<u64>,
    capped: bool,
}

impl<'a> MinimalWalker<'a> {
    fn new(
        base: Arc<FrozenIndex>,
        templates: &[(RelSym, Tuple, usize)],
        cap: Option<u64>,
        shared_leaves: &'a AtomicU64,
    ) -> Self {
        let mut tracked = Vec::with_capacity(templates.len());
        let mut by_null: FastMap<NullId, Vec<usize>> = FastMap::default();
        for (rel, tuple, unassigned) in templates {
            let idx = tracked.len();
            let distinct: BTreeSet<NullId> = tuple.nulls().collect();
            for n in distinct {
                by_null.entry(n).or_default().push(idx);
            }
            tracked.push(TrackedTuple {
                rel: *rel,
                tuple: tuple.clone(),
                unassigned: *unassigned,
            });
        }
        MinimalWalker {
            overlay: OverlayIndex::new(base),
            tracked,
            by_null,
            images: BTreeSet::new(),
            leaves: 0,
            shared_leaves,
            cap,
            capped: false,
        }
    }

    /// [`State::assign`] against the overlay.
    fn assign(&mut self, null: NullId, c: ConstId, v: &mut Valuation) {
        v.set(null, c);
        let mut applied = 0usize;
        if let Some(tis) = self.by_null.get(&null) {
            for &ti in tis {
                let tt = &mut self.tracked[ti];
                tt.unassigned -= 1;
                if tt.unassigned == 0 {
                    let image = tt.tuple.apply(v);
                    self.overlay.insert(tt.rel, image);
                    applied += 1;
                }
            }
        }
        dx_obs::count!("solver.dfs.deltas_applied", applied);
    }

    /// [`State::unassign`] against the overlay.
    fn unassign(&mut self, null: NullId, v: &mut Valuation) {
        let mut undone = 0usize;
        if let Some(tis) = self.by_null.get(&null) {
            for &ti in tis.iter().rev() {
                if self.tracked[ti].unassigned == 0 {
                    let image = self.tracked[ti].tuple.apply(v);
                    self.overlay.remove(self.tracked[ti].rel, &image);
                    undone += 1;
                }
            }
            for &ti in tis {
                self.tracked[ti].unassigned += 1;
            }
        }
        dx_obs::count!("solver.dfs.deltas_undone", undone);
        v.unset(null);
    }

    fn dfs(
        &mut self,
        nulls: &[NullId],
        i: usize,
        fresh_used: usize,
        palette: &Palette,
        v: &mut Valuation,
    ) {
        if self.capped {
            return;
        }
        dx_obs::count!("solver.dfs.nodes");
        if i == nulls.len() {
            dx_obs::count!("solver.dfs.leaves");
            self.leaves += 1;
            let total = self.shared_leaves.fetch_add(1, Ordering::Relaxed) + 1;
            if self.cap.is_some_and(|c| total > c) {
                self.capped = true;
                return;
            }
            self.images.insert(self.overlay.instance().clone());
            return;
        }
        let choices: Vec<ConstId> = palette.choices(fresh_used).collect();
        for c in choices {
            let next_fresh = fresh_used + usize::from(palette.is_next_fresh(c, fresh_used));
            self.assign(nulls[i], c, v);
            self.dfs(nulls, i + 1, next_fresh, palette, v);
            self.unassign(nulls[i], v);
            if self.capped {
                return;
            }
        }
    }
}

/// Visit every nonempty union of at most `max_union_size` of the given
/// instances, maintained on **one** [`DeltaIndex`]: tuples shared between
/// instances are reference counted, so entering/leaving a DFS branch costs
/// only the chosen instance's *private* delta (its tuples outside the
/// common intersection, inserted once up front) — not a rebuild of the
/// union. `visit` sees the live index (compiled `dx-query` plans probe it
/// directly; [`DeltaIndex::instance`] is the materialized view for
/// tree-walking fallbacks) and returns `true` to stop early.
///
/// Returns the number of unions visited. This is the evaluation engine of
/// the GCWA\*-answer regime: the candidate unions of minimal solutions are
/// never materialized or re-indexed per candidate.
pub fn for_each_union(
    members: &[Instance],
    max_union_size: usize,
    visit: &mut dyn FnMut(&DeltaIndex) -> bool,
) -> u64 {
    if members.is_empty() || max_union_size == 0 {
        return 0;
    }
    let _span = dx_obs::span!("solver.for_each_union");
    let mut delta = DeltaIndex::new();
    for m in members {
        for (rel, r) in m.relations() {
            delta.declare(rel, r.arity());
        }
    }
    // The common base: tuples present in every member, inserted once. Every
    // nonempty union contains it, so per-branch deltas shrink to the
    // member's private remainder.
    let all_tuples = |m: &Instance| -> Vec<(RelSym, Tuple)> {
        m.relations()
            .flat_map(|(rel, r)| r.iter().map(move |t| (rel, t.clone())))
            .collect()
    };
    let base: Vec<(RelSym, Tuple)> = all_tuples(&members[0])
        .into_iter()
        .filter(|(rel, t)| members[1..].iter().all(|m| m.contains(*rel, t)))
        .collect();
    for (rel, t) in &base {
        delta.insert(*rel, t.clone());
    }
    let privates: Vec<Vec<(RelSym, Tuple)>> = members
        .iter()
        .map(|m| {
            all_tuples(m)
                .into_iter()
                .filter(|(rel, t)| !delta.contains(*rel, t))
                .collect()
        })
        .collect();

    fn dfs(
        privates: &[Vec<(RelSym, Tuple)>],
        delta: &mut DeltaIndex,
        visit: &mut dyn FnMut(&DeltaIndex) -> bool,
        start: usize,
        depth_left: usize,
        count: &mut u64,
    ) -> bool {
        for i in start..privates.len() {
            dx_obs::trace_instant!(
                "solver.union.branch",
                "member" = i,
                "depth_left" = depth_left
            );
            dx_obs::count!("solver.union.deltas_applied", privates[i].len());
            for (rel, t) in &privates[i] {
                delta.insert(*rel, t.clone());
            }
            *count += 1;
            dx_obs::count!("solver.union.unions_visited");
            let stop = visit(delta)
                || (depth_left > 1 && dfs(privates, delta, visit, i + 1, depth_left - 1, count));
            // LIFO undo keeps the store's removal on its O(1) path.
            dx_obs::count!("solver.union.deltas_undone", privates[i].len());
            for (rel, t) in privates[i].iter().rev() {
                delta.remove(*rel, t);
            }
            if stop {
                return true;
            }
        }
        false
    }

    let mut count = 0u64;
    dfs(
        &privates,
        &mut delta,
        visit,
        0,
        max_union_size.min(members.len()),
        &mut count,
    );
    // The walk unwound back to the common base — gauge what the shared
    // store held throughout (base slots + postings; last-value semantics).
    let mem = delta.mem_stats();
    dx_obs::mem::publish_all(&[
        (dx_obs::mem::names::DELTA_LIVE_SLOTS, mem.live_slots),
        (
            dx_obs::mem::names::DELTA_POSTING_ENTRIES,
            mem.posting_entries,
        ),
        (dx_obs::mem::names::DELTA_REFCOUNT_TOTAL, mem.refcount_total),
    ]);
    count
}

// ---------------------------------------------------------------------------
// Parallel union sweeps
// ---------------------------------------------------------------------------

/// Freeze the common base of `members` and compute each member's private
/// remainder — the decomposition [`for_each_union`] maintains on its single
/// `DeltaIndex`, lifted to a shareable [`FrozenIndex`] so pool workers can
/// each layer a private [`OverlayIndex`] on top.
fn union_parts(members: &[Instance]) -> (Arc<FrozenIndex>, Vec<Vec<(RelSym, Tuple)>>) {
    let mut delta = DeltaIndex::new();
    for m in members {
        for (rel, r) in m.relations() {
            delta.declare(rel, r.arity());
        }
    }
    let all_tuples = |m: &Instance| -> Vec<(RelSym, Tuple)> {
        m.relations()
            .flat_map(|(rel, r)| r.iter().map(move |t| (rel, t.clone())))
            .collect()
    };
    let base: Vec<(RelSym, Tuple)> = all_tuples(&members[0])
        .into_iter()
        .filter(|(rel, t)| members[1..].iter().all(|m| m.contains(*rel, t)))
        .collect();
    for (rel, t) in &base {
        delta.insert(*rel, t.clone());
    }
    let privates: Vec<Vec<(RelSym, Tuple)>> = members
        .iter()
        .map(|m| {
            all_tuples(m)
                .into_iter()
                .filter(|(rel, t)| !delta.contains(*rel, t))
                .collect()
        })
        .collect();
    (delta.freeze(), privates)
}

/// Walk the unions of top-level branch `b` — every union whose smallest
/// member index is `b` — in the canonical [`for_each_union`] order, against
/// an [`OverlayIndex`]. `visit` returns `true` to stop the walk of this
/// branch; the return value reports whether it did.
fn walk_branch(
    privates: &[Vec<(RelSym, Tuple)>],
    overlay: &mut OverlayIndex,
    b: usize,
    depth_left: usize,
    visit: &mut dyn FnMut(&OverlayIndex) -> bool,
) -> bool {
    dx_obs::trace_instant!(
        "solver.union.branch",
        "member" = b,
        "depth_left" = depth_left
    );
    dx_obs::count!("solver.union.deltas_applied", privates[b].len());
    for (rel, t) in &privates[b] {
        overlay.insert(*rel, t.clone());
    }
    dx_obs::count!("solver.union.unions_visited");
    let stop = visit(overlay) || {
        let mut stopped = false;
        if depth_left > 1 {
            for i in b + 1..privates.len() {
                if walk_branch(privates, overlay, i, depth_left - 1, visit) {
                    stopped = true;
                    break;
                }
            }
        }
        stopped
    };
    dx_obs::count!("solver.union.deltas_undone", privates[b].len());
    for (rel, t) in privates[b].iter().rev() {
        overlay.remove(*rel, t);
    }
    stop
}

/// Number of unions in the top-level branch of a walk with `later` members
/// after the branch head and union-size cap `depth`: the subsets of the
/// later members of size `< depth`, each adjoined to the head. `None` on
/// `u64` overflow — a space the sequential walk could never finish either,
/// so callers simply stay sequential.
fn branch_weight(later: usize, depth: usize) -> Option<u64> {
    let jmax = depth.saturating_sub(1).min(later);
    let mut total: u64 = 0;
    let mut binom: u64 = 1; // C(later, j), maintained incrementally
    for j in 0..=jmax {
        if j > 0 {
            binom = binom.checked_mul((later - j + 1) as u64)? / j as u64;
        }
        total = total.checked_add(binom)?;
    }
    Some(total)
}

/// Start offset of every top-level branch in the canonical union order,
/// plus the total union count.
fn branch_offsets(m: usize, depth: usize) -> Option<(Vec<u64>, u64)> {
    let mut offsets = Vec::with_capacity(m);
    let mut acc: u64 = 0;
    for b in 0..m {
        offsets.push(acc);
        acc = acc.checked_add(branch_weight(m - 1 - b, depth)?)?;
    }
    Some((offsets, acc))
}

/// Partition branches `0..offsets.len()` into contiguous chunks of roughly
/// equal union counts. The per-branch weights are wildly skewed (branch 0
/// owns nearly half an uncapped space), so chunking by branch *count* would
/// starve most workers.
fn weighted_chunks(offsets: &[u64], total: u64, want: usize) -> Vec<std::ops::Range<usize>> {
    let m = offsets.len();
    let target = (total / (want.max(1) as u64)).max(1);
    let mut chunks = Vec::new();
    let mut start = 0usize;
    while start < m {
        let limit = offsets[start].saturating_add(target);
        let mut end = start + 1;
        while end < m && offsets[end] < limit {
            end += 1;
        }
        chunks.push(start..end);
        start = end;
    }
    chunks
}

/// `retain` over every union of at most `max_union_size` members, in
/// parallel: the GCWA\*-answer loop (`survivors.retain(..);
/// survivors.is_empty()`) lifted into a sweep the pool splits by top-level
/// branch. Returns the surviving candidates (in input order) and the number
/// of unions the *sequential* early-stopping walk visits — both
/// bit-identical to running the retain loop under [`for_each_union`], at
/// every thread count.
///
/// `holds(store, t)` must be a pure function of the store's visible tuple
/// set and `t` (compiled plan probes qualify): the parallel walk recovers
/// each candidate's first falsifying union from per-branch kill indices,
/// which reproduces the sequential early-stop accounting only for pure
/// predicates.
pub fn union_retain_sweep(
    members: &[Instance],
    max_union_size: usize,
    candidates: Vec<Tuple>,
    holds: &(dyn Fn(&OverlayIndex, &Tuple) -> bool + Sync),
) -> (Vec<Tuple>, u64) {
    if members.is_empty() || max_union_size == 0 {
        return (candidates, 0);
    }
    let _span = dx_obs::span!("solver.union_retain_sweep");
    let depth = max_union_size.min(members.len());
    let (frozen, privates) = union_parts(members);
    let threads = rayon::current_num_threads();
    let plan = if threads > 1 && !candidates.is_empty() {
        branch_offsets(members.len(), depth)
    } else {
        None
    };
    let Some((offsets, total)) = plan else {
        // Sequential walk: one overlay, stopping the moment the candidate
        // set empties — exactly the for_each_union retain loop.
        let mut overlay = OverlayIndex::new(frozen);
        let mut alive = candidates;
        let mut count = 0u64;
        for b in 0..privates.len() {
            let stop = walk_branch(&privates, &mut overlay, b, depth, &mut |ov| {
                count += 1;
                alive.retain(|t| holds(ov, t));
                alive.is_empty()
            });
            if stop {
                break;
            }
        }
        return (alive, count);
    };
    // Parallel: each chunk of branches records candidate kills against its
    // own overlay; the sequential outcome is reconstructed from the
    // earliest (global) kill index per candidate. `bound` is a global index
    // at which every candidate is known dead — unions beyond it cannot
    // lower any kill index, so workers prune there.
    let chunks = weighted_chunks(&offsets, total, threads * 4);
    let bound = AtomicU64::new(u64::MAX);
    let per_chunk = rayon::par_map(chunks.len(), |ci| {
        let mut overlay = OverlayIndex::new(Arc::clone(&frozen));
        let mut kills: Vec<Option<u64>> = vec![None; candidates.len()];
        for b in chunks[ci].clone() {
            if offsets[b] >= bound.load(Ordering::Relaxed) {
                break;
            }
            let mut local = 0u64;
            walk_branch(&privates, &mut overlay, b, depth, &mut |ov| {
                let g = offsets[b] + local;
                local += 1;
                if g >= bound.load(Ordering::Relaxed) {
                    return true;
                }
                let mut all_dead = true;
                for (k, t) in candidates.iter().enumerate() {
                    if kills[k].is_none_or(|e| e > g) && !holds(ov, t) {
                        kills[k] = Some(g);
                    }
                    all_dead &= kills[k].is_some();
                }
                if all_dead {
                    bound.fetch_min(g, Ordering::Relaxed);
                    return true;
                }
                false
            });
        }
        kills
    });
    let mut first_kill: Vec<Option<u64>> = vec![None; candidates.len()];
    for kills in per_chunk {
        for (k, g) in kills.into_iter().enumerate() {
            if let Some(g) = g {
                first_kill[k] = Some(first_kill[k].map_or(g, |e: u64| e.min(g)));
            }
        }
    }
    let survivors: Vec<Tuple> = candidates
        .into_iter()
        .zip(&first_kill)
        .filter(|(_, k)| k.is_none())
        .map(|(t, _)| t)
        .collect();
    let unions = if survivors.is_empty() {
        // The sequential walk stops on the union that killed the last
        // survivor: the latest of the per-candidate first kills.
        first_kill.iter().filter_map(|k| *k).max().unwrap_or(0) + 1
    } else {
        total
    };
    (survivors, unions)
}

/// First falsifying union of at most `max_union_size` members, in
/// parallel: the GCWA\*-membership loop (stop at the first union where the
/// probe fails) split by top-level branch. Returns the canonical-order
/// first counterexample instance (if any) and the sequential-semantics
/// union count — bit-identical at every thread count for pure `fails`
/// predicates.
pub fn union_refute_sweep(
    members: &[Instance],
    max_union_size: usize,
    fails: &(dyn Fn(&OverlayIndex) -> bool + Sync),
) -> (Option<Instance>, u64) {
    if members.is_empty() || max_union_size == 0 {
        return (None, 0);
    }
    let _span = dx_obs::span!("solver.union_refute_sweep");
    let depth = max_union_size.min(members.len());
    let (frozen, privates) = union_parts(members);
    let threads = rayon::current_num_threads();
    let plan = if threads > 1 {
        branch_offsets(members.len(), depth)
    } else {
        None
    };
    let Some((offsets, total)) = plan else {
        let mut overlay = OverlayIndex::new(frozen);
        let mut count = 0u64;
        let mut counterexample = None;
        for b in 0..privates.len() {
            let stop = walk_branch(&privates, &mut overlay, b, depth, &mut |ov| {
                count += 1;
                if fails(ov) {
                    counterexample = Some(ov.instance().clone());
                    true
                } else {
                    false
                }
            });
            if stop {
                break;
            }
        }
        return (counterexample, count);
    };
    // Parallel: the walk order within a chunk is globally increasing, so
    // each chunk's first hit is its minimum; `best` prunes every worker
    // past the earliest hit found so far.
    let chunks = weighted_chunks(&offsets, total, threads * 4);
    let best = AtomicU64::new(u64::MAX);
    let per_chunk = rayon::par_map(chunks.len(), |ci| {
        let mut overlay = OverlayIndex::new(Arc::clone(&frozen));
        let mut found: Option<(u64, Instance)> = None;
        for b in chunks[ci].clone() {
            if found.is_some() || offsets[b] >= best.load(Ordering::Relaxed) {
                break;
            }
            let mut local = 0u64;
            walk_branch(&privates, &mut overlay, b, depth, &mut |ov| {
                let g = offsets[b] + local;
                local += 1;
                if g >= best.load(Ordering::Relaxed) {
                    return true;
                }
                if fails(ov) {
                    best.fetch_min(g, Ordering::Relaxed);
                    found = Some((g, ov.instance().clone()));
                    return true;
                }
                false
            });
        }
        found
    });
    let winner = per_chunk.into_iter().flatten().min_by_key(|(g, _)| *g);
    match winner {
        Some((g, inst)) => (Some(inst), g + 1),
        None => (None, total),
    }
}

/// A `rel(T)` tuple containing nulls, waiting for its valuation image.
struct TrackedTuple {
    rel: RelSym,
    tuple: Tuple,
    /// Distinct nulls of `tuple` not yet assigned by the current valuation
    /// prefix; the image enters the store when this reaches 0.
    unassigned: usize,
}

struct State<'a> {
    t: &'a AnnInstance,
    budget: &'a SearchBudget,
    check: &'a mut dyn FnMut(&Leaf<'_>) -> bool,
    extra_base: BTreeSet<ConstId>,
    leaves: u64,
    capped: bool,
    pool_truncated: bool,
    witness: Option<(Instance, Valuation)>,
    /// The single candidate store, kept in sync with the DFS by the
    /// apply/undo pairs in [`State::valuation_dfs`] / [`State::subsets`].
    delta: DeltaIndex,
    tracked: Vec<TrackedTuple>,
    by_null: FastMap<NullId, Vec<usize>>,
}

impl<'a> State<'a> {
    /// Assign `null ↦ c` and insert the images of tuples that just became
    /// fully valued; returns the applied images for [`State::unassign`].
    fn assign(&mut self, null: NullId, c: ConstId, v: &mut Valuation) -> Vec<(usize, Tuple)> {
        v.set(null, c);
        let mut applied = Vec::new();
        if let Some(tis) = self.by_null.get(&null) {
            for &ti in tis {
                let tt = &mut self.tracked[ti];
                tt.unassigned -= 1;
                if tt.unassigned == 0 {
                    let image = tt.tuple.apply(v);
                    self.delta.insert(tt.rel, image.clone());
                    applied.push((ti, image));
                }
            }
        }
        dx_obs::count!("solver.dfs.deltas_applied", applied.len());
        applied
    }

    /// Undo one [`State::assign`]: retract the images that entered the
    /// store (newest-first, per the store's LIFO discipline) and restore
    /// the unassigned-null counter of *every* tuple containing the null.
    fn unassign(&mut self, null: NullId, applied: Vec<(usize, Tuple)>, v: &mut Valuation) {
        dx_obs::count!("solver.dfs.deltas_undone", applied.len());
        for (ti, image) in applied.into_iter().rev() {
            self.delta.remove(self.tracked[ti].rel, &image);
        }
        if let Some(tis) = self.by_null.get(&null) {
            for &ti in tis {
                self.tracked[ti].unassigned += 1;
            }
        }
        v.unset(null);
    }

    fn valuation_dfs(
        &mut self,
        nulls: &[NullId],
        i: usize,
        fresh_used: usize,
        palette: &Palette,
        v: &mut Valuation,
    ) {
        if self.witness.is_some() || self.capped {
            return;
        }
        dx_obs::count!("solver.dfs.nodes");
        dx_obs::trace_instant!("solver.dfs.depth", "depth" = i, "fresh_used" = fresh_used);
        if i == nulls.len() {
            self.extras_phase(v);
            return;
        }
        let choices: Vec<ConstId> = palette.choices(fresh_used).collect();
        for c in choices {
            let next_fresh = fresh_used + usize::from(palette.is_next_fresh(c, fresh_used));
            let applied = self.assign(nulls[i], c, v);
            self.valuation_dfs(nulls, i + 1, next_fresh, palette, v);
            self.unassign(nulls[i], applied, v);
            if self.witness.is_some() || self.capped {
                return;
            }
        }
    }

    /// Visit one candidate instance — the store as currently composed.
    fn leaf(&mut self, v: &Valuation) {
        dx_obs::count!("solver.dfs.leaves");
        self.leaves += 1;
        if let Some(cap) = self.budget.max_leaves {
            if self.leaves > cap {
                self.capped = true;
                return;
            }
        }
        let leaf = Leaf {
            delta: &self.delta,
            valuation: v,
        };
        if (self.check)(&leaf) {
            self.witness = Some((self.delta.instance().clone(), v.clone()));
        }
    }

    fn extras_phase(&mut self, v: &Valuation) {
        debug_assert!(self.delta.instance().is_ground());
        // The bare valuation image is itself the first candidate (k = 0).
        self.leaf(v);
        if self.witness.is_some() || self.capped || self.budget.max_extra_tuples == 0 {
            return;
        }

        // Extension palette: adom of the valued instance + caller constants
        // + canonical external constants.
        let mut ext_base: BTreeSet<ConstId> = self.delta.instance().adom_consts();
        ext_base.extend(self.extra_base.iter().copied());
        let ext_palette = Palette::new(
            ext_base.iter().copied(),
            self.budget.max_external_consts,
            "e",
        );
        let (pool, n_templates) = self.candidate_pool(v, &ext_palette);

        // Subsets of the pool, by increasing size.
        let max_k = self.budget.max_extra_tuples.min(pool.len());
        let mut chosen: Vec<usize> = Vec::new();
        let mut template_counts = vec![0usize; n_templates];
        for k in 1..=max_k {
            self.subsets(&pool, v, k, 0, &mut chosen, &mut template_counts);
            if self.witness.is_some() || self.capped {
                return;
            }
        }
    }

    /// Build the extra-tuple candidate pool. Each entry carries the id of
    /// the *template* (annotated tuple or empty marker) that licensed it,
    /// so per-template caps (1-to-m semantics) can be enforced. Returns the
    /// pool and the number of templates.
    ///
    /// Pool construction runs once per complete valuation (not per leaf) on
    /// the *valued* annotated instance `v(T)` — tuples that merge under `v`
    /// merge their templates, exactly as the paper's replication reading
    /// counts open tuples of the valued instance.
    fn candidate_pool(
        &mut self,
        v: &Valuation,
        palette: &Palette,
    ) -> (Vec<(RelSym, Tuple, usize)>, usize) {
        let valued = self.t.apply(v);
        let mut pool: Vec<(RelSym, Tuple, usize)> = Vec::new();
        let mut template = 0usize;
        let consts: Vec<ConstId> = palette.all().collect();
        for (rel, arel) in valued.relations() {
            // Replications of tuples with open positions.
            for at in arel.iter() {
                let open: Vec<usize> = at.ann.open_positions().collect();
                if open.is_empty() {
                    continue;
                }
                let tid = template;
                template += 1;
                let mut seen: BTreeSet<Tuple> = BTreeSet::new();
                let combos = consts.len().checked_pow(open.len() as u32);
                if combos.is_none_or(|c| pool.len() + c > self.budget.max_candidate_pool) {
                    self.pool_truncated = true;
                }
                let mut idx = vec![0usize; open.len()];
                'combo: loop {
                    if pool.len() >= self.budget.max_candidate_pool {
                        self.pool_truncated = true;
                        break 'combo;
                    }
                    let mut vals: Vec<Value> = at.tuple.values().to_vec();
                    for (slot, &pos) in open.iter().enumerate() {
                        vals[pos] = Value::Const(consts[idx[slot]]);
                    }
                    let cand = Tuple::new(vals);
                    if !self.delta.contains(rel, &cand) && seen.insert(cand.clone()) {
                        pool.push((rel, cand, tid));
                    }
                    // Next combination.
                    let mut carry = 0usize;
                    loop {
                        if carry == idx.len() {
                            break 'combo;
                        }
                        idx[carry] += 1;
                        if idx[carry] < consts.len() {
                            break;
                        }
                        idx[carry] = 0;
                        carry += 1;
                    }
                }
            }
            // Arbitrary tuples licensed by all-open empty markers.
            if arel.has_all_open_empty_mark() {
                let arity = arel.arity();
                if arity == 0 {
                    continue;
                }
                let tid = template;
                template += 1;
                let mut seen: BTreeSet<Tuple> = BTreeSet::new();
                let combos = consts.len().checked_pow(arity as u32);
                if combos.is_none_or(|c| pool.len() + c > self.budget.max_candidate_pool) {
                    self.pool_truncated = true;
                }
                let mut idx = vec![0usize; arity];
                'combo2: loop {
                    if pool.len() >= self.budget.max_candidate_pool {
                        self.pool_truncated = true;
                        break 'combo2;
                    }
                    let vals: Vec<Value> = idx.iter().map(|&j| Value::Const(consts[j])).collect();
                    let cand = Tuple::new(vals);
                    if !self.delta.contains(rel, &cand) && seen.insert(cand.clone()) {
                        pool.push((rel, cand, tid));
                    }
                    let mut carry = 0usize;
                    loop {
                        if carry == idx.len() {
                            break 'combo2;
                        }
                        idx[carry] += 1;
                        if idx[carry] < consts.len() {
                            break;
                        }
                        idx[carry] = 0;
                        carry += 1;
                    }
                }
            }
        }
        (pool, template)
    }

    #[allow(clippy::too_many_arguments)]
    fn subsets(
        &mut self,
        pool: &[(RelSym, Tuple, usize)],
        v: &Valuation,
        k: usize,
        start: usize,
        chosen: &mut Vec<usize>,
        template_counts: &mut [usize],
    ) {
        if self.witness.is_some() || self.capped {
            return;
        }
        dx_obs::count!("solver.dfs.nodes");
        if k == 0 {
            self.leaf(v);
            return;
        }
        if start + k > pool.len() {
            return;
        }
        let per_template = self.budget.max_extra_per_template.unwrap_or(usize::MAX);
        for i in start..=(pool.len() - k) {
            let (rel, tuple, tid) = &pool[i];
            if template_counts[*tid] >= per_template {
                continue;
            }
            template_counts[*tid] += 1;
            chosen.push(i);
            dx_obs::count!("solver.dfs.deltas_applied");
            self.delta.insert(*rel, tuple.clone());
            self.subsets(pool, v, k - 1, i + 1, chosen, template_counts);
            dx_obs::count!("solver.dfs.deltas_undone");
            self.delta.remove(*rel, tuple);
            chosen.pop();
            template_counts[*tid] -= 1;
            if self.witness.is_some() || self.capped {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_relation::{Ann, AnnTuple, Annotation};

    fn at(vals: Vec<Value>, anns: Vec<Ann>) -> AnnTuple {
        AnnTuple::new(Tuple::new(vals), Annotation::new(anns))
    }

    /// All-closed: the search space is exactly the valuations.
    #[test]
    fn closed_world_counts_valuations() {
        let rel = RelSym::new("EnumA");
        let mut t = AnnInstance::new();
        t.insert(
            rel,
            at(
                vec![Value::c("a"), Value::null(0)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        // Palette: base {a} + 1 fresh → 2 valuations → 2 leaves.
        let n = enumerate_rep_a(
            &t,
            &BTreeSet::new(),
            &SearchBudget::closed_world(),
            &mut |_| false,
        );
        assert_eq!(n, 2);
    }

    /// Symmetry breaking: with two independent nulls and no base constants,
    /// the canonical valuations are ⊥0↦f0 with ⊥1 ∈ {f0, f1}: 2 leaves,
    /// not 4.
    #[test]
    fn fresh_constant_symmetry_breaking() {
        let rel = RelSym::new("EnumB");
        let mut t = AnnInstance::new();
        t.insert(
            rel,
            at(
                vec![Value::null(0), Value::null(1)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        let n = enumerate_rep_a(
            &t,
            &BTreeSet::new(),
            &SearchBudget::closed_world(),
            &mut |_| false,
        );
        assert_eq!(n, 2);
    }

    /// Open positions produce replicated extras.
    #[test]
    fn open_replication_finds_bigger_instances() {
        let rel = RelSym::new("EnumC");
        let mut t = AnnInstance::new();
        t.insert(
            rel,
            at(
                vec![Value::c("a"), Value::null(0)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        // Look for an instance with ≥ 3 tuples (requires 2 extras).
        let outcome = search_rep_a(
            &t,
            &BTreeSet::new(),
            &SearchBudget::bounded(2, 2),
            &mut |i| i.tuple_count() >= 3,
        );
        let (w, _) = outcome.witness.expect("replication should reach 3 tuples");
        assert_eq!(w.tuple_count(), 3);
        // All tuples share the closed first coordinate.
        for tup in w.tuples(rel) {
            assert_eq!(tup.get(0), Value::c("a"));
        }
    }

    /// A closed instance can never grow.
    #[test]
    fn closed_instances_cannot_grow() {
        let rel = RelSym::new("EnumD");
        let mut t = AnnInstance::new();
        t.insert(
            rel,
            at(
                vec![Value::c("a"), Value::null(0)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        let outcome = search_rep_a(&t, &BTreeSet::new(), &SearchBudget::default(), &mut |i| {
            i.tuple_count() >= 2
        });
        assert!(outcome.witness.is_none());
        assert_eq!(outcome.completeness, Completeness::Exact);
    }

    /// Witnesses returned really are Rep_A members.
    #[test]
    fn witnesses_verify_via_repa_membership() {
        let rel = RelSym::new("EnumE");
        let mut t = AnnInstance::new();
        t.insert(
            rel,
            at(
                vec![Value::null(0), Value::null(1)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        let outcome = search_rep_a(
            &t,
            &BTreeSet::new(),
            &SearchBudget::bounded(1, 2),
            &mut |i| i.tuple_count() == 2,
        );
        let (w, _) = outcome.witness.expect("found");
        assert!(crate::repa::rep_a_membership(&t, &w).is_some());
    }

    /// Empty markers: all-open marks generate arbitrary tuples.
    #[test]
    fn all_open_marks_generate() {
        let rel = RelSym::new("EnumF");
        let mut t = AnnInstance::new();
        t.insert_empty_mark(rel, Annotation::all_open(1));
        let outcome = search_rep_a(
            &t,
            &BTreeSet::new(),
            &SearchBudget::bounded(2, 1),
            &mut |i| i.tuple_count() == 1,
        );
        assert!(outcome.witness.is_some());
        // And the empty instance is also in the space (first leaf).
        let outcome2 = search_rep_a(
            &t,
            &BTreeSet::new(),
            &SearchBudget::bounded(2, 1),
            &mut |i| i.is_empty(),
        );
        assert!(outcome2.witness.is_some());
    }

    /// Leaf caps are honoured and reported.
    #[test]
    fn leaf_cap_reported() {
        let rel = RelSym::new("EnumG");
        let mut t = AnnInstance::new();
        for i in 0..4 {
            t.insert(rel, at(vec![Value::null(i)], vec![Ann::Closed]));
        }
        let budget = SearchBudget {
            max_leaves: Some(3),
            ..SearchBudget::closed_world()
        };
        let outcome = search_rep_a(&t, &BTreeSet::new(), &budget, &mut |_| false);
        assert_eq!(outcome.completeness, Completeness::Capped);
    }

    /// Minimal members: extras never matter, merging valuations produce
    /// ⊆-comparable images, and only the minimal ones survive.
    #[test]
    fn minimal_members_are_minimal_images() {
        let rel = RelSym::new("MinA");
        let mut t = AnnInstance::new();
        // Two tuples sharing no nulls; ⊥0 = ⊥1 merges them into one image
        // that is a strict subset of every non-merging image.
        t.insert(
            rel,
            at(
                vec![Value::c("a"), Value::null(0)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        t.insert(
            rel,
            at(
                vec![Value::c("a"), Value::null(1)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        let (minimal, comp) = minimal_rep_a_members(&t, &BTreeSet::new(), None);
        assert_eq!(comp, Completeness::Exact);
        // Merged images {(a,c)} (one per palette constant, canonically one
        // for the fresh constant + one for "a") are the only minimal ones.
        for m in &minimal {
            assert_eq!(m.tuple_count(), 1, "minimal members merge the nulls: {m}");
        }
        assert!(!minimal.is_empty());
        // Every minimal member is a genuine Rep_A member.
        for m in &minimal {
            assert!(crate::repa::rep_a_membership(&t, m).is_some());
        }
        // And open positions admit strictly larger members, which are not
        // reported minimal: check by searching for a 3-tuple witness.
        let bigger = search_rep_a(
            &t,
            &BTreeSet::new(),
            &SearchBudget::bounded(1, 2),
            &mut |i| i.tuple_count() >= 3,
        );
        assert!(bigger.witness.is_some());
    }

    /// The union walker visits every nonempty subset once (up to the size
    /// cap), with the live store equal to the materialized union at every
    /// visit.
    #[test]
    fn union_walker_matches_materialized_unions() {
        let mk = |names: &[&str]| {
            let mut i = Instance::new();
            for n in names {
                i.insert_names("UnW", &[n, "shared"]);
                i.insert_names("UnW", &["common", "base"]);
            }
            i
        };
        let members = [mk(&["a"]), mk(&["b"]), mk(&["c"])];
        let mut seen: Vec<Instance> = Vec::new();
        let visited = for_each_union(&members, usize::MAX, &mut |delta| {
            seen.push(delta.instance().clone());
            // Index and view agree at every node.
            for (r, rl) in delta.instance().relations() {
                assert_eq!(delta.rel_len(r), rl.len());
                for t in rl.iter() {
                    assert!(delta.contains(r, t));
                }
            }
            false
        });
        assert_eq!(visited, 7, "2³ − 1 nonempty subsets");
        assert_eq!(seen.len(), 7);
        // Each visited store is the union of a distinct subset.
        let mut expected: Vec<Instance> = Vec::new();
        for mask in 1u32..8 {
            let mut u = Instance::new();
            for (i, m) in members.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    u = u.union(m);
                }
            }
            expected.push(u);
        }
        seen.sort();
        expected.sort();
        assert_eq!(seen, expected);
        // The size cap prunes: singletons + pairs only.
        let capped = for_each_union(&members, 2, &mut |_| false);
        assert_eq!(capped, 6);
        // Early stop is honoured.
        let mut n = 0;
        let stopped = for_each_union(&members, usize::MAX, &mut |_| {
            n += 1;
            n == 3
        });
        assert_eq!(stopped, 3);
    }

    /// Serializes tests that change the process-global pool width, so their
    /// width-sensitive comparisons never race each other.
    fn width_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn xorshift(s: &mut u64) -> u64 {
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        *s
    }

    /// A pseudo-random family of overlapping members over one relation.
    fn random_members(seed: &mut u64) -> Vec<Instance> {
        let n_members = 3 + (xorshift(seed) % 4) as usize;
        let consts = ["c0", "c1", "c2", "c3", "c4"];
        (0..n_members)
            .map(|_| {
                let mut m = Instance::new();
                // A shared spine keeps the common base nonempty sometimes.
                m.insert_names("SwU", &["spine", "spine"]);
                let tuples = 1 + (xorshift(seed) % 4) as usize;
                for _ in 0..tuples {
                    let a = consts[(xorshift(seed) % 5) as usize];
                    let b = consts[(xorshift(seed) % 5) as usize];
                    m.insert_names("SwU", &[a, b]);
                }
                m
            })
            .collect()
    }

    /// The retain sweep is bit-identical to the sequential
    /// [`for_each_union`] retain loop — survivors, order, and the
    /// early-stop union count — at every pool width, across random member
    /// families and candidate sets.
    #[test]
    fn retain_sweep_bit_identical_across_widths() {
        let _guard = width_lock();
        let rel = RelSym::new("SwU");
        let mut seed = 0x5eed_0001_u64;
        for case in 0..25 {
            let members = random_members(&mut seed);
            let max_k = if case % 3 == 0 { 2 } else { usize::MAX };
            // Candidates: a mix of base-resident, sometimes-present, and
            // absent tuples — kills land at varying union indices.
            let mut candidates = vec![
                Tuple::from_names(&["spine", "spine"]),
                Tuple::from_names(&["absent", "absent"]),
            ];
            for _ in 0..3 {
                let consts = ["c0", "c1", "c2", "c3", "c4"];
                let a = consts[(xorshift(&mut seed) % 5) as usize];
                let b = consts[(xorshift(&mut seed) % 5) as usize];
                candidates.push(Tuple::from_names(&[a, b]));
            }
            // Sequential reference on the single DeltaIndex walk.
            let mut reference = candidates.clone();
            let ref_unions = for_each_union(&members, max_k, &mut |delta| {
                reference.retain(|t| delta.contains(rel, t));
                reference.is_empty()
            });
            for width in [1usize, 2, 3, 4, 8] {
                rayon::set_threads(width);
                let (survivors, unions) =
                    union_retain_sweep(&members, max_k, candidates.clone(), &|ov, t| {
                        ov.contains(rel, t)
                    });
                assert_eq!(survivors, reference, "case {case} width {width}");
                assert_eq!(unions, ref_unions, "case {case} width {width}");
            }
            rayon::set_threads(0);
        }
    }

    /// The refute sweep returns the canonical-order first falsifying union
    /// (instance and early-stop count) at every pool width.
    #[test]
    fn refute_sweep_bit_identical_across_widths() {
        let _guard = width_lock();
        let mut seed = 0x5eed_0002_u64;
        for case in 0..25 {
            let members = random_members(&mut seed);
            let max_k = if case % 4 == 0 { 2 } else { usize::MAX };
            // Thresholds straddle reachable and unreachable counts.
            let threshold = 1 + (xorshift(&mut seed) % 8) as usize;
            let mut ref_cex = None;
            let ref_unions = for_each_union(&members, max_k, &mut |delta| {
                if delta.instance().tuple_count() >= threshold {
                    ref_cex = Some(delta.instance().clone());
                    true
                } else {
                    false
                }
            });
            for width in [1usize, 2, 3, 4, 8] {
                rayon::set_threads(width);
                let (cex, unions) = union_refute_sweep(&members, max_k, &|ov| {
                    ov.instance().tuple_count() >= threshold
                });
                assert_eq!(cex, ref_cex, "case {case} width {width}");
                assert_eq!(unions, ref_unions, "case {case} width {width}");
            }
            rayon::set_threads(0);
        }
    }

    /// The minimal-member sweep returns the same minimal set (and
    /// completeness) at every pool width, including the capped fallback.
    #[test]
    fn minimal_members_bit_identical_across_widths() {
        let _guard = width_lock();
        let rel = RelSym::new("SwM");
        let mut seed = 0x5eed_0003_u64;
        for case in 0..10 {
            let mut t = AnnInstance::new();
            let nulls = 2 + (xorshift(&mut seed) % 3) as usize;
            for i in 0..nulls {
                let closed = xorshift(&mut seed).is_multiple_of(2);
                t.insert(
                    rel,
                    at(
                        vec![
                            Value::c(["a", "b"][(xorshift(&mut seed) % 2) as usize]),
                            Value::null(i as u32),
                        ],
                        vec![Ann::Closed, if closed { Ann::Closed } else { Ann::Open }],
                    ),
                );
            }
            t.insert(
                rel,
                at(
                    vec![Value::c("g"), Value::c("g")],
                    vec![Ann::Closed, Ann::Closed],
                ),
            );
            for cap in [None, Some(3u64)] {
                rayon::set_threads(1);
                let reference = minimal_rep_a_members(&t, &BTreeSet::new(), cap);
                for width in [2usize, 4, 8] {
                    rayon::set_threads(width);
                    let got = minimal_rep_a_members(&t, &BTreeSet::new(), cap);
                    assert_eq!(got.0, reference.0, "case {case} width {width} cap {cap:?}");
                    assert_eq!(got.1, reference.1, "case {case} width {width} cap {cap:?}");
                }
            }
            rayon::set_threads(0);
        }
    }

    /// The incremental store presented to leaves is exactly the instance the
    /// old rebuild-per-candidate engine materialized: `v(rel(T))` plus the
    /// chosen extras — validated against a from-scratch reconstruction at
    /// every leaf of a mixed open/closed search.
    #[test]
    fn leaf_store_matches_materialized_candidate() {
        let rel = RelSym::new("EnumH");
        let r2 = RelSym::new("EnumH2");
        let mut t = AnnInstance::new();
        t.insert(
            rel,
            at(
                vec![Value::c("a"), Value::null(0)],
                vec![Ann::Closed, Ann::Open],
            ),
        );
        t.insert(
            rel,
            at(
                vec![Value::null(0), Value::null(1)],
                vec![Ann::Closed, Ann::Closed],
            ),
        );
        t.insert(r2, at(vec![Value::null(1)], vec![Ann::Closed]));
        t.insert_empty_mark(r2, Annotation::all_open(1));
        let mut leaves = 0u64;
        let outcome = search_rep_a_indexed(
            &t,
            &BTreeSet::new(),
            &SearchBudget::bounded(1, 2),
            &mut |leaf| {
                leaves += 1;
                let inst = leaf.instance();
                // The valuation is total and the view is its ground image
                // plus extras only.
                assert!(inst.is_ground());
                let base = t.apply(leaf.valuation()).rel_part();
                assert!(base.is_subinstance_of(inst), "valuation image present");
                // Index agrees with the instance on every point probe.
                for (r, rl) in inst.relations() {
                    assert_eq!(leaf.index().rel_len(r), rl.len());
                    for tu in rl.iter() {
                        assert!(leaf.index().contains(r, tu));
                    }
                }
                false
            },
        );
        assert!(outcome.witness.is_none());
        assert_eq!(outcome.leaves, leaves);
        assert!(leaves > 10, "mixed search explores replication space");
    }
}
