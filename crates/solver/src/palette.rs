//! Generic constant palettes.
//!
//! Several proofs in the paper (Claim 1 of Proposition 2, the bounded-model
//! construction of Lemma 2, the domain restriction of Proposition 5) rest on
//! *genericity*: queries cannot distinguish fresh constants, so witness
//! instances may be normalized to use canonical fresh constants. A
//! [`Palette`] packages "the constants a search may use": a *base* pool
//! (active domains, query constants) plus a supply of canonical *fresh*
//! constants, and enforces first-use symmetry breaking during enumeration.

use dx_relation::ConstId;
use std::collections::BTreeSet;

/// A pool of constants for witness search.
#[derive(Clone, Debug)]
pub struct Palette {
    base: Vec<ConstId>,
    fresh: Vec<ConstId>,
}

impl Palette {
    /// Build a palette from a base pool and `n_fresh` canonical fresh
    /// constants named `⋆{prefix}{i}`. Fresh constants colliding with base
    /// constants are skipped (they would not be fresh).
    pub fn new(base: impl IntoIterator<Item = ConstId>, n_fresh: usize, prefix: &str) -> Self {
        let base_set: BTreeSet<ConstId> = base.into_iter().collect();
        let mut fresh = Vec::with_capacity(n_fresh);
        let mut i = 0usize;
        while fresh.len() < n_fresh {
            let c = ConstId::new(&format!("⋆{prefix}{i}"));
            if !base_set.contains(&c) {
                fresh.push(c);
            }
            i += 1;
        }
        Palette {
            base: base_set.into_iter().collect(),
            fresh,
        }
    }

    /// The base constants (deterministic order).
    pub fn base(&self) -> &[ConstId] {
        &self.base
    }

    /// The fresh constants (canonical order).
    pub fn fresh(&self) -> &[ConstId] {
        &self.fresh
    }

    /// Total number of constants.
    pub fn len(&self) -> usize {
        self.base.len() + self.fresh.len()
    }

    /// Is the palette empty?
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.fresh.is_empty()
    }

    /// The choices available at a search node, under first-use symmetry
    /// breaking: all base constants, plus the already-used fresh constants,
    /// plus *one* unused fresh constant (the next canonical one).
    ///
    /// `fresh_used` is how many fresh constants the search has already
    /// committed to (they must have been taken in canonical order).
    pub fn choices(&self, fresh_used: usize) -> impl Iterator<Item = ConstId> + '_ {
        let fresh_avail = (fresh_used + 1).min(self.fresh.len());
        self.base
            .iter()
            .copied()
            .chain(self.fresh[..fresh_avail].iter().copied())
    }

    /// Is `c` the next unused fresh constant (so choosing it increments the
    /// `fresh_used` counter)?
    pub fn is_next_fresh(&self, c: ConstId, fresh_used: usize) -> bool {
        fresh_used < self.fresh.len() && self.fresh[fresh_used] == c
    }

    /// All constants, base then fresh.
    pub fn all(&self) -> impl Iterator<Item = ConstId> + '_ {
        self.base.iter().copied().chain(self.fresh.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_names_avoid_base() {
        // If a base constant happens to equal a canonical fresh name, the
        // palette skips it.
        let clash = ConstId::new("⋆t0");
        let p = Palette::new([clash], 2, "t");
        assert_eq!(p.fresh().len(), 2);
        assert!(!p.fresh().contains(&clash));
    }

    #[test]
    fn symmetry_breaking_choices() {
        let a = ConstId::new("base-a");
        let p = Palette::new([a], 3, "s");
        // With 0 fresh used: base + first fresh only.
        let c0: Vec<_> = p.choices(0).collect();
        assert_eq!(c0.len(), 2);
        assert!(c0.contains(&a));
        assert!(c0.contains(&p.fresh()[0]));
        // With 2 fresh used: base + fresh[0..3].
        let c2: Vec<_> = p.choices(2).collect();
        assert_eq!(c2.len(), 4);
    }

    #[test]
    fn next_fresh_detection() {
        let p = Palette::new([], 2, "u");
        assert!(p.is_next_fresh(p.fresh()[0], 0));
        assert!(!p.is_next_fresh(p.fresh()[0], 1));
        assert!(p.is_next_fresh(p.fresh()[1], 1));
        assert!(!p.is_next_fresh(p.fresh()[1], 2));
    }

    #[test]
    fn deterministic_base_order() {
        let x = ConstId::new("pal-x");
        let y = ConstId::new("pal-y");
        let p1 = Palette::new([y, x], 0, "v");
        let p2 = Palette::new([x, y], 0, "v");
        assert_eq!(p1.base(), p2.base());
    }
}
