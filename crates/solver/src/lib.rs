//! # dx-solver — search engines for `oc-exchange`
//!
//! The paper's decision procedures are nondeterministic guesses over three
//! witness spaces; this crate realizes each as deterministic backtracking:
//!
//! * **valuations** of nulls (`Rep_A` membership — the NP witness of
//!   Theorem 2) in [`repa`];
//! * **instances** `I ∈ Rep_A(T)` of the form `V ∪ E₀ ∪ E′` — a valuation
//!   plus *replicated open tuples* (the witness spaces of Lemma 2 and
//!   Proposition 5) in [`enumerate`];
//! * **generic constant palettes** with first-use symmetry breaking in
//!   [`palette`] — the code form of the paper's genericity arguments
//!   (Claim 1, Lemma 2): fresh constants are interchangeable, so only
//!   canonically-named ones need to be tried;
//! * **Hopcroft–Karp matching** in [`matching`], powering the PTIME `Rep`
//!   membership for Codd tables (§3's complexity remark) in
//!   [`repa::codd_rep_membership`].
//!
//! Every search takes an explicit [`enumerate::SearchBudget`] and reports
//! [`enumerate::Completeness`] so callers can distinguish "no, certainly"
//! from "none found within the budget" — essential for the coNEXPTIME and
//! undecidable regimes (`#op ≥ 1`) where exact search is exponential or
//! impossible.
//!
//! The candidate-instance `check` closures passed to
//! [`enumerate::search_rep_a_indexed`] are supplied by `dx-core`; they
//! evaluate queries through `dx-query` compiled plans probing the search's
//! single incrementally maintained [`dx_relation::DeltaIndex`] (per-leaf
//! body checks run index joins against a store updated by delta apply/undo
//! on DFS enter/exit — no per-candidate materialization or re-indexing),
//! with the `dx-logic` evaluator over [`enumerate::Leaf::instance`] as the
//! automatic fallback for non-safe-range queries. The search itself is
//! query agnostic: it only sees `&dyn FnMut(&Leaf) -> bool`.

#![warn(missing_docs)]

pub mod enumerate;
pub mod matching;
pub mod palette;
pub mod repa;

pub use enumerate::{
    enumerate_rep_a, for_each_union, minimal_rep_a_members, search_rep_a, search_rep_a_indexed,
    union_refute_sweep, union_retain_sweep, Completeness, Leaf, SearchBudget, SearchOutcome,
};
pub use matching::max_bipartite_matching;
pub use palette::Palette;
pub use repa::{
    codd_rep_membership, find_embedding_valuation, is_codd, rep_a_membership, rep_a_membership_via,
    rep_membership, MatchStrategy,
};
