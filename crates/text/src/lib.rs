//! `dx-text`: the textual scenario language for open/closed data exchange.
//!
//! A `.dx` file packages one complete exchange scenario — annotated schemas,
//! st-tgds, target constraints, a source instance (with labeled nulls), and
//! named FO queries — in a compact textual form:
//!
//! ```text
//! scenario "one-author" {
//!   source  { Papers/2; Assignments/2; }
//!   target  { Submissions/2; Reviews/2; }
//!   mapping {
//!     Submissions(x:cl, z:op) <- Papers(x, y);
//!     Reviews(x:cl, z:cl) <- Assignments(x, y);
//!   }
//!   instance { Papers(p0, title0); Assignments(p0, r0); }
//!   query reviewed(x) <- exists z. Reviews(x, z);
//! }
//! ```
//!
//! The crate provides:
//!
//! * [`Scenario::parse`] — a hand-rolled recursive-descent parser with
//!   span-carrying errors ([`TextError::render`] produces `line:col` + caret
//!   diagnostics) followed by typed validation against the declared schemas;
//! * [`printer::print`] / [`Scenario::to_text`] — a canonical pretty-printer
//!   with the round-trip guarantee `parse(print(s)) == s`;
//! * [`gen::gen`] — a seeded, graded scenario generator whose output is
//!   byte-deterministic across runs and thread counts, feeding the corpus
//!   differential harness (`tests/corpus_differential.rs`) and the `dx` CLI.

pub mod ast;
pub mod gen;
pub mod parser;
pub mod printer;
pub mod validate;

pub use ast::{NamedQuery, NamedUpdate, Scenario, Span, TextError};
pub use gen::{gen, gen_text, Grade};

#[cfg(test)]
mod tests {
    use super::*;
    use dx_relation::{RelSym, Value};

    const CONFERENCE: &str = r#"
scenario "one-author" {
  source  { Papers/2; Assignments/2; }
  target  { Submissions/2; Reviews/2; }
  mapping {
    Submissions(x:cl, z:op) <- Papers(x, y);
    Reviews(x:cl, z:cl) <- Assignments(x, y);
    Reviews(x:cl, z:op) <- Papers(x, y) & !exists r. Assignments(x, r);
  }
  instance {
    Papers(p0, title0);
    Papers(p1, title1);
    Assignments(p0, r0);
  }
  query one_author() <- forall p a1 a2. (Submissions(p, a1) & Submissions(p, a2) -> a1 = a2);
  query reviewed(x) <- exists z. Reviews(x, z);
  update "late-submission" {
    insert Papers(p2, title2);
    retract Assignments(p0, r0);
  }
}
"#;

    #[test]
    fn conference_scenario_parses_and_round_trips() {
        let sc = Scenario::parse(CONFERENCE).expect("parses");
        assert_eq!(sc.name, "one-author");
        assert_eq!(sc.mapping.stds.len(), 3);
        assert_eq!(sc.queries.len(), 2);
        let up = sc.update("late-submission").expect("update block parsed");
        assert_eq!(up.inserts().count(), 1);
        assert_eq!(up.retracts().count(), 1);
        assert_eq!(sc.source.tuples(RelSym::new("Papers")).count(), 2);
        let printed = sc.to_text();
        let again = Scenario::parse(&printed).expect("printed text parses");
        assert_eq!(sc, again, "parse(print(s)) == s\nprinted:\n{printed}");
        assert_eq!(printed, again.to_text(), "canonical text is a fixpoint");
    }

    #[test]
    fn labeled_nulls_resolve_by_first_occurrence_skipping_explicit_ids() {
        let src = r#"
scenario "nulls" {
  source { S/2; }
  target { T/2; }
  mapping { T(x:op, y:op) <- S(x, y); }
  instance {
    S(a, ?1);
    S(b, ?n);
    S(c, ?n);
    S(d, ?m);
  }
}
"#;
        let sc = Scenario::parse(src).expect("parses");
        let vals: Vec<Value> = sc
            .source
            .tuples(RelSym::new("S"))
            .map(|t| t.get(1))
            .collect();
        // ?1 explicit; ?n -> 0 (first free id), ?m -> 2 (1 is taken).
        assert!(vals.contains(&Value::null(1)));
        assert!(vals.contains(&Value::null(0)));
        assert!(vals.contains(&Value::null(2)));
        // Round trip: printed form uses numeric ids and re-parses equal.
        let again = Scenario::parse(&sc.to_text()).expect("round trip");
        assert_eq!(sc, again);
    }

    #[test]
    fn quoted_constants_round_trip() {
        let src = r#"
scenario "quoted" {
  source { S/1; }
  target { T/1; }
  mapping { T(x:cl) <- S(x); }
  instance { S('two words'); S(plain); S(42); }
}
"#;
        let sc = Scenario::parse(src).expect("parses");
        let again = Scenario::parse(&sc.to_text()).expect("round trip");
        assert_eq!(sc, again);
    }

    #[test]
    fn constraints_parse_and_round_trip() {
        let src = r#"
scenario "constrained" {
  source { S/2; }
  target { T/2; T2/2; }
  mapping { T(x:cl, y:op) <- S(x, y); }
  constraints {
    egd a = b <- T(x, a) & T(x, b);
    tgd T2(y:cl, x:cl) <- T(x, y);
  }
  instance { S(a, b); }
}
"#;
        let sc = Scenario::parse(src).expect("parses");
        assert_eq!(sc.constraints.len(), 2);
        let again = Scenario::parse(&sc.to_text()).expect("round trip");
        assert_eq!(sc, again);
    }

    #[test]
    fn unknown_relation_diagnostic() {
        let src = r#"
scenario "bad" {
  source { S/1; }
  target { T/1; }
  mapping { T(x:cl) <- Missing(x); }
}
"#;
        let err = Scenario::parse(src).unwrap_err();
        assert!(
            err.msg.contains("unknown relation `Missing`"),
            "got: {}",
            err.msg
        );
        assert!(err.msg.contains("source schema"), "got: {}", err.msg);
        let rendered = err.render(src);
        assert!(rendered.contains("^"), "caret missing: {rendered}");
    }

    #[test]
    fn arity_mismatch_diagnostic() {
        let src = r#"
scenario "bad" {
  source { S/2; }
  target { T/1; }
  mapping { T(x:cl) <- S(x); }
}
"#;
        let err = Scenario::parse(src).unwrap_err();
        assert!(
            err.msg
                .contains("arity mismatch: `S` is declared with arity 2 but used with 1"),
            "got: {}",
            err.msg
        );
    }

    #[test]
    fn unsafe_tgd_diagnostic() {
        let src = r#"
scenario "bad" {
  source { S/1; }
  target { T/1; }
  mapping { T(x:cl) <- !S(x); }
}
"#;
        let err = Scenario::parse(src).unwrap_err();
        assert!(
            err.msg
                .contains("unsafe tgd: variable `x` is not bound by a positive body atom"),
            "got: {}",
            err.msg
        );
    }

    #[test]
    fn duplicate_annotation_diagnostic() {
        let src = r#"
scenario "bad" {
  source { S/1; }
  target { T/1; }
  mapping { T(x:cl:op) <- S(x); }
}
"#;
        let err = Scenario::parse(src).unwrap_err();
        assert!(err.msg.contains("duplicate annotation"), "got: {}", err.msg);
    }

    #[test]
    fn error_spans_point_into_the_file() {
        let src = "scenario \"x\" {\n  source { S/1; }\n  target { T/1; }\n  mapping { T(x:cl) <- Nope(x); }\n}\n";
        let err = Scenario::parse(src).unwrap_err();
        let rendered = err.render(src);
        assert!(
            rendered.starts_with("error at 4:"),
            "span must land on the mapping line: {rendered}"
        );
    }

    #[test]
    fn update_blocks_validate_against_the_source_schema() {
        let base = |block: &str| {
            format!(
                "scenario \"u\" {{\n  source {{ S/2; }}\n  target {{ T/2; }}\n  \
                 mapping {{ T(x:cl, y:cl) <- S(x, y); }}\n  {block}\n}}\n"
            )
        };
        // Unknown relation.
        let err = Scenario::parse(&base("update \"u\" { insert Nope(a, b); }")).unwrap_err();
        assert!(
            err.msg.contains("unknown relation `Nope`"),
            "got: {}",
            err.msg
        );
        // Arity mismatch.
        let err = Scenario::parse(&base("update \"u\" { retract S(a); }")).unwrap_err();
        assert!(err.msg.contains("arity mismatch"), "got: {}", err.msg);
        // Nulls rejected.
        let err = Scenario::parse(&base("update \"u\" { insert S(a, ?0); }")).unwrap_err();
        assert!(err.msg.contains("must be ground"), "got: {}", err.msg);
        // Duplicate names rejected.
        let err = Scenario::parse(&base(
            "update \"u\" { insert S(a, b); }\n  update \"u\" { insert S(b, c); }",
        ))
        .unwrap_err();
        assert!(
            err.msg.contains("duplicate update name"),
            "got: {}",
            err.msg
        );
        // A bad op keyword is a parse error.
        let err = Scenario::parse(&base("update \"u\" { upsert S(a, b); }")).unwrap_err();
        assert!(
            err.msg.contains("expected `insert` or `retract`"),
            "got: {}",
            err.msg
        );
        // Happy path round-trips.
        let sc = Scenario::parse(&base(
            "update \"grow\" { insert S(a, b); }\n  update \"shrink\" { retract S(a, b); }",
        ))
        .unwrap();
        assert_eq!(sc.updates.len(), 2);
        let again = Scenario::parse(&sc.to_text()).expect("round trip");
        assert_eq!(sc, again);
    }

    #[test]
    fn generated_updates_ride_the_corpus() {
        for grade in Grade::ALL {
            let sc = gen(3, grade);
            assert!(!sc.updates.is_empty(), "every grade ships update batches");
            for u in &sc.updates {
                for (_, t) in u.update.inserts().chain(u.update.retracts()) {
                    assert!(t.is_ground(), "generated updates are ground");
                }
            }
        }
    }

    #[test]
    fn generator_is_deterministic_and_valid() {
        for grade in Grade::ALL {
            for seed in 0..10u64 {
                let a = gen_text(seed, grade);
                let b = gen_text(seed, grade);
                assert_eq!(a, b, "same (seed, grade) must be byte-identical");
                let sc = Scenario::parse(&a).expect("generated text must parse");
                assert_eq!(sc, gen(seed, grade), "parse(print(gen)) == gen");
            }
        }
    }

    #[test]
    fn grades_actually_grow() {
        let g0 = gen(7, Grade::new(0));
        let g3 = gen(7, Grade::new(3));
        assert!(g3.mapping.stds.len() > g0.mapping.stds.len());
        assert!(g3.queries.len() > g0.queries.len());
        assert!(g3.mapping.target.max_arity() > g0.mapping.target.max_arity());
    }
}
