//! Seeded, graded scenario generator.
//!
//! [`gen`]`(seed, grade)` deterministically produces a valid [`Scenario`]:
//! the same `(seed, grade)` pair yields byte-identical canonical text on
//! every run, on every thread count (the generator draws from the xoshiro
//! [`StdRng`] in a fixed order and never consults ambient state).
//!
//! The [`Grade`] dial controls scenario difficulty along the axes the
//! open/closed semantics care about:
//!
//! | grade | relations | max arity | body shapes | queries | constraints |
//! |-------|-----------|-----------|-------------|---------|-------------|
//! | 0 | copy + null-inventing | 2 | positive | ∃-positive, FD-universal | — |
//! | 1 | + join partner | 2 | + join | + anti-join | — |
//! | 2 | + negated guard | 2 | + `¬∃` bodies | + correlated §1 shape | — |
//! | 3 | + ternary, multi-head | 3 | + nested `¬∃¬∃` | + disjunction/negation | egd/tgd (probabilistic) |
//!
//! The annotation mix (probability a head position is closed) is drawn per
//! scenario from `{0.2, 0.5, 0.8}`; null-producing source rows are capped at
//! two so brute-force `Rep_A` enumeration stays feasible for the corpus
//! differential oracles.

use crate::ast::{NamedQuery, NamedUpdate, Scenario};
use dx_chase::{Egd, Mapping, Std, TargetAtom, TargetDep, Tgd};
use dx_logic::{Formula, Query, Term};
use dx_relation::{Ann, Annotation, Instance, RelSym, Schema, Tuple, Update, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scenario difficulty grade, clamped to `0..=3`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Grade(u8);

impl Grade {
    /// All grades, in increasing difficulty.
    pub const ALL: [Grade; 4] = [Grade(0), Grade(1), Grade(2), Grade(3)];

    /// Build a grade; levels above 3 clamp to 3.
    pub fn new(level: u8) -> Grade {
        Grade(level.min(3))
    }

    /// The grade level (0–3).
    pub fn level(self) -> u8 {
        self.0
    }
}

/// One random annotation at closed-probability `p_cl`.
fn ann(rng: &mut StdRng, p_cl: f64) -> Ann {
    if rng.gen_bool(p_cl) {
        Ann::Closed
    } else {
        Ann::Open
    }
}

fn annotation(rng: &mut StdRng, p_cl: f64, arity: usize) -> Annotation {
    Annotation::new((0..arity).map(|_| ann(rng, p_cl)).collect::<Vec<_>>())
}

fn v(name: &str) -> Term {
    Term::var(name)
}

/// Deterministically generate a valid scenario for `(seed, grade)`.
pub fn gen(seed: u64, grade: Grade) -> Scenario {
    let g = grade.level();
    let mut rng = StdRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(g)),
    );
    let p_cl = [0.2, 0.5, 0.8][rng.gen_range(0..3usize)];

    // Schemas grow with the grade.
    let mut source = Schema::new();
    source.add(RelSym::new("R"), 2);
    source.add(RelSym::new("U"), 1);
    if g >= 1 {
        source.add(RelSym::new("J"), 2);
    }
    if g >= 3 {
        source.add(RelSym::new("W"), 3);
    }
    let mut target = Schema::new();
    target.add(RelSym::new("TR"), 2);
    target.add(RelSym::new("TU"), 2);
    if g >= 1 {
        target.add(RelSym::new("TJ"), 2);
    }
    if g >= 2 {
        target.add(RelSym::new("TN"), 2);
    }
    if g >= 3 {
        target.add(RelSym::new("TW"), 3);
        target.add(RelSym::new("TM"), 1);
    }

    // STDs. `TU` invents a null per `U` row (existential z); the rest copy.
    let mut stds = Vec::new();
    stds.push(Std::new(
        vec![TargetAtom::new(
            RelSym::new("TR"),
            vec![v("x"), v("y")],
            annotation(&mut rng, p_cl, 2),
        )],
        Formula::Atom(RelSym::new("R"), vec![v("x"), v("y")]),
    ));
    stds.push(Std::new(
        vec![TargetAtom::new(
            RelSym::new("TU"),
            vec![v("x"), v("z")],
            annotation(&mut rng, p_cl, 2),
        )],
        Formula::Atom(RelSym::new("U"), vec![v("x")]),
    ));
    if g >= 1 {
        stds.push(Std::new(
            vec![TargetAtom::new(
                RelSym::new("TJ"),
                vec![v("x"), v("y")],
                annotation(&mut rng, p_cl, 2),
            )],
            Formula::And(vec![
                Formula::Atom(RelSym::new("R"), vec![v("x"), v("w")]),
                Formula::Atom(RelSym::new("J"), vec![v("w"), v("y")]),
            ]),
        ));
    }
    if g >= 2 {
        stds.push(Std::new(
            vec![TargetAtom::new(
                RelSym::new("TN"),
                vec![v("x"), v("y")],
                annotation(&mut rng, p_cl, 2),
            )],
            Formula::And(vec![
                Formula::Atom(RelSym::new("R"), vec![v("x"), v("y")]),
                Formula::Not(Box::new(Formula::Exists(
                    vec![Var::new("r")],
                    Box::new(Formula::Atom(RelSym::new("J"), vec![v("x"), v("r")])),
                ))),
            ]),
        ));
    }
    if g >= 3 {
        // Multi-atom head over the ternary relation…
        stds.push(Std::new(
            vec![
                TargetAtom::new(
                    RelSym::new("TW"),
                    vec![v("x"), v("y"), v("z")],
                    annotation(&mut rng, p_cl, 3),
                ),
                TargetAtom::new(
                    RelSym::new("TM"),
                    vec![v("x")],
                    annotation(&mut rng, p_cl, 1),
                ),
            ],
            Formula::Atom(RelSym::new("W"), vec![v("x"), v("y"), v("z")]),
        ));
        // …and a negation-depth-2 body (`¬∃ (J ∧ ¬∃ R)`).
        stds.push(Std::new(
            vec![TargetAtom::new(
                RelSym::new("TM"),
                vec![v("x")],
                annotation(&mut rng, p_cl, 1),
            )],
            Formula::And(vec![
                Formula::Atom(RelSym::new("R"), vec![v("x"), v("y")]),
                Formula::Not(Box::new(Formula::Exists(
                    vec![Var::new("r")],
                    Box::new(Formula::And(vec![
                        Formula::Atom(RelSym::new("J"), vec![v("y"), v("r")]),
                        Formula::Not(Box::new(Formula::Exists(
                            vec![Var::new("s")],
                            Box::new(Formula::Atom(RelSym::new("R"), vec![v("r"), v("s")])),
                        ))),
                    ])),
                ))),
            ]),
        ));
    }

    // Target constraints (grade 3 only, probabilistic): a functional
    // dependency on the null-inventing relation and/or a copying tgd into a
    // fresh closed relation. Both are weakly acyclic by construction.
    let mut constraints = Vec::new();
    if g >= 3 {
        if rng.gen_bool(0.5) {
            constraints.push(TargetDep::Egd(Egd {
                body: vec![
                    (RelSym::new("TU"), vec![v("x"), v("a")]),
                    (RelSym::new("TU"), vec![v("x"), v("b")]),
                ],
                eq: (v("a"), v("b")),
            }));
        }
        if rng.gen_bool(0.34) {
            target.add(RelSym::new("TS"), 2);
            constraints.push(TargetDep::Tgd(Tgd {
                body: vec![(RelSym::new("TR"), vec![v("x"), v("y")])],
                head: vec![TargetAtom::new(
                    RelSym::new("TS"),
                    vec![v("y"), v("x")],
                    Annotation::all_closed(2),
                )],
            }));
        }
    }

    // Ground source instance: small enough for exhaustive Rep_A oracles.
    // Every source relation is declared up front (possibly empty) so the
    // generated scenario equals its parse(print(·)) round-trip, which
    // declares the full source schema.
    let mut instance = Instance::new();
    for (rel, arity) in source.iter() {
        instance.declare(rel, arity);
    }
    let n_consts = 2 + usize::from(g >= 2);
    let c = |i: usize| format!("c{i}");
    for _ in 0..rng.gen_range(1..(3 + usize::from(g))) {
        let a = c(rng.gen_range(0..n_consts));
        let b = c(rng.gen_range(0..n_consts));
        instance.insert_names("R", &[&a, &b]);
    }
    for _ in 0..rng.gen_range(0..3usize) {
        instance.insert_names("U", &[&c(rng.gen_range(0..n_consts))]);
    }
    if g >= 1 {
        for _ in 0..rng.gen_range(1..3usize) {
            let a = c(rng.gen_range(0..n_consts));
            let b = c(rng.gen_range(0..n_consts));
            instance.insert_names("J", &[&a, &b]);
        }
    }
    if g >= 3 {
        for _ in 0..rng.gen_range(1..3usize) {
            let a = c(rng.gen_range(0..n_consts));
            let b = c(rng.gen_range(0..n_consts));
            let d = c(rng.gen_range(0..n_consts));
            instance.insert_names("W", &[&a, &b, &d]);
        }
    }

    // Query battery, growing with the grade.
    let mut queries = vec![
        NamedQuery {
            name: "q_pos".into(),
            query: Query::new(
                vec![Var::new("x")],
                Formula::Exists(
                    vec![Var::new("y")],
                    Box::new(Formula::Atom(RelSym::new("TR"), vec![v("x"), v("y")])),
                ),
            ),
        },
        NamedQuery {
            name: "q_fd".into(),
            query: Query::boolean(Formula::Forall(
                vec![Var::new("x"), Var::new("a"), Var::new("b")],
                Box::new(Formula::implies(
                    Formula::And(vec![
                        Formula::Atom(RelSym::new("TU"), vec![v("x"), v("a")]),
                        Formula::Atom(RelSym::new("TU"), vec![v("x"), v("b")]),
                    ]),
                    Formula::Eq(v("a"), v("b")),
                )),
            )),
        },
    ];
    if g >= 1 {
        queries.push(NamedQuery {
            name: "q_anti".into(),
            query: Query::new(
                vec![Var::new("x")],
                Formula::And(vec![
                    Formula::Exists(
                        vec![Var::new("y")],
                        Box::new(Formula::Atom(RelSym::new("TR"), vec![v("x"), v("y")])),
                    ),
                    Formula::Not(Box::new(Formula::Exists(
                        vec![Var::new("w")],
                        Box::new(Formula::Atom(RelSym::new("TU"), vec![v("x"), v("w")])),
                    ))),
                ]),
            ),
        });
    }
    if g >= 2 {
        queries.push(NamedQuery {
            name: "q_one".into(),
            query: Query::new(
                vec![Var::new("p")],
                Formula::Exists(
                    vec![Var::new("a")],
                    Box::new(Formula::And(vec![
                        Formula::Atom(RelSym::new("TU"), vec![v("p"), v("a")]),
                        Formula::Forall(
                            vec![Var::new("b")],
                            Box::new(Formula::implies(
                                Formula::Atom(RelSym::new("TU"), vec![v("p"), v("b")]),
                                Formula::Eq(v("a"), v("b")),
                            )),
                        ),
                    ])),
                ),
            ),
        });
    }
    if g >= 3 {
        queries.push(NamedQuery {
            name: "q_mix".into(),
            query: Query::boolean(Formula::Exists(
                vec![Var::new("x"), Var::new("y")],
                Box::new(Formula::And(vec![
                    Formula::Atom(RelSym::new("TR"), vec![v("x"), v("y")]),
                    Formula::Or(vec![
                        Formula::Atom(RelSym::new("TJ"), vec![v("y"), v("x")]),
                        Formula::Not(Box::new(Formula::Atom(
                            RelSym::new("TU"),
                            vec![v("y"), v("y")],
                        ))),
                    ]),
                ])),
            )),
        });
    }

    // Update batches: a growth batch (inserts only) and a churn batch
    // (retract + insert, possibly of absent/present tuples — set semantics
    // make those no-ops, which the streaming layers must also handle).
    // Targets are drawn from the same constant palette as the instance, not
    // read back from it, so the emitted text is independent of ambient
    // symbol-interning order.
    let mut updates = Vec::new();
    {
        let mut grow = Update::new();
        for _ in 0..rng.gen_range(1..3usize) {
            let a = c(rng.gen_range(0..n_consts));
            let b = c(rng.gen_range(0..n_consts));
            grow.insert(RelSym::new("R"), Tuple::from_names(&[&a, &b]));
        }
        if rng.gen_bool(0.5) {
            grow.insert(
                RelSym::new("U"),
                Tuple::from_names(&[&c(rng.gen_range(0..n_consts))]),
            );
        }
        updates.push(NamedUpdate {
            name: "u_grow".into(),
            update: grow,
        });

        let mut churn = Update::new();
        let a = c(rng.gen_range(0..n_consts));
        let b = c(rng.gen_range(0..n_consts));
        churn.retract(RelSym::new("R"), Tuple::from_names(&[&a, &b]));
        let a = c(rng.gen_range(0..n_consts));
        let b = c(rng.gen_range(0..n_consts));
        churn.insert(RelSym::new("R"), Tuple::from_names(&[&a, &b]));
        if rng.gen_bool(0.5) {
            churn.retract(
                RelSym::new("U"),
                Tuple::from_names(&[&c(rng.gen_range(0..n_consts))]),
            );
        }
        if g >= 1 {
            let a = c(rng.gen_range(0..n_consts));
            let b = c(rng.gen_range(0..n_consts));
            churn.retract(RelSym::new("J"), Tuple::from_names(&[&a, &b]));
        }
        updates.push(NamedUpdate {
            name: "u_churn".into(),
            update: churn,
        });
    }

    Scenario {
        name: format!("gen-{seed}-g{g}"),
        mapping: Mapping::new(source, target, stds),
        constraints,
        source: instance,
        queries,
        updates,
    }
}

/// [`gen`] rendered to canonical `.dx` text.
pub fn gen_text(seed: u64, grade: Grade) -> String {
    gen(seed, grade).to_text()
}
