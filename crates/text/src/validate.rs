//! Typed validation of a raw scenario against its declared schemas.
//!
//! Every check reports a [`TextError`] anchored at the span of the offending
//! declaration, rule, fact, or query — this is where "unknown relation",
//! "arity mismatch", and "unsafe tgd" diagnostics come from.

use crate::ast::{NamedQuery, NamedUpdate, Scenario, Span, TextError};
use crate::parser::{RawScenario, RawValue};
use dx_chase::{is_weakly_acyclic, Mapping, Std, TargetAtom, TargetDep};
use dx_logic::{Formula, Query, Term};
use dx_relation::{Annotation, Instance, RelSym, Schema, Tuple, Update, Value, Var};
use std::collections::{BTreeMap, BTreeSet};

/// Variables guaranteed a binding by a *positive* atom whenever the formula
/// holds — the safety analysis for tgd bodies and query heads. Disjunction
/// takes the intersection of its branches, negation binds nothing, and
/// quantifiers shadow their bound variables.
fn positively_bound(f: &Formula) -> BTreeSet<Var> {
    match f {
        Formula::Atom(_, args) => args.iter().flat_map(|t| t.vars()).collect(),
        Formula::And(fs) => fs.iter().flat_map(positively_bound).collect(),
        Formula::Or(fs) => {
            let mut it = fs.iter().map(positively_bound);
            let first = it.next().unwrap_or_default();
            it.fold(first, |acc, s| acc.intersection(&s).copied().collect())
        }
        Formula::Exists(vs, b) | Formula::Forall(vs, b) => {
            let mut inner = positively_bound(b);
            for v in vs {
                inner.remove(v);
            }
            inner
        }
        Formula::True | Formula::False | Formula::Eq(..) | Formula::Not(..) => BTreeSet::new(),
    }
}

fn build_schema(decls: &[(String, usize, Span)], block: &str) -> Result<Schema, TextError> {
    let mut schema = Schema::new();
    for (name, arity, span) in decls {
        let rel = RelSym::new(name);
        if schema.contains(rel) {
            return Err(TextError::new(
                format!("duplicate declaration of `{name}` in `{block}`"),
                *span,
            ));
        }
        schema.add(rel, *arity);
    }
    Ok(schema)
}

fn check_rels(
    formula: &Formula,
    schema: &Schema,
    schema_name: &str,
    span: Span,
) -> Result<(), TextError> {
    for (rel, arity) in formula.relations() {
        match schema.arity(rel) {
            None => {
                return Err(TextError::new(
                    format!("unknown relation `{rel}` (not declared in the {schema_name} schema)"),
                    span,
                ));
            }
            Some(declared) if declared != arity => {
                return Err(TextError::new(
                    format!(
                        "arity mismatch: `{rel}` is declared with arity {declared} \
                         but used with {arity} arguments"
                    ),
                    span,
                ));
            }
            Some(_) => {}
        }
    }
    Ok(())
}

/// Validate a raw scenario into a typed [`Scenario`].
pub fn validate(raw: &RawScenario) -> Result<Scenario, TextError> {
    let source_schema = build_schema(&raw.source_decls, "source")?;
    let target_schema = build_schema(&raw.target_decls, "target")?;
    for (name, _, span) in &raw.target_decls {
        if source_schema.contains(RelSym::new(name)) {
            return Err(TextError::new(
                format!("relation `{name}` is declared in both source and target"),
                *span,
            ));
        }
    }
    if raw.rules.is_empty() {
        return Err(TextError::new(
            "scenario has no `mapping` block (at least one STD is required)",
            raw.header,
        ));
    }

    // STDs: heads over the target schema, bodies over the source schema,
    // body free variables safely bound.
    let mut stds = Vec::with_capacity(raw.rules.len());
    for (rule, span) in &raw.rules {
        let mut head = Vec::with_capacity(rule.head.len());
        for atom in &rule.head {
            match target_schema.arity(atom.rel) {
                None => {
                    return Err(TextError::new(
                        format!(
                            "unknown relation `{}` (not declared in the target schema)",
                            atom.rel
                        ),
                        *span,
                    ));
                }
                Some(declared) if declared != atom.args.len() => {
                    return Err(TextError::new(
                        format!(
                            "arity mismatch: `{}` is declared with arity {declared} \
                             but used with {} arguments",
                            atom.rel,
                            atom.args.len()
                        ),
                        *span,
                    ));
                }
                Some(_) => {}
            }
            if atom.args.iter().any(|t| t.has_funcs()) {
                return Err(TextError::new(
                    "function terms are not allowed in scenario rule heads",
                    *span,
                ));
            }
            head.push(TargetAtom::new(
                atom.rel,
                atom.args.clone(),
                Annotation::new(atom.anns.clone()),
            ));
        }
        check_rels(&rule.body, &source_schema, "source", *span)?;
        let bound = positively_bound(&rule.body);
        for v in rule.body.free_vars() {
            if !bound.contains(&v) {
                return Err(TextError::new(
                    format!("unsafe tgd: variable `{v}` is not bound by a positive body atom"),
                    *span,
                ));
            }
        }
        stds.push(Std::new(head, rule.body.clone()));
    }

    // Constraints: entirely over the target schema; egd equalities over
    // body-bound variables; the whole set weakly acyclic so the chase
    // terminates.
    let check_atoms = |atoms: &[(RelSym, Vec<Term>)], span: Span| -> Result<(), TextError> {
        for (rel, args) in atoms {
            match target_schema.arity(*rel) {
                None => {
                    return Err(TextError::new(
                        format!("unknown relation `{rel}` (not declared in the target schema)"),
                        span,
                    ));
                }
                Some(declared) if declared != args.len() => {
                    return Err(TextError::new(
                        format!(
                            "arity mismatch: `{rel}` is declared with arity {declared} \
                             but used with {} arguments",
                            args.len()
                        ),
                        span,
                    ));
                }
                Some(_) => {}
            }
        }
        Ok(())
    };
    let mut constraints = Vec::with_capacity(raw.constraints.len());
    for (dep, span) in &raw.constraints {
        match dep {
            TargetDep::Tgd(tgd) => {
                check_atoms(&tgd.body, *span)?;
                for atom in &tgd.head {
                    check_atoms(&[(atom.rel, atom.args.clone())], *span)?;
                }
            }
            TargetDep::Egd(egd) => {
                check_atoms(&egd.body, *span)?;
                let bound: BTreeSet<Var> = egd
                    .body
                    .iter()
                    .flat_map(|(_, args)| args.iter().flat_map(|t| t.vars()))
                    .collect();
                for t in [&egd.eq.0, &egd.eq.1] {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            return Err(TextError::new(
                                format!(
                                    "unsafe egd: variable `{v}` is not bound by a positive \
                                     body atom"
                                ),
                                *span,
                            ));
                        }
                    }
                }
            }
        }
        constraints.push(dep.clone());
    }
    if !constraints.is_empty() && !is_weakly_acyclic(&constraints) {
        let span = raw
            .constraints
            .first()
            .map(|(_, s)| *s)
            .unwrap_or(raw.header);
        return Err(TextError::new(
            "constraints are not weakly acyclic (the chase may not terminate)",
            span,
        ));
    }

    // Source instance: facts over the source schema; named nulls numbered by
    // first occurrence, skipping ids claimed by explicit `?N` values.
    let mut source = Instance::new();
    for (rel, arity) in source_schema.iter() {
        source.declare(rel, arity);
    }
    let used_ids: BTreeSet<u32> = raw
        .facts
        .iter()
        .flat_map(|(_, vs, _)| vs.iter())
        .filter_map(|v| match v {
            RawValue::NullNum(n) => Some(*n),
            _ => None,
        })
        .collect();
    let mut labels: BTreeMap<&str, u32> = BTreeMap::new();
    let mut next_id = 0u32;
    for (rel_name, values, span) in &raw.facts {
        let rel = RelSym::new(rel_name);
        match source_schema.arity(rel) {
            None => {
                return Err(TextError::new(
                    format!("unknown relation `{rel_name}` (not declared in the source schema)"),
                    *span,
                ));
            }
            Some(declared) if declared != values.len() => {
                return Err(TextError::new(
                    format!(
                        "arity mismatch: `{rel_name}` is declared with arity {declared} \
                         but used with {} arguments",
                        values.len()
                    ),
                    *span,
                ));
            }
            Some(_) => {}
        }
        let tuple: Vec<Value> = values
            .iter()
            .map(|v| match v {
                RawValue::Const(name) => Value::c(name),
                RawValue::NullNum(n) => Value::null(*n),
                RawValue::NullLabel(label) => {
                    let id = *labels.entry(label.as_str()).or_insert_with(|| {
                        while used_ids.contains(&next_id) {
                            next_id += 1;
                        }
                        let id = next_id;
                        next_id += 1;
                        id
                    });
                    Value::null(id)
                }
            })
            .collect();
        source.insert(rel, dx_relation::Tuple::new(tuple));
    }

    // Queries: over the target schema, head variables positively bound, no
    // free variables outside the head.
    let mut queries: Vec<NamedQuery> = Vec::with_capacity(raw.queries.len());
    for (name, head, formula, span) in &raw.queries {
        if queries.iter().any(|q| &q.name == name) {
            return Err(TextError::new(
                format!("duplicate query name `{name}`"),
                *span,
            ));
        }
        let mut head_vars = Vec::with_capacity(head.len());
        for v in head {
            let var = Var::new(v);
            if head_vars.contains(&var) {
                return Err(TextError::new(
                    format!("duplicate head variable `{v}` in query `{name}`"),
                    *span,
                ));
            }
            head_vars.push(var);
        }
        check_rels(formula, &target_schema, "target", *span)?;
        let free = formula.free_vars();
        for v in &free {
            if !head_vars.contains(v) {
                return Err(TextError::new(
                    format!("free variable `{v}` of query `{name}` is not in the query head"),
                    *span,
                ));
            }
        }
        let bound = positively_bound(formula);
        for v in &head_vars {
            if !free.contains(v) || !bound.contains(v) {
                return Err(TextError::new(
                    format!(
                        "unsafe query: head variable `{v}` of `{name}` is not bound by a \
                         positive atom of the body"
                    ),
                    *span,
                ));
            }
        }
        queries.push(NamedQuery {
            name: name.clone(),
            query: Query::new(head_vars, formula.clone()),
        });
    }

    // Update batches: ground facts over the source schema; the incremental
    // pipeline ([`dx_engine::IncrementalExchange`]) requires ground sources,
    // so labeled nulls are rejected here rather than at run time.
    let mut updates: Vec<NamedUpdate> = Vec::with_capacity(raw.updates.len());
    for ru in &raw.updates {
        if updates.iter().any(|u| u.name == ru.name) {
            return Err(TextError::new(
                format!("duplicate update name `{}`", ru.name),
                ru.span,
            ));
        }
        let mut up = Update::new();
        for (is_insert, rel_name, values, span) in &ru.ops {
            let rel = RelSym::new(rel_name);
            match source_schema.arity(rel) {
                None => {
                    return Err(TextError::new(
                        format!(
                            "unknown relation `{rel_name}` (not declared in the source schema)"
                        ),
                        *span,
                    ));
                }
                Some(declared) if declared != values.len() => {
                    return Err(TextError::new(
                        format!(
                            "arity mismatch: `{rel_name}` is declared with arity {declared} \
                             but used with {} arguments",
                            values.len()
                        ),
                        *span,
                    ));
                }
                Some(_) => {}
            }
            let mut tuple = Vec::with_capacity(values.len());
            for v in values {
                match v {
                    RawValue::Const(name) => tuple.push(Value::c(name)),
                    RawValue::NullNum(_) | RawValue::NullLabel(_) => {
                        return Err(TextError::new(
                            "update batches must be ground (labeled nulls are not allowed)",
                            *span,
                        ));
                    }
                }
            }
            let t = Tuple::new(tuple);
            if *is_insert {
                up.insert(rel, t);
            } else {
                up.retract(rel, t);
            }
        }
        updates.push(NamedUpdate {
            name: ru.name.clone(),
            update: up,
        });
    }

    Ok(Scenario {
        name: raw.name.clone(),
        mapping: Mapping::new(source_schema, target_schema, stds),
        constraints,
        source,
        queries,
        updates,
    })
}
