//! Canonical pretty-printer for scenarios.
//!
//! The output is deterministic *text*: relation declarations are sorted by
//! name and facts by their rendered form (interned symbol ids depend on
//! process-global intern order, so sorting by id would not be stable across
//! processes). `parse(print(s))` reconstructs `s` exactly — the round-trip
//! property the corpus harness checks on every generated scenario.

use crate::ast::Scenario;
use dx_chase::TargetDep;
use dx_relation::Value;
use std::fmt::Write;

/// `true` if `name` prints unquoted: an identifier (`[A-Za-z_][A-Za-z0-9_]*`)
/// or an integer literal. Anything else is quoted `'…'`.
fn bare(name: &str) -> bool {
    let ident = name
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    let number = {
        let digits = name.strip_prefix('-').unwrap_or(name);
        !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit())
    };
    ident || number
}

fn render_value(v: Value) -> String {
    match v {
        Value::Const(c) => {
            let name = c.name();
            if bare(&name) {
                name
            } else {
                format!("'{name}'")
            }
        }
        Value::Null(n) => format!("?{}", n.0),
    }
}

/// Pretty-print a scenario to canonical `.dx` text.
pub fn print(sc: &Scenario) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scenario \"{}\" {{", sc.name);

    for (block, schema) in [
        ("source", &sc.mapping.source),
        ("target", &sc.mapping.target),
    ] {
        let _ = writeln!(out, "  {block} {{");
        let mut decls: Vec<(String, usize)> =
            schema.iter().map(|(rel, ar)| (rel.name(), ar)).collect();
        decls.sort();
        for (name, arity) in decls {
            let _ = writeln!(out, "    {name}/{arity};");
        }
        let _ = writeln!(out, "  }}");
    }

    let _ = writeln!(out, "  mapping {{");
    for std in &sc.mapping.stds {
        let _ = writeln!(out, "    {std};");
    }
    let _ = writeln!(out, "  }}");

    if !sc.constraints.is_empty() {
        let _ = writeln!(out, "  constraints {{");
        for dep in &sc.constraints {
            let kw = match dep {
                TargetDep::Tgd(_) => "tgd",
                TargetDep::Egd(_) => "egd",
            };
            let _ = writeln!(out, "    {kw} {dep};");
        }
        let _ = writeln!(out, "  }}");
    }

    if !sc.source.is_empty() {
        let _ = writeln!(out, "  instance {{");
        let mut facts: Vec<String> = Vec::new();
        for (rel, relation) in sc.source.relations() {
            let name = rel.name();
            for t in relation.iter() {
                let vals: Vec<String> = t.iter().map(render_value).collect();
                facts.push(format!("{name}({})", vals.join(", ")));
            }
        }
        facts.sort();
        for fact in facts {
            let _ = writeln!(out, "    {fact};");
        }
        let _ = writeln!(out, "  }}");
    }

    for q in &sc.queries {
        let head: Vec<String> = q.query.head.iter().map(|v| v.name()).collect();
        let _ = writeln!(
            out,
            "  query {}({}) <- {};",
            q.name,
            head.join(", "),
            q.query.formula
        );
    }

    for u in &sc.updates {
        let _ = writeln!(out, "  update \"{}\" {{", u.name);
        let mut ops: Vec<String> = Vec::new();
        for (kw, it) in [
            ("insert", u.update.inserts().collect::<Vec<_>>()),
            ("retract", u.update.retracts().collect::<Vec<_>>()),
        ] {
            for (rel, t) in it {
                let vals: Vec<String> = t.iter().map(render_value).collect();
                ops.push(format!("{kw} {}({})", rel.name(), vals.join(", ")));
            }
        }
        ops.sort();
        for op in ops {
            let _ = writeln!(out, "    {op};");
        }
        let _ = writeln!(out, "  }}");
    }

    let _ = writeln!(out, "}}");
    out
}
