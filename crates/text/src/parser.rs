//! Hand-rolled recursive-descent parser for the `.dx` scenario format.
//!
//! The grammar (see DESIGN.md for the full EBNF):
//!
//! ```text
//! scenario "name" {
//!   source  { R/2; S/1; }                 # relation/arity declarations
//!   target  { T/2; }
//!   mapping { T(x:cl, z:op) <- R(x, y); } # st-tgds, dx-logic rule syntax
//!   constraints { egd z1 = z2 <- T(x, z1) & T(x, z2); tgd U(x) <- T(x, y); }
//!   instance { R(a, ?0); R('two words', ?n1); }
//!   query q(x) <- exists z. T(x, z);
//!   update "grow" { insert R(b, c); retract S(d); }
//! }
//! ```
//!
//! This module produces a *raw* scenario: every construct is syntactically
//! parsed (rule/constraint/query bodies are delegated to the `dx-logic`
//! parser) but nothing is checked against the schemas yet. Each raw item
//! carries the byte [`Span`] it came from so [`crate::validate`] can report
//! typed errors at the exact offending position.

use crate::ast::{Span, TextError};
use dx_chase::{Egd, TargetDep, Tgd};
use dx_logic::{parse_formula, parse_rule, ParsedRule};

/// A source-instance value before null resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RawValue {
    /// A constant, by name (quoted or bare).
    Const(String),
    /// An explicitly numbered labeled null `?3`.
    NullNum(u32),
    /// A named labeled null `?x`; numbered by first occurrence during
    /// validation, skipping explicitly used ids.
    NullLabel(String),
}

/// A raw `update` block: a named batch of `insert`/`retract` fact
/// statements, unchecked against the source schema.
#[derive(Clone, Debug)]
pub struct RawUpdate {
    /// Batch name from the `update "…"` header.
    pub name: String,
    /// Operations `(is_insert, relation, values, span)` in order.
    pub ops: Vec<(bool, String, Vec<RawValue>, Span)>,
    /// Span of the `update "…"` header.
    pub span: Span,
}

/// A syntactically parsed, not yet validated scenario.
#[derive(Clone, Debug)]
pub struct RawScenario {
    /// Scenario name from the header.
    pub name: String,
    /// Span of the `scenario` header (anchor for whole-file errors).
    pub header: Span,
    /// Source relation declarations `(name, arity, span)`.
    pub source_decls: Vec<(String, usize, Span)>,
    /// Target relation declarations `(name, arity, span)`.
    pub target_decls: Vec<(String, usize, Span)>,
    /// STD rules in declaration order.
    pub rules: Vec<(ParsedRule, Span)>,
    /// Target constraints in declaration order.
    pub constraints: Vec<(TargetDep, Span)>,
    /// Source facts `(relation, values, span)` in declaration order.
    pub facts: Vec<(String, Vec<RawValue>, Span)>,
    /// Queries `(name, head vars, body text span + formula)` in order.
    pub queries: Vec<(String, Vec<String>, dx_logic::Formula, Span)>,
    /// Update batches in declaration order.
    pub updates: Vec<RawUpdate>,
}

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> TextError {
        TextError::new(msg, Span::point(self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else if b == b'#' {
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), TextError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    /// Next char is `b` (after whitespace)? Consume it and return true.
    fn eat_opt(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<(String, Span), TextError> {
        self.skip_ws();
        let start = self.pos;
        let first = self
            .bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| self.err("expected identifier, found end of input"))?;
        if !(first.is_ascii_alphabetic() || first == b'_') {
            return Err(self.err(format!("expected identifier, found `{}`", first as char)));
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.pos += 1;
        }
        Ok((
            self.src[start..self.pos].to_string(),
            Span::new(start, self.pos),
        ))
    }

    fn number(&mut self) -> Result<(u64, Span), TextError> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        let text = &self.src[start..self.pos];
        let n = text
            .parse::<u64>()
            .map_err(|_| TextError::new("number out of range", Span::new(start, self.pos)))?;
        Ok((n, Span::new(start, self.pos)))
    }

    /// A `"…"` string literal (no escapes).
    fn string_lit(&mut self) -> Result<(String, Span), TextError> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected a `\"…\"` string"));
        }
        self.pos += 1;
        let content_start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = self.src[content_start..self.pos].to_string();
                self.pos += 1;
                return Ok((s, Span::new(start, self.pos)));
            }
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        Err(TextError::new(
            "unterminated string literal",
            Span::new(start, self.pos),
        ))
    }

    /// Slice from the current position to the next top-level `;`, skipping
    /// `'…'` quotes and `#` comments. Consumes the `;`. Errors if `{`, `}`,
    /// or end of input appears first (a statement is missing its `;`).
    fn statement_slice(&mut self) -> Result<(&'a str, Span), TextError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b';' => {
                    let span = Span::new(start, self.pos);
                    let text = &self.src[start..self.pos];
                    self.pos += 1;
                    return Ok((text, span));
                }
                b'\'' => {
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&c| c != b'\'' && c != b'\n')
                    {
                        self.pos += 1;
                    }
                    if self.bytes.get(self.pos) == Some(&b'\'') {
                        self.pos += 1;
                    }
                }
                b'#' => {
                    while self.bytes.get(self.pos).is_some_and(|&c| c != b'\n') {
                        self.pos += 1;
                    }
                }
                b'{' | b'}' => {
                    return Err(self.err("expected `;` to end the statement"));
                }
                _ => self.pos += 1,
            }
        }
        Err(self.err("expected `;` to end the statement, found end of input"))
    }
}

/// Rebase a `dx-logic` parse error from a statement slice to file offsets.
fn rebase(e: dx_logic::ParseError, slice_start: usize) -> TextError {
    TextError::new(e.msg, Span::point(slice_start + e.pos))
}

/// Parse a `.dx` file into a [`RawScenario`]. Purely syntactic: schema
/// conformance is checked later by [`crate::validate::validate`].
pub fn parse_scenario(src: &str) -> Result<RawScenario, TextError> {
    let mut c = Cursor::new(src);
    c.skip_ws();
    let header_start = c.pos;
    let (kw, _) = c.ident()?;
    if kw != "scenario" {
        return Err(TextError::new(
            format!("expected `scenario`, found `{kw}`"),
            Span::new(header_start, c.pos),
        ));
    }
    let (name, _) = c.string_lit()?;
    let header = Span::new(header_start, c.pos);
    c.eat(b'{')?;

    let mut raw = RawScenario {
        name,
        header,
        source_decls: Vec::new(),
        target_decls: Vec::new(),
        rules: Vec::new(),
        constraints: Vec::new(),
        facts: Vec::new(),
        queries: Vec::new(),
        updates: Vec::new(),
    };
    let mut seen_blocks: Vec<String> = Vec::new();

    loop {
        match c.peek() {
            Some(b'}') => {
                c.pos += 1;
                break;
            }
            None => return Err(c.err("expected `}` to close the scenario")),
            _ => {}
        }
        let (kw, kw_span) = c.ident()?;
        match kw.as_str() {
            "source" | "target" | "mapping" | "constraints" | "instance" => {
                if seen_blocks.iter().any(|b| b == &kw) {
                    return Err(TextError::new(format!("duplicate `{kw}` block"), kw_span));
                }
                seen_blocks.push(kw.clone());
                c.eat(b'{')?;
                match kw.as_str() {
                    "source" => parse_decl_block(&mut c, &mut raw.source_decls)?,
                    "target" => parse_decl_block(&mut c, &mut raw.target_decls)?,
                    "mapping" => parse_rule_block(&mut c, &mut raw.rules)?,
                    "constraints" => parse_constraint_block(&mut c, &mut raw.constraints)?,
                    "instance" => parse_fact_block(&mut c, &mut raw.facts)?,
                    _ => unreachable!(),
                }
            }
            "query" => {
                parse_query(&mut c, &mut raw.queries)?;
            }
            "update" => {
                parse_update(&mut c, kw_span, &mut raw.updates)?;
            }
            other => {
                return Err(TextError::new(
                    format!(
                        "unknown block `{other}` (expected `source`, `target`, `mapping`, \
                         `constraints`, `instance`, `query`, or `update`)"
                    ),
                    kw_span,
                ));
            }
        }
    }
    c.skip_ws();
    if c.pos < c.bytes.len() {
        return Err(c.err("unexpected trailing input after the scenario"));
    }
    Ok(raw)
}

fn parse_decl_block(
    c: &mut Cursor<'_>,
    out: &mut Vec<(String, usize, Span)>,
) -> Result<(), TextError> {
    loop {
        if c.eat_opt(b'}') {
            return Ok(());
        }
        let (name, name_span) = c.ident()?;
        c.eat(b'/')?;
        let (arity, arity_span) = c.number()?;
        c.eat(b';')?;
        out.push((
            name,
            arity as usize,
            Span::new(name_span.start, arity_span.end),
        ));
    }
}

fn parse_rule_block(
    c: &mut Cursor<'_>,
    out: &mut Vec<(ParsedRule, Span)>,
) -> Result<(), TextError> {
    loop {
        if c.eat_opt(b'}') {
            return Ok(());
        }
        let (text, span) = c.statement_slice()?;
        let rule = parse_rule(text).map_err(|e| rebase(e, span.start))?;
        out.push((rule, span));
    }
}

fn parse_constraint_block(
    c: &mut Cursor<'_>,
    out: &mut Vec<(TargetDep, Span)>,
) -> Result<(), TextError> {
    loop {
        if c.eat_opt(b'}') {
            return Ok(());
        }
        let (kw, kw_span) = c.ident()?;
        let (text, span) = c.statement_slice()?;
        let dep = match kw.as_str() {
            "tgd" => TargetDep::Tgd(Tgd::parse(text).map_err(|e| rebase(e, span.start))?),
            "egd" => TargetDep::Egd(Egd::parse(text).map_err(|e| rebase(e, span.start))?),
            other => {
                return Err(TextError::new(
                    format!("expected `tgd` or `egd`, found `{other}`"),
                    kw_span,
                ));
            }
        };
        out.push((dep, Span::new(kw_span.start, span.end)));
    }
}

fn parse_fact_block(
    c: &mut Cursor<'_>,
    out: &mut Vec<(String, Vec<RawValue>, Span)>,
) -> Result<(), TextError> {
    loop {
        if c.eat_opt(b'}') {
            return Ok(());
        }
        out.push(parse_fact(c)?);
    }
}

/// One `R(v, …);` fact statement (shared by `instance` and `update` blocks).
fn parse_fact(c: &mut Cursor<'_>) -> Result<(String, Vec<RawValue>, Span), TextError> {
    let (rel, rel_span) = c.ident()?;
    c.eat(b'(')?;
    let mut values = Vec::new();
    if !c.eat_opt(b')') {
        loop {
            values.push(parse_value(c)?);
            if c.eat_opt(b')') {
                break;
            }
            c.eat(b',')?;
        }
    }
    let end = c.pos;
    c.eat(b';')?;
    Ok((rel, values, Span::new(rel_span.start, end)))
}

fn parse_update(
    c: &mut Cursor<'_>,
    kw_span: Span,
    out: &mut Vec<RawUpdate>,
) -> Result<(), TextError> {
    let (name, name_span) = c.string_lit()?;
    c.eat(b'{')?;
    let mut ops = Vec::new();
    loop {
        if c.eat_opt(b'}') {
            break;
        }
        let (op, op_span) = c.ident()?;
        let is_insert = match op.as_str() {
            "insert" => true,
            "retract" => false,
            other => {
                return Err(TextError::new(
                    format!("expected `insert` or `retract`, found `{other}`"),
                    op_span,
                ));
            }
        };
        let (rel, values, span) = parse_fact(c)?;
        ops.push((is_insert, rel, values, span));
    }
    out.push(RawUpdate {
        name,
        ops,
        span: Span::new(kw_span.start, name_span.end),
    });
    Ok(())
}

fn parse_value(c: &mut Cursor<'_>) -> Result<RawValue, TextError> {
    match c.peek() {
        Some(b'?') => {
            c.pos += 1;
            if c.bytes.get(c.pos).is_some_and(|b| b.is_ascii_digit()) {
                let (n, span) = c.number()?;
                let n =
                    u32::try_from(n).map_err(|_| TextError::new("null id out of range", span))?;
                Ok(RawValue::NullNum(n))
            } else {
                let (label, _) = c.ident()?;
                Ok(RawValue::NullLabel(label))
            }
        }
        Some(b'\'') => {
            let start = c.pos;
            c.pos += 1;
            let content_start = c.pos;
            while c
                .bytes
                .get(c.pos)
                .is_some_and(|&b| b != b'\'' && b != b'\n')
            {
                c.pos += 1;
            }
            if c.bytes.get(c.pos) != Some(&b'\'') {
                return Err(TextError::new(
                    "unterminated `'…'` constant",
                    Span::new(start, c.pos),
                ));
            }
            let s = c.src[content_start..c.pos].to_string();
            c.pos += 1;
            Ok(RawValue::Const(s))
        }
        Some(b) if b.is_ascii_digit() || b == b'-' => {
            let start = c.pos;
            if b == b'-' {
                c.pos += 1;
            }
            while c.bytes.get(c.pos).is_some_and(|b| b.is_ascii_digit()) {
                c.pos += 1;
            }
            if c.pos == start + usize::from(b == b'-') {
                return Err(c.err("expected a value"));
            }
            Ok(RawValue::Const(c.src[start..c.pos].to_string()))
        }
        Some(b) if b.is_ascii_alphabetic() || b == b'_' => {
            let (name, _) = c.ident()?;
            Ok(RawValue::Const(name))
        }
        _ => Err(c.err("expected a value (constant, number, `'…'`, or `?null`)")),
    }
}

fn parse_query(
    c: &mut Cursor<'_>,
    out: &mut Vec<(String, Vec<String>, dx_logic::Formula, Span)>,
) -> Result<(), TextError> {
    let (name, name_span) = c.ident()?;
    c.eat(b'(')?;
    let mut head = Vec::new();
    if !c.eat_opt(b')') {
        loop {
            let (v, _) = c.ident()?;
            head.push(v);
            if c.eat_opt(b')') {
                break;
            }
            c.eat(b',')?;
        }
    }
    // `<-` separates head from body.
    c.eat(b'<')?;
    c.eat(b'-')?;
    let (text, span) = c.statement_slice()?;
    let formula = parse_formula(text).map_err(|e| rebase(e, span.start))?;
    out.push((name, head, formula, Span::new(name_span.start, span.end)));
    Ok(())
}
