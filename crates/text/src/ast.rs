//! The typed scenario AST and span-carrying errors.
//!
//! A [`Scenario`] is the fully validated form of a `.dx` file: an annotated
//! schema mapping, optional target constraints, a source instance, a set
//! of named queries over the target schema, and optional named source
//! update batches (the scenario's streaming workload). Everything downstream (chase,
//! certain answers, GCWA\*, approximation) consumes these exact types, so a
//! parsed scenario is indistinguishable from a hand-built one.

use dx_chase::{Mapping, TargetDep};
use dx_logic::Query;
use dx_relation::{Instance, Update};
use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character covered.
    pub start: usize,
    /// Byte offset one past the last character covered.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// A zero-width span at `pos` (used for "expected X here" errors).
    pub fn point(pos: usize) -> Span {
        Span {
            start: pos,
            end: pos,
        }
    }
}

/// A parse or validation error carrying the byte span it refers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TextError {
    /// Human-readable description of what went wrong.
    pub msg: String,
    /// Where in the source text it went wrong.
    pub span: Span,
}

impl TextError {
    /// Build an error at `span`.
    pub fn new(msg: impl Into<String>, span: Span) -> TextError {
        TextError {
            msg: msg.into(),
            span,
        }
    }

    /// Render a `file:line:col`-style diagnostic with the offending line and
    /// a caret marking the span start.
    ///
    /// `src` must be the exact text the scenario was parsed from; the span is
    /// resolved against it to recover line and column numbers (1-based).
    pub fn render(&self, src: &str) -> String {
        let start = self.span.start.min(src.len());
        let line_no = src[..start].bytes().filter(|&b| b == b'\n').count() + 1;
        let line_start = src[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = src[start..]
            .find('\n')
            .map(|i| start + i)
            .unwrap_or(src.len());
        let col = start - line_start + 1;
        let line = &src[line_start..line_end];
        let caret = " ".repeat(col - 1) + "^";
        format!(
            "error at {line_no}:{col}: {}\n  | {line}\n  | {caret}",
            self.msg
        )
    }
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at byte {}: {}", self.span.start, self.msg)
    }
}

impl std::error::Error for TextError {}

/// A query with the name it was declared under in the `.dx` file.
#[derive(Clone, Debug, PartialEq)]
pub struct NamedQuery {
    /// Declared name (`query name(x) <- …`).
    pub name: String,
    /// The validated query over the target schema.
    pub query: Query,
}

/// An update batch with the name it was declared under in the `.dx` file.
#[derive(Clone, Debug, PartialEq)]
pub struct NamedUpdate {
    /// Declared name (`update "name" { … }`).
    pub name: String,
    /// The validated ground source-delta batch.
    pub update: Update,
}

/// A fully validated scenario: everything the pipelines need to run.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Scenario name from the `scenario "…"` header.
    pub name: String,
    /// The annotated schema mapping (source schema, target schema, STDs).
    pub mapping: Mapping,
    /// Target constraints (tgds/egds) chased after the STDs.
    pub constraints: Vec<TargetDep>,
    /// The source instance (may contain labeled nulls).
    pub source: Instance,
    /// Named queries over the target schema, in declaration order.
    pub queries: Vec<NamedQuery>,
    /// Named source update batches, in declaration order — the streaming
    /// workload the scenario ships with (`dx run --updates`).
    pub updates: Vec<NamedUpdate>,
}

impl Scenario {
    /// Parse and validate a `.dx` scenario from text.
    pub fn parse(src: &str) -> Result<Scenario, TextError> {
        let raw = crate::parser::parse_scenario(src)?;
        crate::validate::validate(&raw)
    }

    /// Pretty-print to canonical `.dx` text (see [`crate::printer::print`]).
    pub fn to_text(&self) -> String {
        crate::printer::print(self)
    }

    /// Look up a query by declared name.
    pub fn query(&self, name: &str) -> Option<&Query> {
        self.queries
            .iter()
            .find(|q| q.name == name)
            .map(|q| &q.query)
    }

    /// Look up an update batch by declared name.
    pub fn update(&self, name: &str) -> Option<&Update> {
        self.updates
            .iter()
            .find(|u| u.name == name)
            .map(|u| &u.update)
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}
