//! E9/E10 (Theorems 2 and 4): solving NP-complete problems *through* data
//! exchange, against brute-force baselines.
//!
//! Expected shape: both the exchange-based and the brute-force solvers are
//! exponential (the problems are NP-complete); the reduction overhead is a
//! polynomial factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dx_workloads::{coloring, tripartite};
use std::hint::black_box;
use std::time::Duration;

fn bench_tripartite(c: &mut Criterion) {
    let mut group = c.benchmark_group("reductions/tripartite");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for n in [2usize, 3, 4] {
        let inst = tripartite::TripartiteInstance::planted(n, n, 13);
        group.bench_with_input(BenchmarkId::new("brute_force", n), &n, |b, _| {
            b.iter(|| black_box(inst.solve_brute_force()))
        });
        group.bench_with_input(BenchmarkId::new("via_membership", n), &n, |b, _| {
            b.iter(|| black_box(tripartite::solve_via_membership(&inst)))
        });
    }
    group.finish();
}

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("reductions/coloring");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    for n in [3usize, 4] {
        let g = coloring::Graph::cycle(n);
        group.bench_with_input(BenchmarkId::new("brute_force", n), &n, |b, _| {
            b.iter(|| black_box(g.color_brute_force()))
        });
        group.bench_with_input(BenchmarkId::new("via_composition", n), &n, |b, _| {
            b.iter(|| black_box(coloring::solve_via_composition(&g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tripartite, bench_coloring);
criterion_main!(benches);
