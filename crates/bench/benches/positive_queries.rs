//! E2 (Proposition 3 / Corollary 3): certain answers of positive queries
//! are computed by naive evaluation on the canonical solution — polynomial
//! for *every* annotation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dx_core::certain;
use dx_workloads::conference;
use std::hint::black_box;
use std::time::Duration;

fn bench_positive(c: &mut Criterion) {
    let mut group = c.benchmark_group("positive/conference");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    let q = conference::reviewed_query();
    for n in [4usize, 8, 16, 32] {
        let s = conference::source(n, 2);
        let mixed = conference::mapping();
        let open = mixed.all_open();
        let closed = mixed.all_closed();
        for (label, m) in [
            ("mixed", &mixed),
            ("all_open", &open),
            ("all_closed", &closed),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| black_box(certain::certain_answers(m, &s, &q, None)))
            });
        }
    }
    group.finish();
}

fn bench_canonical_solution(c: &mut Criterion) {
    // The substrate cost: CSol_A(S) is polynomial-time for any annotation.
    let mut group = c.benchmark_group("positive/csol");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for n in [8usize, 32, 128] {
        let s = conference::source(n, 2);
        let m = conference::mapping();
        group.bench_with_input(BenchmarkId::new("csol", n), &n, |b, _| {
            b.iter(|| black_box(dx_chase::canonical_solution(&m, &s)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_positive, bench_canonical_solution);
criterion_main!(benches);
