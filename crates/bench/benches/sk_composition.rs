//! E5 (Lemma 5 / Theorem 5): cost and output size of the syntactic SkSTD
//! composition algorithm.
//!
//! Expected shape: for CQ inputs the composed mapping has one rule per
//! combination of σ-rules chosen for the Δ-body atoms — rule count (and
//! rewrite time) grows as `(#σ-rules)^(#Δ-atoms)`; the rewrite itself is
//! otherwise cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dx_core::compose_alg::compose_skstd;
use dx_core::skstd::SkMapping;
use std::hint::black_box;
use std::time::Duration;

/// σ with `k` rules producing `M`, Δ with `a` M-atoms in one body.
fn inputs(k: usize, a: usize) -> (SkMapping, SkMapping) {
    let mut sigma_rules = String::new();
    for i in 0..k {
        sigma_rules.push_str(&format!("M(x:op, mk{i}(x):op) <- A{i}(x);"));
    }
    let sigma = SkMapping::parse(&sigma_rules).unwrap();
    let mut body = String::new();
    for j in 0..a {
        if j > 0 {
            body.push_str(" & ");
        }
        body.push_str(&format!("M(y{j}, y{})", j + 1));
    }
    let delta = SkMapping::parse(&format!("F(y0:op, y{a}:op) <- {body}")).unwrap();
    (sigma, delta)
}

fn bench_rewrite(c: &mut Criterion) {
    let mut group = c.benchmark_group("sk_composition/cq");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for (k, a) in [(1usize, 1usize), (2, 2), (3, 3), (4, 4)] {
        let (sigma, delta) = inputs(k, a);
        group.bench_with_input(
            BenchmarkId::new("compose", format!("{k}rules_x_{a}atoms")),
            &(k, a),
            |b, _| b.iter(|| black_box(compose_skstd(&sigma, &delta).unwrap())),
        );
    }
    group.finish();
}

fn bench_fo_rewrite(c: &mut Criterion) {
    let mut group = c.benchmark_group("sk_composition/fo_closed");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    // The all-closed FO class of Theorem 5(2): no disjunct expansion, one
    // output rule per Δ rule.
    for k in [1usize, 4, 16] {
        let mut sigma_rules = String::new();
        for i in 0..k {
            sigma_rules.push_str(&format!("M(x:cl, fk{i}(x):cl) <- B{i}(x);"));
        }
        let sigma = SkMapping::parse(&sigma_rules).unwrap();
        let delta = SkMapping::parse("F(x:cl) <- exists y. M(x, y) & !exists z. M(z, x)").unwrap();
        group.bench_with_input(BenchmarkId::new("compose", k), &k, |b, _| {
            b.iter(|| black_box(compose_skstd(&sigma, &delta).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rewrite, bench_fo_rewrite);
criterion_main!(benches);
