//! Naive vs indexed chase engines on the three chase-heavy workload
//! families: the membership (conference) pipeline, a composition-shaped
//! two-hop pipeline, and the copying lower-bound carrier.
//!
//! The indexed engine's edge grows with instance size: trigger discovery is
//! delta-driven instead of rescan-driven, and body matching probes hash
//! indexes instead of nested-loop scans. Small inputs mostly measure fixed
//! overheads — the acceptance bar there is parity, not speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dx_bench::chase_workloads::{composition_case, conference_case, copying_case, ChaseCase};
use dx_chase::{canonical_solution_with_deps_via, ChaseStrategy, NaiveChase};
use dx_engine::IndexedChase;
use std::hint::black_box;
use std::time::Duration;

const LIMIT: usize = 1_000_000;

fn engines() -> [(&'static str, &'static dyn ChaseStrategy); 2] {
    [("naive", &NaiveChase), ("indexed", &IndexedChase)]
}

fn bench_family(
    c: &mut Criterion,
    group_name: &str,
    make: fn(usize) -> ChaseCase,
    sizes: &[usize],
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(700));
    for &n in sizes {
        let case = make(n);
        for (name, engine) in engines() {
            group.bench_with_input(BenchmarkId::new(name, n), &case, |b, case| {
                b.iter(|| {
                    black_box(canonical_solution_with_deps_via(
                        engine,
                        &case.mapping,
                        &case.deps,
                        &case.source,
                        LIMIT,
                    ))
                })
            });
        }
    }
    group.finish();
}

fn bench_membership_chase(c: &mut Criterion) {
    bench_family(c, "engine_membership", conference_case, &[8, 32, 96]);
}

fn bench_composition_chase(c: &mut Criterion) {
    bench_family(c, "engine_composition", composition_case, &[8, 32, 96]);
}

fn bench_copying_chase(c: &mut Criterion) {
    bench_family(c, "engine_copying", copying_case, &[8, 32, 96]);
}

criterion_group!(
    benches,
    bench_membership_chase,
    bench_composition_chase,
    bench_copying_chase
);
criterion_main!(benches);
