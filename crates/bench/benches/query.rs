//! Tree-walking vs compiled (dx-query) evaluation on the query workload
//! families: canonical-solution body evaluation and positive-query certain
//! answering over the canonical solution.
//!
//! The compiled engine's edge grows with instance size: the tree walker
//! pays an active-domain scan per negated existential per candidate row,
//! the plan runs a single anti-join. Small inputs mostly measure fixed
//! overheads (plan lowering, index build) — the acceptance bar there is
//! parity, not speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dx_bench::query_workloads::{join_case, membership_case, repa_case, seeded_case, QueryCase};
use dx_chase::{canonical_solution, canonical_solution_via, NaiveBodyEval};
use dx_query::{PlanCatalog, PlannedBodyEval};
use std::hint::black_box;
use std::time::Duration;

fn bench_family(
    c: &mut Criterion,
    group_name: &str,
    make: fn(usize) -> QueryCase,
    sizes: &[usize],
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(700));
    for &n in sizes {
        let case = make(n);
        group.bench_with_input(BenchmarkId::new("csol-tree", n), &case, |b, case| {
            b.iter(|| {
                black_box(canonical_solution_via(
                    &NaiveBodyEval,
                    &case.mapping,
                    &case.source,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("csol-planned", n), &case, |b, case| {
            b.iter(|| {
                black_box(canonical_solution_via(
                    &PlannedBodyEval,
                    &case.mapping,
                    &case.source,
                ))
            })
        });
        let target = canonical_solution(&case.mapping, &case.source).rel_part();
        let compiled = PlanCatalog::shared().eval_in(&case.query, &case.mapping.target);
        group.bench_with_input(BenchmarkId::new("answers-tree", n), &case, |b, case| {
            b.iter(|| black_box(case.query.naive_certain_answers(&target)))
        });
        group.bench_with_input(BenchmarkId::new("answers-planned", n), &case, |b, _case| {
            b.iter(|| black_box(compiled.naive_certain_answers(&target)))
        });
    }
    group.finish();
}

fn bench_membership_queries(c: &mut Criterion) {
    bench_family(c, "query_membership", membership_case, &[8, 32, 96]);
}

fn bench_join_queries(c: &mut Criterion) {
    bench_family(c, "query_join", join_case, &[8, 32, 96]);
}

/// The seeded anti-join race: the correlated §1 one-author query, tree
/// walker vs the compiled `SeededAntiJoin` plan (PR 5). The walker sweeps
/// the active domain per (p, a, b) triple; the plan re-executes the
/// correlated branch once per distinct author.
fn bench_seeded_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_seeded");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(700));
    for &n in &[8usize, 32, 96] {
        let case = seeded_case(n);
        let target = canonical_solution(&case.mapping, &case.source).rel_part();
        let compiled = PlanCatalog::shared().eval_in(&case.query, &case.mapping.target);
        assert!(compiled.is_compiled(), "seeded workload runs on a plan");
        group.bench_with_input(BenchmarkId::new("tree", n), &case, |b, case| {
            b.iter(|| black_box(case.query.naive_certain_answers(&target)))
        });
        group.bench_with_input(BenchmarkId::new("compiled", n), &case, |b, _case| {
            b.iter(|| black_box(compiled.naive_certain_answers(&target)))
        });
    }
    group.finish();
}

/// The `Rep_A` valuation-search race: identical searches, per-leaf check
/// on a freshly built index per candidate ("rebuild") vs the solver's
/// incrementally maintained store ("incremental").
fn bench_repa_search(c: &mut Criterion) {
    use dx_relation::{Tuple, Value};
    use dx_solver::{search_rep_a_indexed, SearchBudget};
    use std::collections::BTreeSet;
    let mut group = c.benchmark_group("query_repa");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(700));
    for &n in &[8usize, 32, 96] {
        let case = repa_case(n);
        let csol = canonical_solution(&case.mapping, &case.source);
        let ev = PlanCatalog::shared().eval_in(&case.query, &case.mapping.target);
        let consts: BTreeSet<dx_relation::ConstId> =
            case.query.formula.constants().into_iter().collect();
        let empty = Tuple::new(Vec::<Value>::new());
        group.bench_with_input(BenchmarkId::new("rebuild", n), &csol, |b, csol| {
            b.iter(|| {
                black_box(search_rep_a_indexed(
                    &csol.instance,
                    &consts,
                    &SearchBudget::closed_world(),
                    &mut |leaf| !ev.holds_on(leaf.instance(), &empty),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &csol, |b, csol| {
            b.iter(|| {
                black_box(search_rep_a_indexed(
                    &csol.instance,
                    &consts,
                    &SearchBudget::closed_world(),
                    &mut |leaf| !ev.holds_on_indexed(leaf.index(), leaf.instance(), &empty),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_membership_queries,
    bench_join_queries,
    bench_seeded_queries,
    bench_repa_search
);
criterion_main!(benches);
