//! Tree-walking vs compiled (dx-query) evaluation on the query workload
//! families: canonical-solution body evaluation and positive-query certain
//! answering over the canonical solution.
//!
//! The compiled engine's edge grows with instance size: the tree walker
//! pays an active-domain scan per negated existential per candidate row,
//! the plan runs a single anti-join. Small inputs mostly measure fixed
//! overheads (plan lowering, index build) — the acceptance bar there is
//! parity, not speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dx_bench::query_workloads::{join_case, membership_case, QueryCase};
use dx_chase::{canonical_solution, canonical_solution_via, NaiveBodyEval};
use dx_query::{PlannedBodyEval, QueryEval};
use std::hint::black_box;
use std::time::Duration;

fn bench_family(
    c: &mut Criterion,
    group_name: &str,
    make: fn(usize) -> QueryCase,
    sizes: &[usize],
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(700));
    for &n in sizes {
        let case = make(n);
        group.bench_with_input(BenchmarkId::new("csol-tree", n), &case, |b, case| {
            b.iter(|| {
                black_box(canonical_solution_via(
                    &NaiveBodyEval,
                    &case.mapping,
                    &case.source,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("csol-planned", n), &case, |b, case| {
            b.iter(|| {
                black_box(canonical_solution_via(
                    &PlannedBodyEval,
                    &case.mapping,
                    &case.source,
                ))
            })
        });
        let target = canonical_solution(&case.mapping, &case.source).rel_part();
        let compiled = QueryEval::new(&case.query);
        group.bench_with_input(BenchmarkId::new("answers-tree", n), &case, |b, case| {
            b.iter(|| black_box(case.query.naive_certain_answers(&target)))
        });
        group.bench_with_input(BenchmarkId::new("answers-planned", n), &case, |b, _case| {
            b.iter(|| black_box(compiled.naive_certain_answers(&target)))
        });
    }
    group.finish();
}

fn bench_membership_queries(c: &mut Criterion) {
    bench_family(c, "query_membership", membership_case, &[8, 32, 96]);
}

fn bench_join_queries(c: &mut Criterion) {
    bench_family(c, "query_join", join_case, &[8, 32, 96]);
}

criterion_group!(benches, bench_membership_queries, bench_join_queries);
criterion_main!(benches);
