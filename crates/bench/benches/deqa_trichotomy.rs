//! E3 (Theorem 3): the DEQA trichotomy by `#op(Σα)`.
//!
//! Expected shape: the `#op = 0` (coNP) decision is exponential in the
//! number of nulls but feasible; `#op = 1` (coNEXPTIME) pays an extra
//! exponential in the replication budget — measured here at a fixed budget
//! per instance size, showing the much steeper curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dx_bench::{closed_null_mapping, exhaust_query, open_null_mapping, unary_source};
use dx_core::certain;
use dx_relation::{Tuple, Value};
use dx_solver::SearchBudget;
use std::hint::black_box;
use std::time::Duration;

fn bench_closed(c: &mut Criterion) {
    let mut group = c.benchmark_group("deqa/closed_op0");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let q = exhaust_query();
    let empty = Tuple::new(Vec::<Value>::new());
    for n in [1usize, 2, 3, 4] {
        let s = unary_source(n);
        let m = closed_null_mapping();
        group.bench_with_input(BenchmarkId::new("conp_exhaustive", n), &n, |b, _| {
            b.iter(|| black_box(certain::certain_contains(&m, &s, &q, &empty, None)))
        });
    }
    group.finish();
}

fn bench_open_one(c: &mut Criterion) {
    let mut group = c.benchmark_group("deqa/open_op1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let q = exhaust_query();
    let empty = Tuple::new(Vec::<Value>::new());
    // Fixed replication budget: the cost grows with both the instance and
    // the budget (the budget is the witness-space exponent of Lemma 2).
    for n in [1usize, 2, 3] {
        let s = unary_source(n);
        let m = open_null_mapping();
        for (blabel, budget) in [
            ("budget_1x1", SearchBudget::bounded(1, 1)),
            ("budget_2x2", SearchBudget::bounded(2, 2)),
        ] {
            group.bench_with_input(BenchmarkId::new(blabel, n), &n, |b, _| {
                b.iter(|| black_box(certain::certain_contains(&m, &s, &q, &empty, Some(&budget))))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_closed, bench_open_one);
criterion_main!(benches);
