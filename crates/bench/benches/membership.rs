//! E1 (Theorem 2): the membership problem `T ∈ ⟦S⟧_Σα`.
//!
//! Expected shape: the all-open path (a `(S,T) |= Σ` check) scales
//! polynomially; with closed annotations the valuation search appears —
//! polynomial on easy instances, exponential on the tripartite-matching
//! family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dx_bench::{copy2, path_source};
use dx_core::semantics;
use dx_workloads::tripartite;
use std::hint::black_box;
use std::time::Duration;

fn bench_membership_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership/copy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [4usize, 8, 16, 32] {
        let s = path_source(n);
        // The target: the exact copy.
        let mut t = dx_relation::Instance::new();
        for i in 0..n {
            t.insert_names("Ep", &[&format!("v{i}"), &format!("v{}", i + 1)]);
        }
        let open = copy2("op");
        let closed = copy2("cl");
        group.bench_with_input(BenchmarkId::new("all_open_ptime", n), &n, |b, _| {
            b.iter(|| black_box(semantics::is_member(&open, &s, &t)))
        });
        group.bench_with_input(BenchmarkId::new("all_closed_np", n), &n, |b, _| {
            b.iter(|| black_box(semantics::is_member(&closed, &s, &t)))
        });
    }
    group.finish();
}

fn bench_membership_tripartite(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership/tripartite");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for n in [2usize, 3, 4] {
        let inst = tripartite::TripartiteInstance::planted(n, n, 7);
        let s = tripartite::source(&inst);
        let t = tripartite::target(&inst);
        let m = tripartite::mapping();
        group.bench_with_input(BenchmarkId::new("planted", n), &n, |b, _| {
            b.iter(|| black_box(semantics::is_member(&m, &s, &t)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_membership_paths, bench_membership_tripartite);
criterion_main!(benches);
