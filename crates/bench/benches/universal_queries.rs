//! E6 (Proposition 5): `∀*∃*` queries are coNP for every annotation — the
//! witness space is polynomial, so the decision stays feasible even with
//! open annotations (contrast with E3's `#op = 1` full-FO case).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dx_bench::{closed_null_mapping, fd_query, open_null_mapping, unary_source};
use dx_core::certain;
use dx_relation::{Tuple, Value};
use std::hint::black_box;
use std::time::Duration;

fn bench_fd_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("universal/fd");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let q = fd_query();
    let empty = Tuple::new(Vec::<Value>::new());
    for n in [1usize, 2, 3] {
        let s = unary_source(n);
        for (label, m) in [
            ("closed", closed_null_mapping()),
            ("open", open_null_mapping()),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| black_box(certain::certain_contains(&m, &s, &q, &empty, None)))
            });
        }
    }
    group.finish();
}

fn bench_inclusion_constraint(c: &mut Criterion) {
    // A genuinely ∀∃ constraint: every R-value reappears as an R-key.
    let mut group = c.benchmark_group("universal/inclusion");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let q = dx_logic::Query::boolean(
        dx_logic::parse_formula("forall x y. (R(x, y) -> exists w. R(y, w))").unwrap(),
    );
    let empty = Tuple::new(Vec::<Value>::new());
    for n in [1usize, 2] {
        let s = unary_source(n);
        let m = open_null_mapping();
        group.bench_with_input(BenchmarkId::new("open", n), &n, |b, _| {
            b.iter(|| black_box(certain::certain_contains(&m, &s, &q, &empty, None)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fd_query, bench_inclusion_constraint);
criterion_main!(benches);
