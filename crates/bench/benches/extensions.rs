//! Benches for the post-§6 extensions built on top of the paper's core:
//!
//! * **Codd fast path** (§3 complexity remark): `Rep` membership for Codd
//!   tables via Hopcroft–Karp (PTIME) vs the generic valuation backtracking
//!   (exponential on the deficient all-null family);
//! * **stratified Datalog certain answers** (§6 extension 1): the
//!   hom-preserved transitive-closure program scales polynomially on the
//!   canonical solution for every annotation;
//! * **c-table route vs coNP valuation search** for CWA certain answers of
//!   a difference query (both exact — the paper's §2-cited representation
//!   mechanism against Theorem 3(1)'s witness search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dx_chase::Mapping;
use dx_core::ctable_bridge::certain_answers_cwa_ra;
use dx_core::ptime_lang::certain_answers_ptime;
use dx_ctables::RaExpr;
use dx_logic::datalog::DatalogQuery;
use dx_logic::Query;
use dx_relation::{Instance, RelSym, Tuple, Value};
use dx_solver::repa::{codd_rep_membership, rep_a_membership_with};
use std::hint::black_box;
use std::time::Duration;

/// The deficient all-null family: T = n unary null tuples, R = n+1 distinct
/// values. Not a member (n tuples cannot realize n+1 values); the generic
/// backtracking explores a (n+1)^n assignment space before concluding,
/// while the matching route fails in O(E·√V).
fn deficient_family(n: usize) -> (Instance, dx_relation::AnnInstance, Instance) {
    let rel = RelSym::new("BxCodd");
    let mut ground = Instance::new();
    let mut ann = dx_relation::AnnInstance::new();
    for i in 0..n {
        let t = Tuple::new(vec![Value::null(i as u32 + 1)]);
        ground.insert(rel, t.clone());
        ann.insert(
            rel,
            dx_relation::AnnTuple::new(t, dx_relation::Annotation::all_closed(1)),
        );
    }
    let mut r = Instance::new();
    for i in 0..=n {
        r.insert_names("BxCodd", &[&format!("c{i}")]);
    }
    (ground, ann, r)
}

fn bench_codd_vs_generic(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/codd_membership");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for n in [2usize, 4, 6] {
        let (ground, ann, r) = deficient_family(n);
        group.bench_with_input(BenchmarkId::new("generic_backtracking", n), &n, |b, _| {
            b.iter(|| black_box(rep_a_membership_with(&ann, &r, true)))
        });
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &n, |b, _| {
            b.iter(|| black_box(codd_rep_membership(&ground, &r)))
        });
    }
    // The matching route keeps going far beyond the generic wall.
    for n in [64usize, 256] {
        let (ground, _, r) = deficient_family(n);
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &n, |b, _| {
            b.iter(|| black_box(codd_rep_membership(&ground, &r)))
        });
    }
    group.finish();
}

fn chain_source(n: usize) -> Instance {
    let mut s = Instance::new();
    for i in 0..n {
        s.insert_names("BxSrc", &[&format!("v{i}"), &format!("v{}", i + 1)]);
    }
    s
}

fn bench_datalog_certain(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/datalog_tc");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    let tc = DatalogQuery::parse(
        "BxPath",
        "BxPath(x, y) <- BxE(x, y); BxPath(x, z) <- BxPath(x, y) & BxE(y, z)",
    )
    .unwrap();
    for n in [4usize, 8, 16, 32] {
        let s = chain_source(n);
        for rules in [
            "BxE(x:cl, y:cl) <- BxSrc(x, y)",
            "BxE(x:cl, y:op) <- BxSrc(x, y)",
        ] {
            let m = Mapping::parse(rules).unwrap();
            let label = if m.is_all_closed() { "closed" } else { "mixed" };
            group.bench_with_input(
                BenchmarkId::new(format!("hom_preserved_{label}"), n),
                &n,
                |b, _| b.iter(|| black_box(certain_answers_ptime(&m, &s, &tc, None))),
            );
        }
    }
    group.finish();
}

fn bench_ctable_vs_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/cwa_difference");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    // Exchange inventing one null per row; Q = P ∖ Q as FO and as RA.
    let m = Mapping::parse("BxP(x:cl) <- BxA(x, y); BxQ(z:cl) <- BxB(y, z)").unwrap();
    let fo = Query::parse(&["x"], "BxP(x) & !BxQ(x)").unwrap();
    let ra = RaExpr::rel("BxP").diff(RaExpr::rel("BxQ"));
    for n in [1usize, 2, 3] {
        let mut s = Instance::new();
        for i in 0..n {
            s.insert_names("BxA", &[&format!("a{i}"), &format!("t{i}")]);
            s.insert_names("BxB", &[&format!("u{i}"), &format!("b{i}")]);
        }
        group.bench_with_input(BenchmarkId::new("conp_search", n), &n, |b, _| {
            b.iter(|| black_box(dx_core::certain::certain_answers(&m, &s, &fo, None)))
        });
        group.bench_with_input(BenchmarkId::new("ctable_route", n), &n, |b, _| {
            b.iter(|| black_box(certain_answers_cwa_ra(&m, &s, &ra)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_codd_vs_generic,
    bench_datalog_certain,
    bench_ctable_vs_search
);
criterion_main!(benches);
