//! E8 (Theorem 1 / Proposition 2): the annotation spectrum.
//!
//! Membership cost across the `cl → mixed → op` chain on the same
//! (source, target) pairs: the semantics grow along `⪯`, and the all-open
//! endpoint switches to the PTIME path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dx_chase::Mapping;
use dx_core::semantics;
use dx_workloads::random_gen;
use std::hint::black_box;
use std::time::Duration;

fn bench_annotation_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("order/chain");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    let chain = [
        ("cl_cl", "R(x:cl, z:cl) <- E(x, y)"),
        ("cl_op", "R(x:cl, z:op) <- E(x, y)"),
        ("op_op", "R(x:op, z:op) <- E(x, y)"),
    ];
    for n in [4usize, 8, 16] {
        // A fixed member sampled under the most closed semantics: it is a
        // member of all three (Theorem 1(3)).
        let base = Mapping::parse(chain[0].1).unwrap();
        let mut rng = random_gen::rng(99);
        let schema = dx_relation::Schema::from_pairs([("E", 2)]);
        let s = random_gen::random_instance(&schema, n, n, &mut rng);
        let t = random_gen::sample_member(&base, &s, n, 0, &mut rng);
        for (label, rules) in chain {
            let m = Mapping::parse(rules).unwrap();
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| black_box(semantics::is_member(&m, &s, &t)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_annotation_chain);
criterion_main!(benches);
