//! E4 (Theorem 4, **Table 1**): the composition problem `Comp(Σα, Δα′)`.
//!
//! The three regimes of Table 1:
//! * `#op(Σα) = 0` — NP-complete (row 1);
//! * `#op(Σα) = 1` — NEXPTIME-complete (row 2; bounded here);
//! * monotone `Δ` with all-open annotation — NP, independent of `Σα`
//!   (column 2 / Lemma 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dx_chase::Mapping;
use dx_core::compose::comp_membership;
use dx_relation::Instance;
use std::hint::black_box;
use std::time::Duration;

fn chain_source(n: usize) -> Instance {
    let mut s = Instance::new();
    for i in 0..n {
        s.insert_names("E", &[&format!("v{i}"), &format!("v{}", i + 1)]);
    }
    s
}

fn copy_target(n: usize) -> Instance {
    let mut w = Instance::new();
    for i in 0..n {
        w.insert_names("F", &[&format!("v{i}"), &format!("v{}", i + 1)]);
    }
    w
}

fn bench_closed_sigma(c: &mut Criterion) {
    let mut group = c.benchmark_group("composition/table1_row_op0");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    let sigma = Mapping::parse("M(x:cl, y:cl) <- E(x, y)").unwrap();
    let delta = Mapping::parse("F(x:cl, y:cl) <- M(x, y)").unwrap();
    for n in [2usize, 4, 8, 16] {
        let s = chain_source(n);
        let w = copy_target(n);
        group.bench_with_input(BenchmarkId::new("np_exact", n), &n, |b, _| {
            b.iter(|| black_box(comp_membership(&sigma, &delta, &s, &w, None)))
        });
    }
    group.finish();
}

fn bench_open_sigma(c: &mut Criterion) {
    let mut group = c.benchmark_group("composition/table1_row_op1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    // Σ introduces an open null; W demands two replicated M-values. The
    // intermediate-enumeration space is the NEXPTIME exponent — keep a
    // tight explicit budget so the bench measures the budgeted search.
    let sigma = Mapping::parse("M(x:cl, z:op) <- E(x, y)").unwrap();
    let delta = Mapping::parse("F(x:cl, y:cl) <- M(x, y)").unwrap();
    for n in [1usize, 2] {
        let s = chain_source(n);
        let mut w = Instance::new();
        for i in 0..n {
            w.insert_names("F", &[&format!("v{i}"), &format!("a{i}")]);
            w.insert_names("F", &[&format!("v{i}"), &format!("b{i}")]);
        }
        let budget = dx_solver::SearchBudget {
            max_leaves: Some(100_000),
            ..dx_solver::SearchBudget::bounded(1, n)
        };
        group.bench_with_input(BenchmarkId::new("nexptime_bounded", n), &n, |b, _| {
            b.iter(|| black_box(comp_membership(&sigma, &delta, &s, &w, Some(&budget))))
        });
    }
    group.finish();
}

fn bench_monotone_open_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("composition/table1_col_monotone_op");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    let delta = Mapping::parse("F(x:op, y:op) <- M(x, y)").unwrap();
    for n in [2usize, 4, 8, 16] {
        let s = chain_source(n);
        let mut w = copy_target(n);
        // Column claim (Lemma 3): Σ's annotation is irrelevant here.
        w.insert_names("F", &["extra", "tuple"]);
        for (label, sigma_rules) in [
            ("sigma_cl", "M(x:cl, y:cl) <- E(x, y)"),
            ("sigma_op", "M(x:op, y:op) <- E(x, y)"),
        ] {
            let sigma = Mapping::parse(sigma_rules).unwrap();
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| black_box(comp_membership(&sigma, &delta, &s, &w, None)))
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_closed_sigma,
    bench_open_sigma,
    bench_monotone_open_delta
);
criterion_main!(benches);
