//! Ablations of the engine design choices DESIGN.md calls out:
//!
//! * **A1 — join drivers** in satisfying-assignment enumeration (the
//!   body-match engine behind every canonical solution) vs plain domain
//!   enumeration;
//! * **A2 — most-constrained-first ordering** in the `Rep_A` valuation CSP
//!   vs declaration order;
//! * **A3 — first-use symmetry breaking** on fresh constants in the
//!   valuation palette vs the unrestricted palette.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dx_logic::Evaluator;
use dx_relation::Var;
use dx_relation::{ConstId, Instance};
use dx_solver::palette::Palette;
use dx_solver::repa::rep_a_membership_with;
use dx_workloads::tripartite;
use std::hint::black_box;
use std::time::Duration;

fn bench_driver_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/driver_joins");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    // Body with a selective join + negation, over a growing instance.
    let body = dx_logic::parse_formula("Papers(x, y) & !exists r. Assignments(x, r)").unwrap();
    let vars = [Var::new("x"), Var::new("y")];
    for n in [8usize, 16, 32] {
        let s = dx_workloads::conference::source(n, 2);
        group.bench_with_input(BenchmarkId::new("with_drivers", n), &n, |b, _| {
            b.iter(|| {
                let ev = Evaluator::for_formula(&s, &body);
                black_box(ev.satisfying_assignments(&body, &vars))
            })
        });
        group.bench_with_input(BenchmarkId::new("plain_enumeration", n), &n, |b, _| {
            b.iter(|| {
                let ev = Evaluator::for_formula(&s, &body);
                black_box(ev.satisfying_assignments_no_drivers(&body, &vars))
            })
        });
    }
    group.finish();
}

fn bench_task_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/task_ordering");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for n in [3usize, 4] {
        let inst = tripartite::TripartiteInstance::planted(n, n, 23);
        let m = tripartite::mapping();
        let s = tripartite::source(&inst);
        let t = tripartite::target(&inst);
        let csol = dx_chase::canonical_solution(&m, &s);
        group.bench_with_input(BenchmarkId::new("most_constrained_first", n), &n, |b, _| {
            b.iter(|| black_box(rep_a_membership_with(&csol.instance, &t, true)))
        });
        group.bench_with_input(BenchmarkId::new("declaration_order", n), &n, |b, _| {
            b.iter(|| black_box(rep_a_membership_with(&csol.instance, &t, false)))
        });
    }
    group.finish();
}

/// Count the canonical valuations of `k` nulls over `base` base constants
/// plus `k` fresh constants, with/without first-use symmetry breaking.
fn count_valuations(k: usize, base: usize, symmetry: bool) -> u64 {
    let base_consts: Vec<ConstId> = (0..base).map(|i| ConstId::new(&format!("ab{i}"))).collect();
    let palette = Palette::new(base_consts, k, "abl");
    fn go(palette: &Palette, k: usize, i: usize, fresh_used: usize, symmetry: bool) -> u64 {
        if i == k {
            return 1;
        }
        let mut total = 0;
        let choices: Vec<ConstId> = if symmetry {
            palette.choices(fresh_used).collect()
        } else {
            palette.all().collect()
        };
        for c in choices {
            let nf = fresh_used + usize::from(symmetry && palette.is_next_fresh(c, fresh_used));
            total += go(palette, k, i + 1, nf, symmetry);
        }
        total
    }
    go(&palette, k, 0, 0, symmetry)
}

fn bench_symmetry_breaking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/symmetry_breaking");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for k in [4usize, 6] {
        group.bench_with_input(BenchmarkId::new("first_use_canonical", k), &k, |b, _| {
            b.iter(|| black_box(count_valuations(k, 2, true)))
        });
        group.bench_with_input(BenchmarkId::new("unrestricted", k), &k, |b, _| {
            b.iter(|| black_box(count_valuations(k, 2, false)))
        });
    }
    group.finish();
}

/// Keep the counted spaces honest: symmetry breaking must shrink, not skew.
#[allow(dead_code)]
fn sanity() {
    let with = count_valuations(3, 1, true);
    let without = count_valuations(3, 1, false);
    assert!(with < without);
    let _ = Instance::new();
}

criterion_group!(
    benches,
    bench_driver_joins,
    bench_task_ordering,
    bench_symmetry_breaking
);
criterion_main!(benches);
