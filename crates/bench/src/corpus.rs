//! The corpus differential harness: every generated scenario races the
//! engines against independent oracles across all regimes.
//!
//! Per scenario, [`race_scenario`] checks:
//!
//! 1. **Round-trip identity** — `parse(print(s)) == s` structurally and
//!    canonical text is a printing fixpoint;
//! 2. **Chase race** — [`NaiveChase`] vs [`IndexedChase`] on the full
//!    exchange (STDs + target constraints): same outcome kind, cross-engine
//!    dependency satisfaction, hom-equivalent results, isomorphic annotated
//!    cores;
//! 3. **Certain answers** — the shared pipeline vs the same pipeline routed
//!    end to end through the naive chase ([`certain_answers_via`], contract:
//!    identical), and for *positive* queries the independent Proposition 3
//!    oracle (tree-walk naive evaluation on `CSol`);
//! 4. **Possible answers** — [`possible_contains`] vs any-member witness
//!    search over a brute-force `Rep_A` enumeration on the engine's exact
//!    palette and budget;
//! 5. **GCWA\*** — [`gcwa_star_answers`] (compiled plans over one delta
//!    index) vs materialized unions of ⊆-minimal members evaluated by the
//!    tree walker, plus falsifying-counterexample and
//!    positive-query-collapse checks;
//! 6. **Approximation bracket** — `lower ⊆ exact ⊆ upper` against the
//!    brute-force member space, closing to equality under exhaustive
//!    sampling;
//! 7. **Streaming race** — the scenario's `update` batches replay through
//!    [`StreamSession`] (incremental chase + incrementally maintained
//!    certain answers); after *every* batch the maintained canonical
//!    solution must be hom-equivalent to a recompute-from-scratch, the
//!    chased target must agree in outcome kind and hom-equivalence, and
//!    every registered query's answer set must be identical to the batch
//!    pipeline on the updated source.
//!
//! Any disagreement panics with the scenario text embedded, so a corpus
//! failure is immediately reproducible from the seed.

use dx_chase::chase_engine::{ChaseOutcome, DEFAULT_CHASE_LIMIT};
use dx_chase::core::{ann_core_of, ann_hom_equivalent, ann_isomorphic};
use dx_chase::{canonical_solution, canonical_solution_with_deps_via, ChaseStrategy, NaiveChase};
use dx_core::certain::{certain_answers, certain_answers_via, possible_contains};
use dx_core::regimes::{
    approx_certain_answers, gcwa_star_answers, gcwa_star_contains, RegimeBudget,
};
use dx_core::streaming::{QueryPath, StreamRegime, StreamSession};
use dx_engine::IndexedChase;
use dx_logic::{classify, Query};
use dx_relation::{ConstId, Instance, Tuple, Value};
use dx_solver::{minimal_rep_a_members, search_rep_a, Completeness, SearchBudget};
use dx_text::{Grade, Scenario};
use std::collections::BTreeSet;

/// Per-scenario result counters folded into [`CorpusStats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ScenarioReport {
    /// Chase finished with all dependencies satisfied.
    pub chase_satisfied: bool,
    /// Chase failed on an egd (still a raced, agreeing outcome).
    pub chase_failed: bool,
    /// Queries raced through the certain/possible/GCWA\*/approx checks.
    pub queries: usize,
    /// `Rep_A` members enumerated by the brute-force oracles.
    pub members: usize,
    /// Update batches replayed through the streaming race.
    pub updates: usize,
    /// Query maintenance steps that rode a delta plan (vs recompute/skip).
    pub delta_paths: usize,
}

/// Aggregated corpus statistics (serialized to JSON by [`CorpusStats::to_json`]).
#[derive(Clone, Debug, Default)]
pub struct CorpusStats {
    /// Scenarios raced, total.
    pub scenarios: usize,
    /// Scenarios per grade level (index = grade).
    pub per_grade: [usize; 4],
    /// Scenarios whose chase satisfied all dependencies.
    pub chase_satisfied: usize,
    /// Scenarios whose chase failed (egd conflict) — raced, agreeing.
    pub chase_failed: usize,
    /// Total queries raced.
    pub queries: usize,
    /// Total brute-force `Rep_A` members enumerated.
    pub members: usize,
    /// Total update batches replayed through the streaming race.
    pub updates: usize,
    /// Total delta-plan maintenance steps across all streaming races.
    pub delta_paths: usize,
    /// Total canonical `.dx` bytes round-tripped.
    pub text_bytes: usize,
}

impl CorpusStats {
    /// Fold one scenario's report in.
    pub fn absorb(&mut self, grade: Grade, text_bytes: usize, r: &ScenarioReport) {
        self.scenarios += 1;
        self.per_grade[grade.level() as usize] += 1;
        self.chase_satisfied += usize::from(r.chase_satisfied);
        self.chase_failed += usize::from(r.chase_failed);
        self.queries += r.queries;
        self.members += r.members;
        self.updates += r.updates;
        self.delta_paths += r.delta_paths;
        self.text_bytes += text_bytes;
    }

    /// Serialize as a small JSON object (no external dependencies).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"scenarios\": {},\n  \"per_grade\": [{}, {}, {}, {}],\n  \
             \"chase_satisfied\": {},\n  \"chase_failed\": {},\n  \"queries\": {},\n  \
             \"members\": {},\n  \"updates\": {},\n  \"delta_paths\": {},\n  \
             \"text_bytes\": {}\n}}\n",
            self.scenarios,
            self.per_grade[0],
            self.per_grade[1],
            self.per_grade[2],
            self.per_grade[3],
            self.chase_satisfied,
            self.chase_failed,
            self.queries,
            self.members,
            self.updates,
            self.delta_paths,
            self.text_bytes,
        )
    }
}

/// The oracle budget for mixed-annotation scenarios: one replication
/// constant, one extra tuple — small enough that the brute-force oracles
/// enumerate the exact same space, wide enough that open annotations
/// enlarge it. The leaf cap bounds the engine's internal Prop 5 sweep
/// (`∀*∃*` queries own an exponential extras space; a certain tuple must
/// exhaust it) — capped outcomes are still raced for cross-engine
/// agreement, just not against exactness oracles.
fn oracle_budget() -> SearchBudget {
    SearchBudget {
        max_leaves: Some(5_000),
        ..SearchBudget::bounded(1, 1)
    }
}

/// The budget actually used for a scenario: all-closed mappings route
/// through the closed-world witness space inside the engines, so the
/// oracles must enumerate the same space.
fn scenario_budget(sc: &Scenario) -> SearchBudget {
    if sc.mapping.is_all_closed() {
        SearchBudget::closed_world()
    } else {
        oracle_budget()
    }
}

/// Candidate answer tuples over `(adom(S) ∪ constants(Q))^arity`.
fn candidates(source: &Instance, query: &Query) -> Vec<Tuple> {
    let mut consts: BTreeSet<ConstId> = source.adom_consts();
    consts.extend(query.formula.constants());
    let consts: Vec<ConstId> = consts.into_iter().collect();
    let arity = query.arity();
    if arity == 0 {
        return vec![Tuple::new(Vec::<Value>::new())];
    }
    if consts.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut idx = vec![0usize; arity];
    loop {
        out.push(Tuple::from_consts(
            &idx.iter().map(|&i| consts[i]).collect::<Vec<_>>(),
        ));
        let mut carry = 0;
        loop {
            if carry == arity {
                return out;
            }
            idx[carry] += 1;
            if idx[carry] < consts.len() {
                break;
            }
            idx[carry] = 0;
            carry += 1;
        }
    }
}

/// All deduplicated members of `Rep_A(CSol_A(S))` within `budget`.
fn enumerate_members(
    csol: &dx_relation::AnnInstance,
    palette: &BTreeSet<ConstId>,
    budget: &SearchBudget,
) -> Vec<Instance> {
    let mut members: BTreeSet<Instance> = BTreeSet::new();
    search_rep_a(csol, palette, budget, &mut |inst| {
        members.insert(inst.clone());
        false
    });
    members.into_iter().collect()
}

/// All unions of nonempty subsets of ≤ `cap` members, materialized.
fn subsets_up_to(members: &[Instance], cap: usize) -> Vec<Instance> {
    fn rec(
        members: &[Instance],
        start: usize,
        left: usize,
        acc: &Instance,
        out: &mut Vec<Instance>,
    ) {
        for i in start..members.len() {
            let u = acc.union(&members[i]);
            out.push(u.clone());
            if left > 1 {
                rec(members, i + 1, left - 1, &u, out);
            }
        }
    }
    let mut out = Vec::new();
    rec(members, 0, cap.max(1), &Instance::new(), &mut out);
    out
}

/// Union size cap shared by the GCWA\* engine call and its oracle.
const UNION_CAP: usize = 2;

/// Race one scenario through every check; panics on any disagreement.
pub fn race_scenario(sc: &Scenario) -> ScenarioReport {
    let label = &sc.name;
    let mut report = ScenarioReport::default();

    // 1. Round-trip identity.
    let text = sc.to_text();
    let reparsed = Scenario::parse(&text).unwrap_or_else(|e| {
        panic!(
            "{label}: printed text fails to parse: {}\n{text}",
            e.render(&text)
        )
    });
    assert_eq!(*sc, reparsed, "{label}: parse(print(s)) != s\n{text}");
    assert_eq!(
        text,
        reparsed.to_text(),
        "{label}: canonical text is not a printing fixpoint"
    );

    // 2. Chase race (constraints included).
    let naive = canonical_solution_with_deps_via(
        &NaiveChase,
        &sc.mapping,
        &sc.constraints,
        &sc.source,
        DEFAULT_CHASE_LIMIT,
    );
    let indexed = canonical_solution_with_deps_via(
        &IndexedChase,
        &sc.mapping,
        &sc.constraints,
        &sc.source,
        DEFAULT_CHASE_LIMIT,
    );
    assert_eq!(
        std::mem::discriminant(&naive.outcome),
        std::mem::discriminant(&indexed.outcome),
        "{label}: chase outcomes diverge: naive {:?} vs indexed {:?}\n{text}",
        naive.outcome,
        indexed.outcome,
    );
    match naive.outcome {
        ChaseOutcome::Satisfied => report.chase_satisfied = true,
        ChaseOutcome::Failed { .. } => report.chase_failed = true,
        ChaseOutcome::StepLimit => {
            panic!("{label}: weakly acyclic constraints must terminate\n{text}")
        }
    }
    if report.chase_satisfied {
        for (engine_name, engine) in [
            ("naive", &NaiveChase as &dyn ChaseStrategy),
            ("indexed", &IndexedChase as &dyn ChaseStrategy),
        ] {
            assert!(
                engine.satisfies(&naive.instance, &sc.constraints)
                    && engine.satisfies(&indexed.instance, &sc.constraints),
                "{label}: {engine_name} rejects a chase result\n{text}"
            );
        }
        assert!(
            ann_hom_equivalent(&naive.instance, &indexed.instance),
            "{label}: chase results are not hom-equivalent\nnaive:\n{}\nindexed:\n{}\n{text}",
            naive.instance,
            indexed.instance,
        );
        let core_n = ann_core_of(&naive.instance).core;
        let core_i = ann_core_of(&indexed.instance).core;
        assert!(
            ann_isomorphic(&core_n, &core_i).is_some(),
            "{label}: annotated cores are not isomorphic\n{text}"
        );
    }

    // 3–6. Query regimes (constraint-free semantics, as the pipelines define
    // them). Members are enumerated once per scenario and reused.
    let budget = scenario_budget(sc);
    let csol = canonical_solution(&sc.mapping, &sc.source);
    let mut palette: BTreeSet<ConstId> = sc.source.adom_consts();
    for nq in &sc.queries {
        palette.extend(nq.query.formula.constants());
    }
    let members = enumerate_members(&csol.instance, &palette, &budget);
    report.members = members.len();
    let (fast_minimal, min_comp) = minimal_rep_a_members(&csol.instance, &palette, None);
    assert_eq!(
        min_comp,
        Completeness::Exact,
        "{label}: minimal enumeration capped"
    );
    let unions = subsets_up_to(&fast_minimal, UNION_CAP);
    let regime_budget = RegimeBudget {
        max_union_size: UNION_CAP,
        max_minimal_solutions: usize::MAX,
        max_leaves: None,
    };

    for nq in &sc.queries {
        let (query, qname) = (&nq.query, &nq.name);
        report.queries += 1;
        let cands = candidates(&sc.source, query);

        // Certain answers: shared pipeline vs naive-chase-routed pipeline.
        let (cert, _) = certain_answers(&sc.mapping, &sc.source, query, Some(&budget));
        let (cert_naive, _) =
            certain_answers_via(&NaiveChase, &sc.mapping, &sc.source, query, Some(&budget));
        assert_eq!(
            cert, cert_naive,
            "{label} {qname}: certain answers diverge across chase strategies\n{text}"
        );
        let cert_set: BTreeSet<Tuple> = cert.iter().cloned().collect();

        // Positive queries: Proposition 3 — certain == naive tree-walk
        // evaluation on CSol, restricted to ground candidates.
        if classify::is_positive(&query.formula) {
            let csol_rel = csol.rel_part();
            let prop3: BTreeSet<Tuple> = cands
                .iter()
                .filter(|t| query.holds_on(&csol_rel, t))
                .cloned()
                .collect();
            assert_eq!(
                cert_set, prop3,
                "{label} {qname}: certain answers disagree with the Prop. 3 oracle\n{text}"
            );
        }

        // Possible answers: engine vs any-member witness over the engine's
        // exact palette (query constants ∪ tuple constants) and budget.
        for t in cands.iter().take(2) {
            let mut t_palette: BTreeSet<ConstId> = query.formula.constants();
            t_palette.extend(t.consts());
            let t_members = enumerate_members(&csol.instance, &t_palette, &budget);
            let oracle_possible = t_members.iter().any(|m| query.holds_on(m, t));
            let engine_possible =
                possible_contains(&sc.mapping, &sc.source, query, t, Some(&budget));
            assert_eq!(
                engine_possible.certain, oracle_possible,
                "{label} {qname}: possible_contains({t}) disagrees with the member oracle\n{text}"
            );
        }

        // GCWA*: compiled engine vs materialized-union tree-walk oracle.
        let gcwa = gcwa_star_answers(&sc.mapping, &sc.source, query, &regime_budget);
        let gcwa_set: BTreeSet<Tuple> = gcwa.answers.iter().cloned().collect();
        let union_oracle: BTreeSet<Tuple> = cands
            .iter()
            .filter(|t| unions.iter().all(|u| query.holds_on(u, t)))
            .cloned()
            .collect();
        assert_eq!(
            gcwa_set, union_oracle,
            "{label} {qname}: GCWA* answers disagree with the union oracle\n{text}"
        );
        assert_eq!(
            gcwa.minimal_solutions,
            fast_minimal.len(),
            "{label} {qname}"
        );
        if classify::is_positive(&query.formula) {
            assert_eq!(
                gcwa_set, cert_set,
                "{label} {qname}: GCWA* must equal certain answers on positive queries\n{text}"
            );
        }
        for t in cands.iter().take(2) {
            let dec = gcwa_star_contains(&sc.mapping, &sc.source, query, t, &regime_budget);
            assert_eq!(dec.certain, gcwa_set.contains(t), "{label} {qname} {t}");
            if let Some(cex) = dec.counterexample {
                assert!(
                    !query.holds_on(&cex, t),
                    "{label} {qname}: counterexample must falsify {t}\n{text}"
                );
            }
        }

        // Approximation bracket: lower ⊆ exact ⊆ upper over the budgeted
        // member space, closing under exhaustive sampling.
        let exact: BTreeSet<Tuple> = cands
            .iter()
            .filter(|t| members.iter().all(|m| query.holds_on(m, t)))
            .cloned()
            .collect();
        let approx = approx_certain_answers(&sc.mapping, &sc.source, query, Some(&budget));
        let lower: BTreeSet<Tuple> = approx.lower.iter().cloned().collect();
        let upper: BTreeSet<Tuple> = approx.upper.iter().cloned().collect();
        assert!(
            lower.is_subset(&exact),
            "{label} {qname}: approx lower ⊄ exact\nlower={lower:?}\nexact={exact:?}\n{text}"
        );
        assert!(
            exact.is_subset(&upper),
            "{label} {qname}: exact ⊄ approx upper\nexact={exact:?}\nupper={upper:?}\n{text}"
        );
        if approx.completeness == Completeness::Exact {
            assert_eq!(
                upper, exact,
                "{label} {qname}: exhaustive sampling must close the upper bound\n{text}"
            );
        }
        if approx.tight {
            assert_eq!(
                lower, upper,
                "{label} {qname}: tight bracket must coincide\n{text}"
            );
        }
    }

    // 7. Streaming race: replay the scenario's update batches through the
    // incremental pipeline, racing every maintained artifact against a
    // recompute-from-scratch after each batch. (Sources with labeled nulls
    // sit outside the streaming contract — `IncrementalExchange` requires
    // ground sources — so those scenarios skip this leg.)
    if !sc.updates.is_empty() && sc.source.is_ground() {
        let mut sess = StreamSession::new(
            sc.mapping.clone(),
            sc.constraints.clone(),
            sc.source.clone(),
        );
        sess.set_search_budget(Some(budget.clone()));
        for nq in &sc.queries {
            sess.register(&nq.name, nq.query.clone(), StreamRegime::Certain);
        }
        let mut rolling = sc.source.clone();
        for nu in &sc.updates {
            report.updates += 1;
            let rep = sess.update(&nu.update);
            report.delta_paths += rep
                .queries
                .iter()
                .filter(|(_, p)| matches!(p, QueryPath::DeltaPlan { .. }))
                .count();
            nu.update.apply(&mut rolling);

            // Maintained canonical solution vs scratch recompute.
            let scratch = canonical_solution(&sc.mapping, &rolling);
            assert!(
                ann_hom_equivalent(sess.exchange().csol(), &scratch.instance),
                "{label} update {:?}: maintained csol is not hom-equivalent to recompute\n\
                 maintained:\n{}\nscratch:\n{}\n{text}",
                nu.name,
                sess.exchange().csol(),
                scratch.instance,
            );

            // Chased target (constraints): outcome kind + hom-equivalence.
            if !sc.constraints.is_empty() {
                let scratch_deps = canonical_solution_with_deps_via(
                    &IndexedChase,
                    &sc.mapping,
                    &sc.constraints,
                    &rolling,
                    DEFAULT_CHASE_LIMIT,
                );
                let inc_outcome = sess.exchange().chase_outcome();
                assert_eq!(
                    std::mem::discriminant(&inc_outcome),
                    std::mem::discriminant(&scratch_deps.outcome),
                    "{label} update {:?}: chase outcomes diverge: incremental {:?} vs \
                     scratch {:?}\n{text}",
                    nu.name,
                    inc_outcome,
                    scratch_deps.outcome,
                );
                if matches!(scratch_deps.outcome, ChaseOutcome::Satisfied) {
                    let chased = sess.exchange().chased();
                    assert!(
                        ann_hom_equivalent(&chased, &scratch_deps.instance),
                        "{label} update {:?}: chased targets are not hom-equivalent\n\
                         maintained:\n{chased}\nscratch:\n{}\n{text}",
                        nu.name,
                        scratch_deps.instance,
                    );
                }
            }

            // Maintained certain answers vs the batch pipeline, per query.
            // Capped sweeps are cut off mid-enumeration and the order is
            // legitimately permuted by the maintained csol's renamed nulls
            // (DRed re-derivation mints fresh ids), so identity holds —
            // and is asserted — only when both sides complete.
            for nq in &sc.queries {
                let (got, gc) = sess.answers(&nq.name).expect("registered");
                let (want, wc) = certain_answers(&sc.mapping, &rolling, &nq.query, Some(&budget));
                if gc == Completeness::Capped || wc == Completeness::Capped {
                    continue;
                }
                assert_eq!(
                    got, want,
                    "{label} update {:?} {}: maintained certain answers diverge from \
                     recompute\n{text}",
                    nu.name, nq.name,
                );
            }
        }
    }

    report
}

/// Run `seeds × grades` generated scenarios through [`race_scenario`],
/// aggregating statistics. Panics on the first disagreement.
pub fn run_corpus(seeds: std::ops::Range<u64>, grades: &[Grade]) -> CorpusStats {
    let mut stats = CorpusStats::default();
    for &grade in grades {
        for seed in seeds.clone() {
            let sc = dx_text::gen(seed, grade);
            let text_bytes = sc.to_text().len();
            let report = race_scenario(&sc);
            stats.absorb(grade, text_bytes, &report);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_two_seeds_every_grade() {
        let stats = run_corpus(0..2, &Grade::ALL);
        assert_eq!(stats.scenarios, 8);
        assert!(stats.queries >= 16);
        assert!(stats.members > 0);
        assert_eq!(stats.updates, 16, "every scenario replays its two batches");
    }

    #[test]
    fn stats_json_shape() {
        let stats = run_corpus(0..1, &[Grade::new(0)]);
        let json = stats.to_json();
        assert!(json.contains("\"scenarios\": 1"));
        assert!(json.contains("\"per_grade\""));
    }
}
