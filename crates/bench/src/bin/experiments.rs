//! The experiment harness: regenerates, for every claim in the paper's
//! "evaluation" (Theorems 1–5, Table 1, Propositions 2–7), the table that
//! claim predicts. Output is markdown, ready for `EXPERIMENTS.md`; the
//! chase-engine race (E15) additionally writes the machine-readable
//! `BENCH_chase.json` perf-trajectory file.
//!
//! ```sh
//! cargo run --release -p dx-bench --bin experiments           # everything
//! cargo run --release -p dx-bench --bin experiments -- chase  # E15 only
//! cargo run --release -p dx-bench --bin experiments -- query  # E16 + E17 only
//! cargo run --release -p dx-bench --bin experiments -- smoke  # CI smoke:
//! #   E15 + E16 + E17 at tiny sizes; writes target/smoke/BENCH_*.smoke.json
//! #   (uploaded as CI artifacts, the recorded trajectories stay untouched);
//! #   asserts every indexed/compiled engine oracle-identical to its
//! #   baseline AND at/above the parity floor (SMOKE_PARITY_FLOOR, default
//! #   0.5×); also writes metrics.smoke.json + trace.smoke.json there
//! cargo run --release -p dx-bench --bin experiments -- explain seeded
//! #   EXPLAIN one query workload: print its compiled plan tree annotated
//! #   with per-node executed-row/call (and seed partition/re-run) counts;
//! #   repa/gcwa/approx additionally get a conditional (c-table) report and
//! #   their regime sweep; with DX_TRACE=1 the run writes a Chrome
//! #   trace_event timeline to trace.explain.json
//! cargo run --release -p dx-bench --bin experiments -- trace  # dedicated
//! #   timeline capture: one representative slice of every subsystem
//! #   (indexed chase, compiled query, Rep_A search) with the trace gate
//! #   forced on; writes trace.json (chrome://tracing / ui.perfetto.dev)
//! cargo run --release -p dx-bench --bin experiments -- report # cross-run
//! #   regression analytics: committed BENCH_chase.json/BENCH_query.json as
//! #   baseline vs the freshest smoke rows as candidate, joined on
//! #   (workload, stage, engine, n, threads); writes target/smoke/
//! #   report.smoke.{md,json} and exits nonzero on hard regressions
//! #   (BENCH_REGRESSION_FACTOR)
//! ```
//!
//! Threads axis (`DX_THREADS`): the engine races and their work-identity
//! gates pin the work-stealing pool to one worker (the sequential
//! semantics every counter invariant is stated against); the
//! `repa`/`gcwa`/`seeded` races then re-run their pool-backed arm at
//! `threads ∈ {2, 4}`, assert the output bit-identical to the pinned run
//! (the determinism contract), and emit rows carrying a `"threads"` field
//! (1 on every other row). Everything outside those races runs at the
//! ambient width — `DX_THREADS` if set, else the machine's parallelism.
//!
//! Observability (`dx-obs`): with `DX_OBS=1` every BENCH row additionally
//! carries a `"counters"` object of work-metric counters captured from one
//! untimed run of that arm (the best-of timing loops stay uninstrumented
//! beyond dx-obs's always-compiled-in relaxed-atomic sites) and a
//! `"gauges"` object of memory-accounting readings (instance tuples/nulls,
//! delta-store slots/postings/refcounts, plan-catalog entries/bytes; see
//! `dx_obs::mem`). Smoke mode force-enables the metrics layer, writes the
//! final registry snapshot to `target/smoke/metrics.smoke.json` (a CI
//! artifact), and asserts the work-metric counters of every oracle-identity
//! race bit-identical across its two arms — the engines must do the *same
//! semantic work*, not just return the same answers. The trace gate stays
//! off during the timed races (the parity gates measure the engines, not
//! the tracer); the smoke timeline comes from a separate traced slice.

use dx_bench::{
    closed_null_mapping, copy2, exhaust_query, fd_query, fmt_duration, open_null_mapping,
    path_source, timed, unary_source, Table,
};
use dx_chase::Mapping;
use dx_core::compose::comp_membership;
use dx_core::compose_alg::compose_skstd;
use dx_core::skstd::SkMapping;
use dx_core::{certain, non_closure, semantics};
use dx_relation::{Instance, Tuple, Value};
use dx_solver::{Completeness, SearchBudget};
use dx_workloads::{coloring, conference, tiling, tripartite};
use std::time::Duration;

/// The full `BENCH_chase.json` sweep axis (ROADMAP: keep extending).
const CHASE_NS: &[usize] = &[8, 16, 32, 64, 96, 128, 192, 256];
/// The full `BENCH_query.json` sweep axis.
const QUERY_NS: &[usize] = &[8, 16, 32, 64, 96, 128, 192, 256];
/// Tiny sizes for the CI smoke run (writes `BENCH_*.smoke.json`).
const SMOKE_NS: &[usize] = &[8, 16];
/// Where the smoke run drops its CI artifacts (records, metrics, trace,
/// regression report) — under `target/` so the repo root stays clean.
const SMOKE_DIR: &str = "target/smoke";
/// The threads bench axis: pool widths the `repa`/`gcwa`/`seeded` races
/// re-run their pool-backed arm at (beyond the pinned `threads = 1` arm
/// every row records by default).
const THREAD_WIDTHS: &[usize] = &[2, 4];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "explain") {
        let workload = args
            .get(pos + 1)
            .map(String::as_str)
            .unwrap_or("membership");
        run_explain(workload);
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "report") {
        let chase_cand = args
            .get(pos + 1)
            .cloned()
            .unwrap_or_else(|| format!("{SMOKE_DIR}/BENCH_chase.smoke.json"));
        let query_cand = args
            .get(pos + 2)
            .cloned()
            .unwrap_or_else(|| format!("{SMOKE_DIR}/BENCH_query.smoke.json"));
        run_report(&chase_cand, &query_cand);
        return;
    }
    if std::env::args().any(|a| a == "trace") {
        println!("# oc-exchange timeline trace (representative slice, DX_TRACE forced on)\n");
        dx_obs::set_trace_enabled(true);
        run_traced_pipeline();
        dx_obs::set_trace_enabled(false);
        write_trace("trace.json");
        return;
    }
    if std::env::args().any(|a| a == "chase") {
        println!("# oc-exchange chase-engine race (E15 only)\n");
        e15_chase_engines(CHASE_NS, Some("BENCH_chase.json"), false);
        return;
    }
    if std::env::args().any(|a| a == "stream") {
        // E18 alone, full sizes, no JSON rewrite — the debugging face for
        // the streaming race (the recorded rows come from `query`).
        println!("# oc-exchange streaming race (E18 only, full sizes)\n");
        e18_stream(QUERY_NS, false);
        return;
    }
    if std::env::args().any(|a| a == "query") {
        println!("# oc-exchange query-engine race (E16 + E17 + E18 only)\n");
        println!(
            "(pool: {} ambient worker(s) via DX_THREADS; engine races pin to 1, \
             threads axis sweeps {THREAD_WIDTHS:?})\n",
            rayon::current_num_threads()
        );
        let mut records = e16_query_engines(QUERY_NS, false);
        records.extend(e17_regimes(QUERY_NS, false));
        records.extend(e18_stream(QUERY_NS, false));
        write_query_json(&records, "BENCH_query.json");
        print_catalog_stats();
        return;
    }
    if std::env::args().any(|a| a == "smoke") {
        // The CI gate: exercise every BENCH-emitting path end to end at
        // small sizes. The recorded trajectories stay untouched — smoke
        // rows go to `BENCH_*.smoke.json`, which CI uploads as artifacts.
        // Every race asserts oracle identity as always; smoke mode
        // additionally enforces the parity floor (an indexed/compiled
        // engine dropping below `SMOKE_PARITY_FLOOR` × its baseline fails
        // the run), and E17 cross-checks the regimes against brute-force
        // oracles.
        println!("# oc-exchange bench smoke (E15 + E16 + E17 + E18, tiny sizes)\n");
        println!(
            "(pool: {} ambient worker(s) via DX_THREADS; engine races pin to 1, \
             threads axis sweeps {THREAD_WIDTHS:?})\n",
            rayon::current_num_threads()
        );
        // Smoke always runs with the metrics layer on: the work-identity
        // gates and the BENCH-row counter/gauge fields depend on it, and
        // the registry snapshot becomes the `metrics.smoke.json` CI
        // artifact. Every smoke output lands under `target/smoke/`.
        dx_obs::set_enabled(true);
        std::fs::create_dir_all(SMOKE_DIR).unwrap_or_else(|e| panic!("create {SMOKE_DIR}: {e}"));
        let chase_path = format!("{SMOKE_DIR}/BENCH_chase.smoke.json");
        e15_chase_engines(SMOKE_NS, Some(&chase_path), true);
        let mut records = e16_query_engines(SMOKE_NS, true);
        records.extend(e17_regimes(SMOKE_NS, true));
        records.extend(e18_stream(SMOKE_NS, true));
        write_query_json(&records, &format!("{SMOKE_DIR}/BENCH_query.smoke.json"));
        print_catalog_stats();
        let snapshot = dx_obs::snapshot();
        assert!(!snapshot.is_empty(), "smoke must record work metrics");
        assert!(
            snapshot.gauge(dx_obs::mem::names::INSTANCE_TUPLES) > 0
                && snapshot.gauge(dx_obs::mem::names::DELTA_LIVE_SLOTS) > 0
                && snapshot.gauge(dx_obs::mem::names::CATALOG_ENTRIES) > 0,
            "smoke must record memory gauges for every accounted subsystem"
        );
        let metrics_path = format!("{SMOKE_DIR}/metrics.smoke.json");
        std::fs::write(&metrics_path, snapshot.to_json())
            .unwrap_or_else(|e| panic!("write {metrics_path}: {e}"));
        println!("Metrics snapshot written to {metrics_path}.");
        // The smoke timeline: a traced slice of every subsystem, captured
        // *after* the races so the tracer never skews the parity gates.
        dx_obs::set_trace_enabled(true);
        run_traced_pipeline();
        dx_obs::set_trace_enabled(false);
        write_trace(&format!("{SMOKE_DIR}/trace.smoke.json"));
        return;
    }
    println!("# oc-exchange experiment run\n");
    println!("(release-mode sweep; every row records paper-predicted vs measured behaviour)\n");
    e1_membership();
    e2_positive();
    e3_deqa();
    e4_composition_table1();
    e5_sk_composition();
    e6_universal();
    e7_non_closure();
    e8_spectrum();
    e9_tripartite();
    e10_coloring();
    e11_tiling();
    e12_codd();
    e13_datalog();
    e14_ctables();
    e15_chase_engines(CHASE_NS, Some("BENCH_chase.json"), false);
    let mut records = e16_query_engines(QUERY_NS, false);
    records.extend(e17_regimes(QUERY_NS, false));
    records.extend(e18_stream(QUERY_NS, false));
    write_query_json(&records, "BENCH_query.json");
    print_catalog_stats();
}

/// The smoke-mode regression gate: an indexed/compiled engine must stay at
/// or above `SMOKE_PARITY_FLOOR` × its baseline (default 0.5× — parity
/// with 2× timing-noise slack; raise it to tighten the gate). Sub-noise
/// measurements do not gate: when the baseline itself runs below
/// `SMOKE_PARITY_MIN_BASELINE_US` (default 25 µs) a single scheduler
/// hiccup on a shared CI runner dwarfs the signal, so the check is skipped
/// with a note instead of failing spuriously. Full sweeps never gate: the
/// recorded `BENCH_*.json` trajectories are the perf-trajectory story
/// there.
fn assert_smoke_parity(smoke: bool, what: &str, n: usize, baseline: Duration, fast: Duration) {
    if !smoke {
        return;
    }
    let env_f64 = |key: &str, default: f64| -> f64 {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let min_baseline_us = env_f64("SMOKE_PARITY_MIN_BASELINE_US", 25.0);
    if (baseline.as_secs_f64() * 1e6) < min_baseline_us {
        println!("(parity gate skipped for {what} n={n}: baseline {baseline:?} below noise floor)");
        return;
    }
    let floor = env_f64("SMOKE_PARITY_FLOOR", 0.5);
    let speedup = baseline.as_secs_f64() / fast.as_secs_f64().max(1e-9);
    assert!(
        speedup >= floor,
        "{what} n={n}: speedup {speedup:.2}× fell below the smoke parity floor {floor:.2}× \
         (baseline {baseline:?}, fast path {fast:?})"
    );
}

/// The threads-axis smoke gate: a pool-backed arm at `threads > 1` must
/// stay at or above `SMOKE_THREADS_PARITY_FLOOR` × the pinned
/// (`threads = 1`) arm. The default floor is 0.2× — deliberately looser
/// than the engine-race floor, because a single-core CI runner cannot
/// realise any parallel win and pays pure spawn/steal overhead per sweep;
/// the gate bounds that overhead (≤ 5×) rather than demanding a speedup.
/// On a multi-core host the same gate passes with headroom, and the
/// recorded rows carry the honest wall-clock either way. Shares the
/// sub-noise skip with [`assert_smoke_parity`].
fn assert_threads_parity(
    smoke: bool,
    what: &str,
    n: usize,
    threads: usize,
    pinned: Duration,
    pooled: Duration,
) {
    if !smoke {
        return;
    }
    let env_f64 = |key: &str, default: f64| -> f64 {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let min_baseline_us = env_f64("SMOKE_PARITY_MIN_BASELINE_US", 25.0);
    if (pinned.as_secs_f64() * 1e6) < min_baseline_us {
        println!(
            "(threads parity gate skipped for {what} n={n} threads={threads}: \
             pinned arm {pinned:?} below noise floor)"
        );
        return;
    }
    let floor = env_f64("SMOKE_THREADS_PARITY_FLOOR", 0.2);
    let ratio = pinned.as_secs_f64() / pooled.as_secs_f64().max(1e-9);
    assert!(
        ratio >= floor,
        "{what} n={n} threads={threads}: pool ratio {ratio:.2}× fell below the threads \
         parity floor {floor:.2}× (pinned {pinned:?}, pooled {pooled:?})"
    );
}

/// Surface the shared `PlanCatalog`'s usage counters — including lowering
/// rejections per reason class, so fragment gaps show up in bench/CI logs
/// instead of silently tree-walking.
fn print_catalog_stats() {
    let stats = dx_query::PlanCatalog::shared().stats();
    println!(
        "Plan catalog: {} entries, {} hits, {} misses, {} rejections.",
        stats.entries,
        stats.hits,
        stats.misses,
        stats.rejected()
    );
    for (reason, count) in &stats.rejections {
        println!("  rejection[{reason}] = {count}");
    }
    println!();
}

/// The work-metric counters attached to chase BENCH rows (`DX_OBS=1`).
const CHASE_COUNTERS: &[&str] = &[
    "engine.chase.triggers_discovered",
    "engine.chase.triggers_fired",
    "engine.chase.tuples_inserted",
    "engine.chase.index_probes",
    "engine.chase.merges",
];
/// The work-metric counters attached to query-evaluation BENCH rows.
const QUERY_COUNTERS: &[&str] = &[
    "query.exec.rows_scanned",
    "query.exec.rows_joined",
    "query.exec.rows_emitted",
    "query.exec.index_probes",
    "query.exec.seed_partitions",
    "query.exec.seed_reruns",
];
/// The work-metric counters attached to `Rep_A`-search BENCH rows.
const SOLVER_COUNTERS: &[&str] = &[
    "solver.dfs.nodes",
    "solver.dfs.leaves",
    "solver.dfs.deltas_applied",
    "solver.dfs.deltas_undone",
];
/// The work-metric counters attached to GCWA\*-regime BENCH rows.
const UNION_COUNTERS: &[&str] = &[
    "solver.union.unions_visited",
    "solver.union.deltas_applied",
    "solver.union.deltas_undone",
    "solver.dfs.leaves",
];

/// The memory gauges attached to chase BENCH rows: the chased instance's
/// footprint, published by `dx-engine` when a run completes.
const CHASE_GAUGES: &[&str] = &[
    dx_obs::mem::names::INSTANCE_TUPLES,
    dx_obs::mem::names::INSTANCE_NULLS,
];
/// The memory gauges attached to query-evaluation BENCH rows: the shared
/// plan catalog's footprint (refreshed by [`captured_counters`]).
const QUERY_GAUGES: &[&str] = &[
    dx_obs::mem::names::CATALOG_ENTRIES,
    dx_obs::mem::names::CATALOG_EST_BYTES,
];
/// The memory gauges attached to search/regime BENCH rows: the solver's
/// delta-store footprint, published when a sweep unwinds.
const SOLVER_GAUGES: &[&str] = &[
    dx_obs::mem::names::DELTA_LIVE_SLOTS,
    dx_obs::mem::names::DELTA_POSTING_ENTRIES,
    dx_obs::mem::names::DELTA_REFCOUNT_TOTAL,
];

/// Run `f` once and capture the work-metric counter delta it produced
/// (`None` when the metrics layer is disabled — then no extra run-cost
/// beyond `f` itself is paid either). Also refreshes the plan catalog's
/// footprint gauges so the captured snapshot carries current readings
/// (instance/delta gauges are published by the engines inside `f`).
fn captured_counters<T>(f: impl FnOnce() -> T) -> (T, Option<dx_obs::MetricsSnapshot>) {
    if !dx_obs::enabled() {
        return (f(), None);
    }
    let before = dx_obs::snapshot();
    let out = f();
    let _ = dx_query::PlanCatalog::shared().stats();
    (out, Some(dx_obs::snapshot().diff_since(&before)))
}

/// Render the `"counters"` field of a BENCH row: the named work-metric
/// counters with the values captured from the arm's untimed run (zero when
/// the arm never touched a metric — the naive/tree baselines are largely
/// uninstrumented by design). Empty when the metrics layer is disabled, so
/// the recorded trajectory format is unchanged by default.
fn counters_field(diff: &Option<dx_obs::MetricsSnapshot>, names: &[&str]) -> String {
    match diff {
        None => String::new(),
        Some(d) => {
            let body = names
                .iter()
                .map(|n| format!("\"{n}\": {}", d.counter(n)))
                .collect::<Vec<_>>()
                .join(", ");
            format!(", \"counters\": {{{body}}}")
        }
    }
}

/// Render the `"gauges"` field of a BENCH row: the named memory-accounting
/// gauges at their last-published reading (current footprint, not a delta —
/// see `dx_obs::mem`). Empty when the metrics layer is disabled, keeping
/// the recorded trajectory format unchanged by default.
fn gauges_field(diff: &Option<dx_obs::MetricsSnapshot>, names: &[&str]) -> String {
    match diff {
        None => String::new(),
        Some(d) => {
            let body = names
                .iter()
                .map(|n| format!("\"{n}\": {}", d.gauge(n)))
                .collect::<Vec<_>>()
                .join(", ");
            format!(", \"gauges\": {{{body}}}")
        }
    }
}

/// In smoke mode, assert the named work-metric counters bit-identical
/// across the two arms of an oracle-identity race: agreeing on answers is
/// not enough — the arms must have done the same semantic work.
fn assert_work_identity(
    smoke: bool,
    what: &str,
    n: usize,
    names: &[&str],
    baseline: &Option<dx_obs::MetricsSnapshot>,
    fast: &Option<dx_obs::MetricsSnapshot>,
) {
    if !smoke {
        return;
    }
    let (Some(b), Some(f)) = (baseline, fast) else {
        panic!("{what} n={n}: smoke work-identity gate needs the metrics layer on");
    };
    for name in names {
        assert_eq!(
            b.counter(name),
            f.counter(name),
            "{what} n={n}: work metric {name} diverged across the race arms"
        );
    }
}

/// One `BENCH_query.json` row (shared by E16 and E17; `rows` records the
/// stage's cardinality — answer rows for the evaluation stages, leaf/union/
/// member counts for the search and regime races; `threads` is the pool
/// width the arm ran at (1 = the pinned sequential semantics); `counters`
/// is the pre-rendered work-metric field, empty when dx-obs is disabled).
#[allow(clippy::too_many_arguments)]
fn query_row(
    workload: &str,
    stage: &str,
    engine: &str,
    n: usize,
    threads: usize,
    us: u128,
    rows: usize,
    counters: &str,
) -> String {
    format!(
        "  {{\"workload\": \"{workload}\", \"stage\": \"{stage}\",          \"engine\": \"{engine}\", \"n\": {n}, \"threads\": {threads}, \"wall_time_us\": {us},          \"rows\": {rows}{counters}}}"
    )
}

/// `experiments -- explain <workload>`: compile the workload's query, run
/// it over the workload's canonical solution with per-node capture on, and
/// print the plan tree annotated with executed-row/call (and seed
/// partition/re-run) counts — the EXPLAIN face of the dx-obs layer. The
/// canonical solution is built through the indexed chase engine, so a
/// `DX_TRACE=1` run records the chase-round spans in front of the plan
/// execution; the regime workloads (`repa`/`gcwa`/`approx`) additionally
/// get a conditional (c-table) report over `CSol_A(S)` and their regime
/// sweep (the solver phases). With the trace gate on the whole run is
/// exported to `trace.explain.json` (Chrome trace_event format).
fn run_explain(workload: &str) {
    use dx_bench::query_workloads::{
        all_query_cases, approx_case, gcwa_case, repa_case, seeded_case,
    };
    use dx_chase::canonical_solution_with_deps_via;
    use dx_chase::chase_engine::ChaseOutcome;
    use dx_engine::IndexedChase;

    // A `.dx` scenario file works anywhere a workload name does: every
    // query in the file gets the same ground EXPLAIN over its canonical
    // solution.
    if workload.ends_with(".dx") {
        run_explain_dx(workload);
        return;
    }
    if workload == "stream" {
        run_explain_stream();
        return;
    }

    let n = 32;
    let case = match workload {
        "seeded" => seeded_case(n),
        "repa" => repa_case(n),
        "gcwa" => gcwa_case(n),
        "approx" => approx_case(n),
        other => all_query_cases(n)
            .into_iter()
            .find(|c| c.workload == other)
            .unwrap_or_else(|| {
                panic!(
                    "unknown workload {other:?}; try membership, join, seeded, \
                     repa, gcwa, approx, or stream"
                )
            }),
    };
    let chased = canonical_solution_with_deps_via(
        &IndexedChase,
        &case.mapping,
        &[],
        &case.source,
        1_000_000,
    );
    assert_eq!(chased.outcome, ChaseOutcome::Satisfied, "{workload} chase");
    let ann = chased.instance;
    let target = ann.rel_part();
    let plan =
        dx_query::lower_formula(&case.query.formula).expect("workload query lowers to a plan");
    let idx = dx_relation::InstanceIndex::build(&target);
    let (rows, report) = dx_query::explain_run(&plan, &idx);
    println!("# EXPLAIN {} (n = {n})\n", case.workload);
    println!("## Ground execution over CSol(S)\n");
    println!("{}", report.render());
    println!(
        "\n{} result rows over CSol(S) ({} tuples).",
        rows.rows.len(),
        target.tuple_count()
    );

    if matches!(workload, "repa" | "gcwa" | "approx") {
        // The regime workloads carry nulls (and, for gcwa/approx, open
        // annotations): the same plan also runs in conditional mode, where
        // per-node rows bound the per-world row counts instead of equalling
        // them (guards travel with the tuples).
        let cinst = dx_ctables::CInstance::from_naive(&target);
        let (crows, creport) = dx_query::explain_run_conditional(&plan, &cinst);
        println!("\n## Conditional (c-table) execution over CSol_A(S)\n");
        println!("{}", creport.render());
        println!(
            "\n{} conditional rows ({} nulls in CSol_A(S)).",
            crows.rows.len(),
            ann.nulls().len()
        );
        explain_regime_sweep(workload, &case, &ann);
    }

    if dx_obs::trace_enabled() {
        let events_before_export = dx_obs::trace::len();
        write_trace("trace.explain.json");
        println!("({events_before_export} timeline events captured during this EXPLAIN.)");
    }
}

/// EXPLAIN for the stream workload: the ground plan over the initial
/// `CSol(S)`, then the delta protocol's per-batch decision — the derived
/// delta plan (`Δ`-scans are the recomputed frontier; every other node
/// re-reads the incrementally maintained store) or one of the documented
/// fallbacks (retraction / non-monotone occurrence / untouched skip).
fn run_explain_stream() {
    use dx_bench::query_workloads::stream_case;
    use dx_chase::canonical_solution;
    use dx_core::streaming::affected_target_rels;

    let n = 32;
    let case = stream_case(n);
    let csol = canonical_solution(&case.mapping, &case.source);
    let target = csol.rel_part();
    let plan = dx_query::lower_formula(&case.query.formula).expect("stream query lowers");
    let idx = dx_relation::InstanceIndex::build(&target);
    let (rows, report) = dx_query::explain_run(&plan, &idx);
    println!("# EXPLAIN stream (n = {n})\n");
    println!("## Ground execution over the initial CSol(S)\n");
    println!("{}", report.render());
    println!(
        "\n{} result rows over CSol(S) ({} tuples).",
        rows.rows.len(),
        target.tuple_count()
    );
    println!("\n## Delta plans per update batch\n");
    println!(
        "Node labels: a scan on an `R$delta` symbol reads the batch's fresh\n\
         tuples — the *recomputed* frontier; every other node *maintains*:\n\
         it re-reads the incrementally kept post-update store. The union of\n\
         one redirected copy per changed-scan occurrence finds every answer\n\
         a new tuple can witness.\n"
    );
    for (i, up) in case.updates.iter().enumerate() {
        let changed = affected_target_rels(&case.mapping, up);
        let names: Vec<String> = changed.iter().map(|r| r.to_string()).collect();
        let kind = if up.retracts().count() == 0 {
            "insert-only"
        } else {
            "churn"
        };
        println!("### batch {i} ({kind}; touches {{{}}})\n", names.join(", "));
        if up.retracts().count() > 0 {
            println!(
                "retraction present: a maintained answer set cannot shrink by\n\
                 union, so the session recomputes this batch (fallback arm of\n\
                 the delta protocol).\n"
            );
            continue;
        }
        match dx_query::delta_plan(&plan, &changed) {
            None => println!(
                "changed relation under a refuting anti-join branch: delta\n\
                 maintenance is unsound here — fallback = recompute.\n"
            ),
            Some(dx_query::Plan::Empty { .. }) => {
                println!("query reads none of the changed relations: maintained as-is (skip).\n");
            }
            Some(dp) => println!("{dp}\n"),
        }
    }
}

/// EXPLAIN over a `.dx` scenario file: chase it (constraints included) and
/// print the ground per-node executed-row report for every query in the
/// file. Queries outside the safe-range fragment are reported, not planned.
fn run_explain_dx(path: &str) {
    use dx_chase::canonical_solution_with_deps_via;
    use dx_chase::chase_engine::ChaseOutcome;
    use dx_engine::IndexedChase;

    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let sc =
        dx_text::Scenario::parse(&text).unwrap_or_else(|e| panic!("{path}: {}", e.render(&text)));
    let chased = canonical_solution_with_deps_via(
        &IndexedChase,
        &sc.mapping,
        &sc.constraints,
        &sc.source,
        1_000_000,
    );
    println!("# EXPLAIN {path} — scenario \"{}\"\n", sc.name);
    match chased.outcome {
        ChaseOutcome::Satisfied => {}
        ChaseOutcome::Failed { .. } => {
            println!("chase failed: an egd equates distinct constants; no solution exists.");
            return;
        }
        ChaseOutcome::StepLimit => {
            println!("chase hit its step limit; EXPLAIN has no solution to run over.");
            return;
        }
    }
    let ann = chased.instance;
    let target = ann.rel_part();
    for nq in &sc.queries {
        println!("## query {}\n", nq.name);
        match dx_query::lower_formula(&nq.query.formula) {
            Ok(plan) => {
                let idx = dx_relation::InstanceIndex::build(&target);
                let (rows, report) = dx_query::explain_run(&plan, &idx);
                println!("{}", report.render());
                println!(
                    "{} result rows over CSol(S) ({} tuples).\n",
                    rows.rows.len(),
                    target.tuple_count()
                );
            }
            Err(e) => {
                println!("(not safe-range; tree-walking oracle evaluates it: {e:?})\n");
            }
        }
    }
}

/// The regime phase of an EXPLAIN: run the sweep the workload's BENCH rows
/// actually race (the solver side the per-node plan report cannot see) and
/// summarize its work — with `DX_TRACE=1` this is what puts the solver-DFS
/// and union-walk phases on the exported timeline.
fn explain_regime_sweep(
    workload: &str,
    case: &dx_bench::query_workloads::QueryCase,
    ann: &dx_relation::AnnInstance,
) {
    use dx_core::regimes::{self, RegimeBudget};
    use dx_query::PlanCatalog;
    use dx_solver::search_rep_a_indexed;
    use std::collections::BTreeSet;

    match workload {
        "repa" => {
            let ev = PlanCatalog::shared().eval_in(&case.query, &case.mapping.target);
            let consts: BTreeSet<dx_relation::ConstId> =
                case.query.formula.constants().into_iter().collect();
            let empty = Tuple::new(Vec::<Value>::new());
            let out =
                search_rep_a_indexed(ann, &consts, &SearchBudget::closed_world(), &mut |leaf| {
                    !ev.holds_on_indexed(leaf.index(), leaf.instance(), &empty)
                });
            println!(
                "\n## Rep_A refutation sweep\n\n{} leaves explored, witness found: {} \
                 (certainly-true query — the sweep must exhaust).",
                out.leaves,
                out.witness.is_some()
            );
        }
        "gcwa" => {
            let out = regimes::gcwa_star_answers(
                &case.mapping,
                &case.source,
                &case.query,
                &RegimeBudget::unions_of(2),
            );
            println!(
                "\n## GCWA* union walk\n\n{} minimal solutions, {} unions visited, \
                 {} certain answer(s).",
                out.minimal_solutions,
                out.unions,
                out.answers.len()
            );
        }
        _ => {
            let sample = SearchBudget {
                max_leaves: None,
                ..SearchBudget::bounded(1, 1)
            };
            let out = regimes::approx_certain_answers(
                &case.mapping,
                &case.source,
                &case.query,
                Some(&sample),
            );
            println!(
                "\n## Approximation sweep\n\n{} sampled members, bracket: {} lower / \
                 {} upper answer(s), tight: {}.",
                out.leaves,
                out.lower.len(),
                out.upper.len(),
                out.tight
            );
        }
    }
}

/// One representative, deliberately small slice of every traced subsystem:
/// the indexed chase over each chase workload (chase-round instants,
/// fire/insert/merge spans), a compiled query execution (plan spans +
/// root-row instants), and a `Rep_A` refutation search (solver-DFS depth
/// milestones, delta-store spans). Used by the `trace` subcommand and the
/// smoke run's timeline artifact; callers turn the trace gate on first.
fn run_traced_pipeline() {
    use dx_bench::chase_workloads::all_cases;
    use dx_bench::query_workloads::{repa_case, seeded_case};
    use dx_chase::chase_engine::ChaseOutcome;
    use dx_chase::{canonical_solution, canonical_solution_with_deps_via};
    use dx_engine::IndexedChase;
    use dx_query::PlanCatalog;
    use dx_solver::search_rep_a_indexed;
    use std::collections::BTreeSet;

    let n = 16;
    for case in all_cases(n) {
        let out = canonical_solution_with_deps_via(
            &IndexedChase,
            &case.mapping,
            &case.deps,
            &case.source,
            1_000_000,
        );
        assert_eq!(out.outcome, ChaseOutcome::Satisfied, "{}", case.workload);
    }
    let case = seeded_case(n);
    let csol = canonical_solution(&case.mapping, &case.source).rel_part();
    let ev = PlanCatalog::shared().eval_in(&case.query, &case.mapping.target);
    let answers = ev.naive_certain_answers(&csol);
    assert!(!answers.is_empty(), "seeded trace slice must answer");
    let case = repa_case(n);
    let csol = canonical_solution(&case.mapping, &case.source);
    let ev = PlanCatalog::shared().eval_in(&case.query, &case.mapping.target);
    let consts: BTreeSet<dx_relation::ConstId> =
        case.query.formula.constants().into_iter().collect();
    let empty = Tuple::new(Vec::<Value>::new());
    let out = search_rep_a_indexed(
        &csol.instance,
        &consts,
        &SearchBudget::closed_world(),
        &mut |leaf| !ev.holds_on_indexed(leaf.index(), leaf.instance(), &empty),
    );
    assert!(out.witness.is_none(), "repa trace slice stays certain");
}

/// Drain the trace ring and write it as Chrome `trace_event` JSON — load
/// the file at `chrome://tracing` or <https://ui.perfetto.dev>.
fn write_trace(path: &str) {
    let dropped = dx_obs::trace::dropped();
    let events = dx_obs::trace::take_events();
    let json = dx_obs::trace::chrome_trace_json(&events);
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    let drop_note = if dropped > 0 {
        format!(" ({dropped} earlier events evicted by the bounded ring)")
    } else {
        String::new()
    };
    println!(
        "Chrome trace with {} events{drop_note} written to {path}.",
        events.len()
    );
}

/// One bench record, as parsed back from a `BENCH_*.json` file. Chase
/// files carry no `stage` field; the parser synthesizes `"chase"` so both
/// trajectories join on the same `(workload, stage, engine, n, threads)`
/// key. Rows recorded before the threads axis existed carry no
/// `"threads"` field; the parser defaults it to 1 (they were sequential
/// runs), so old baselines keep joining against new candidates.
#[derive(Clone, Debug, PartialEq, Eq)]
struct BenchRecord {
    workload: String,
    stage: String,
    engine: String,
    n: u64,
    threads: u64,
    us: u64,
}

/// Parse a machine-readable BENCH file back into records. The input is the
/// harness's own hand-rolled JSON (an array of flat objects with optional
/// nested `"counters"`/`"gauges"` objects), so this is a small depth-aware
/// scanner, not a general JSON reader — the workspace is dependency-free
/// by constraint, and machine-written keys/values never contain escapes.
fn parse_bench_records(src: &str, synth_stage: &str) -> Vec<BenchRecord> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'{' if !in_str => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            b'}' if !in_str => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(rec) = parse_bench_object(&src[start..=i], synth_stage) {
                        out.push(rec);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// One `{...}` bench row: collect the scalar fields at the row's own
/// depth, skipping nested objects wholesale.
fn parse_bench_object(row: &str, synth_stage: &str) -> Option<BenchRecord> {
    let bytes = row.as_bytes();
    let mut fields: Vec<(String, String)> = Vec::new();
    let mut i = 1; // past the opening '{'
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let ks = i + 1;
        let mut j = ks;
        while j < bytes.len() && bytes[j] != b'"' {
            j += 1;
        }
        let key = row.get(ks..j)?.to_string();
        i = j + 1;
        while i < bytes.len() && bytes[i] != b':' {
            i += 1;
        }
        i += 1;
        while i < bytes.len() && bytes[i] == b' ' {
            i += 1;
        }
        if i >= bytes.len() {
            return None;
        }
        match bytes[i] {
            b'{' => {
                let mut d = 0usize;
                while i < bytes.len() {
                    match bytes[i] {
                        b'{' => d += 1,
                        b'}' => {
                            d -= 1;
                            if d == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            b'"' => {
                let vs = i + 1;
                let mut j = vs;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                fields.push((key, row.get(vs..j)?.to_string()));
                i = j + 1;
            }
            _ => {
                let vs = i;
                let mut j = vs;
                while j < bytes.len() && !matches!(bytes[j], b',' | b'}' | b' ' | b'\n') {
                    j += 1;
                }
                fields.push((key, row.get(vs..j)?.to_string()));
                i = j;
            }
        }
    }
    let get = |k: &str| {
        fields
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.clone())
    };
    Some(BenchRecord {
        workload: get("workload")?,
        stage: get("stage").unwrap_or_else(|| synth_stage.to_string()),
        engine: get("engine")?,
        n: get("n")?.parse().ok()?,
        threads: get("threads").and_then(|v| v.parse().ok()).unwrap_or(1),
        us: get("wall_time_us")?.parse().ok()?,
    })
}

/// `experiments -- report [candidate_chase] [candidate_query]`: cross-run
/// regression analytics. The committed `BENCH_chase.json`/`BENCH_query.json`
/// trajectories are the baseline; the candidate defaults to the freshest
/// smoke rows under `target/smoke/`. Rows join on `(workload, stage,
/// engine, n, threads)`; a matched row regresses when the candidate exceeds
/// `BENCH_REGRESSION_FACTOR` × baseline (default 5× — the baseline was
/// recorded on a different machine, so the tolerance is deliberately
/// generous) and the baseline itself is above
/// `BENCH_REGRESSION_MIN_BASELINE_US` (default 50 µs — sub-noise rows are
/// reported but never gate). Baseline rows missing from the candidate gate
/// only *at axis values the candidate actually ran* (both the `n` and the
/// `threads` coordinate): a recorded series silently dropping out of the
/// harness is a regression of coverage, but a baseline recorded on an axis
/// the candidate never swept (an old full run's `threads: 4` rows against
/// a quick sequential candidate, or vice versa) is not. Symmetrically, a
/// candidate row with no baseline yet — the first run after a new axis
/// value lands — is reported as a new series, never a failure. Writes
/// `target/smoke/report.smoke.{md,json}` and exits nonzero on any gate hit.
fn run_report(chase_cand: &str, query_cand: &str) {
    use std::collections::{BTreeMap, BTreeSet};

    let env_f64 = |key: &str, default: f64| -> f64 {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let factor = env_f64("BENCH_REGRESSION_FACTOR", 5.0);
    let floor_us = env_f64("BENCH_REGRESSION_MIN_BASELINE_US", 50.0);
    let read = |path: &str, role: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            panic!(
                "read {role} {path}: {e} (run `experiments -- smoke` first \
                 to produce the default candidate rows)"
            )
        })
    };
    let mut baseline = parse_bench_records(&read("BENCH_chase.json", "baseline"), "chase");
    baseline.extend(parse_bench_records(
        &read("BENCH_query.json", "baseline"),
        "chase",
    ));
    let mut candidate = parse_bench_records(&read(chase_cand, "candidate"), "chase");
    candidate.extend(parse_bench_records(&read(query_cand, "candidate"), "chase"));
    assert!(!baseline.is_empty(), "baseline trajectories parse to rows");
    assert!(!candidate.is_empty(), "candidate rows parse");

    type Key = (String, String, String, u64, u64);
    let key = |r: &BenchRecord| {
        (
            r.workload.clone(),
            r.stage.clone(),
            r.engine.clone(),
            r.n,
            r.threads,
        )
    };
    let base_map: BTreeMap<Key, u64> = baseline.iter().map(|r| (key(r), r.us)).collect();
    let cand_map: BTreeMap<Key, u64> = candidate.iter().map(|r| (key(r), r.us)).collect();
    let covered_ns: BTreeSet<u64> = candidate.iter().map(|r| r.n).collect();
    let covered_threads: BTreeSet<u64> = candidate.iter().map(|r| r.threads).collect();

    struct MatchedRow {
        key: Key,
        base_us: u64,
        cand_us: u64,
        ratio: f64,
        gated: bool,
        regressed: bool,
    }
    let mut matched: Vec<MatchedRow> = Vec::new();
    for (k, &cand_us) in &cand_map {
        if let Some(&base_us) = base_map.get(k) {
            let ratio = cand_us as f64 / (base_us as f64).max(1e-9);
            let gated = base_us as f64 >= floor_us;
            matched.push(MatchedRow {
                key: k.clone(),
                base_us,
                cand_us,
                ratio,
                gated,
                regressed: gated && ratio > factor,
            });
        }
    }
    let new_rows: Vec<&Key> = cand_map
        .keys()
        .filter(|k| !base_map.contains_key(*k))
        .collect();
    let missing_rows: Vec<&Key> = base_map
        .keys()
        .filter(|k| {
            !cand_map.contains_key(*k)
                && covered_ns.contains(&k.3)
                && covered_threads.contains(&k.4)
        })
        .collect();
    let regressions = matched.iter().filter(|m| m.regressed).count();
    let mut worst: BTreeMap<String, &MatchedRow> = BTreeMap::new();
    for m in matched.iter().filter(|m| m.gated) {
        worst
            .entry(m.key.1.clone())
            .and_modify(|w| {
                if m.ratio > w.ratio {
                    *w = m;
                }
            })
            .or_insert(m);
    }

    // --- Markdown report. ---
    let mut md = String::new();
    md.push_str("# Bench regression report\n\n");
    md.push_str(&format!(
        "Baseline: committed `BENCH_chase.json` + `BENCH_query.json`.\n\
         Candidate: `{chase_cand}` + `{query_cand}`.\n\
         Gate: candidate ≤ {factor:.2}× baseline (`BENCH_REGRESSION_FACTOR`); \
         rows with baseline < {floor_us:.0} µs \
         (`BENCH_REGRESSION_MIN_BASELINE_US`) never gate.\n\n"
    ));
    let mut t = Table::new(&[
        "workload",
        "stage",
        "engine",
        "n",
        "threads",
        "baseline µs",
        "candidate µs",
        "ratio",
        "status",
    ]);
    for m in &matched {
        t.row(vec![
            m.key.0.clone(),
            m.key.1.clone(),
            m.key.2.clone(),
            m.key.3.to_string(),
            m.key.4.to_string(),
            m.base_us.to_string(),
            m.cand_us.to_string(),
            format!("{:.2}×", m.ratio),
            if m.regressed {
                "REGRESSION".to_string()
            } else if m.gated {
                "ok".to_string()
            } else {
                "sub-noise".to_string()
            },
        ]);
    }
    md.push_str(&t.render());
    md.push_str(&format!(
        "\n{} matched rows, {} regression(s), {} new row(s), {} missing row(s) \
         at candidate-covered axes (n and threads).\n",
        matched.len(),
        regressions,
        new_rows.len(),
        missing_rows.len()
    ));
    if !worst.is_empty() {
        md.push_str("\n## Worst ratio per stage\n\n");
        let mut wt = Table::new(&["stage", "workload", "engine", "n", "threads", "ratio"]);
        for (stage, m) in &worst {
            wt.row(vec![
                stage.clone(),
                m.key.0.clone(),
                m.key.2.clone(),
                m.key.3.to_string(),
                m.key.4.to_string(),
                format!("{:.2}×", m.ratio),
            ]);
        }
        md.push_str(&wt.render());
    }
    let fmt_keys = |keys: &[&Key]| {
        keys.iter()
            .map(|k| format!("{}/{}/{} n={} threads={}", k.0, k.1, k.2, k.3, k.4))
            .collect::<Vec<_>>()
            .join(", ")
    };
    if !new_rows.is_empty() {
        md.push_str(&format!(
            "\nNew rows (no baseline yet): {}.\n",
            fmt_keys(&new_rows)
        ));
    }
    if !missing_rows.is_empty() {
        md.push_str(&format!(
            "\nMISSING rows (recorded series absent from the candidate): {}.\n",
            fmt_keys(&missing_rows)
        ));
    }

    // --- JSON report (hand-rolled, same constraint as everywhere). ---
    let row_json = |m: &MatchedRow| {
        format!(
            "  {{\"workload\": \"{}\", \"stage\": \"{}\", \"engine\": \"{}\", \
             \"n\": {}, \"threads\": {}, \"baseline_us\": {}, \"candidate_us\": {}, \
             \"ratio\": {:.4}, \"status\": \"{}\"}}",
            m.key.0,
            m.key.1,
            m.key.2,
            m.key.3,
            m.key.4,
            m.base_us,
            m.cand_us,
            m.ratio,
            if m.regressed {
                "regression"
            } else if m.gated {
                "ok"
            } else {
                "sub_noise"
            }
        )
    };
    let key_json = |k: &Key| {
        format!(
            "  {{\"workload\": \"{}\", \"stage\": \"{}\", \"engine\": \"{}\", \
             \"n\": {}, \"threads\": {}}}",
            k.0, k.1, k.2, k.3, k.4
        )
    };
    let worst_json = worst
        .iter()
        .map(|(stage, m)| {
            format!(
                "  \"{stage}\": {{\"workload\": \"{}\", \"engine\": \"{}\", \
                 \"n\": {}, \"threads\": {}, \"ratio\": {:.4}}}",
                m.key.0, m.key.2, m.key.3, m.key.4, m.ratio
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n\"factor\": {factor:.2},\n\"min_baseline_us\": {floor_us:.0},\n\
         \"matched\": {},\n\"regressions\": {},\n\"rows\": [\n{}\n],\n\
         \"new\": [\n{}\n],\n\"missing\": [\n{}\n],\n\
         \"worst_per_stage\": {{\n{worst_json}\n}}\n}}\n",
        matched.len(),
        regressions,
        matched.iter().map(row_json).collect::<Vec<_>>().join(",\n"),
        new_rows
            .iter()
            .map(|k| key_json(k))
            .collect::<Vec<_>>()
            .join(",\n"),
        missing_rows
            .iter()
            .map(|k| key_json(k))
            .collect::<Vec<_>>()
            .join(",\n"),
    );

    std::fs::create_dir_all(SMOKE_DIR).unwrap_or_else(|e| panic!("create {SMOKE_DIR}: {e}"));
    let md_path = format!("{SMOKE_DIR}/report.smoke.md");
    let json_path = format!("{SMOKE_DIR}/report.smoke.json");
    std::fs::write(&md_path, &md).unwrap_or_else(|e| panic!("write {md_path}: {e}"));
    std::fs::write(&json_path, &json).unwrap_or_else(|e| panic!("write {json_path}: {e}"));
    println!("{md}");
    println!("Report written to {md_path} and {json_path}.");
    if regressions > 0 || !missing_rows.is_empty() {
        eprintln!(
            "REGRESSION GATE: {regressions} regression(s), {} missing row(s) — \
             see {md_path}.",
            missing_rows.len()
        );
        std::process::exit(1);
    }
    println!("Regression gate: clean.");
}

/// Write the combined E16 + E17 rows to `path` (`BENCH_query.json` on full
/// sweeps, `BENCH_query.smoke.json` — the CI artifact — in smoke mode).
fn write_query_json(records: &[String], path: &str) {
    let json = format!("[\n{}\n]\n", records.join(",\n"));
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("Machine-readable record written to {path}.\n");
}

/// E1 — Theorem 2: membership is PTIME all-open, NP otherwise.
fn e1_membership() {
    println!("## E1 — Theorem 2: membership `T ∈ ⟦S⟧_Σα`\n");
    let mut t = Table::new(&["n (edges)", "all-open (PTIME path)", "all-closed (NP path)"]);
    for n in [4usize, 8, 16, 32, 64] {
        let s = path_source(n);
        let mut target = Instance::new();
        for i in 0..n {
            target.insert_names("Ep", &[&format!("v{i}"), &format!("v{}", i + 1)]);
        }
        let (_, d_open) = timed(|| semantics::is_member(&copy2("op"), &s, &target));
        let (_, d_closed) = timed(|| semantics::is_member(&copy2("cl"), &s, &target));
        t.row(vec![
            n.to_string(),
            fmt_duration(d_open),
            fmt_duration(d_closed),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check: both polynomial on copy instances (easy case); \
         NP-hardness shows on the tripartite family (E9).\n"
    );
}

/// E2 — Proposition 3: positive queries by naive evaluation, any annotation.
fn e2_positive() {
    println!("## E2 — Proposition 3: positive-query certain answers\n");
    let q = conference::reviewed_query();
    let mut t = Table::new(&["n (papers)", "mixed", "all-open", "all-closed", "answers"]);
    for n in [4usize, 8, 16, 32] {
        let s = conference::source(n, 2);
        let m = conference::mapping();
        let (a1, d1) = timed(|| certain::certain_answers(&m, &s, &q, None));
        let (_, d2) = timed(|| certain::certain_answers(&m.all_open(), &s, &q, None));
        let (_, d3) = timed(|| certain::certain_answers(&m.all_closed(), &s, &q, None));
        t.row(vec![
            n.to_string(),
            fmt_duration(d1),
            fmt_duration(d2),
            fmt_duration(d3),
            a1.0.len().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Shape check: polynomial growth, identical answers across annotations.\n");
}

/// E3 — Theorem 3: the DEQA trichotomy.
fn e3_deqa() {
    println!("## E3 — Theorem 3: DEQA trichotomy by #op(Σα)\n");
    // A certainly-true query: the decision must EXHAUST its witness space,
    // exposing the exponential growth the theorem predicts.
    let q = exhaust_query();
    let empty = Tuple::new(Vec::<Value>::new());
    let mut t = Table::new(&[
        "n (facts)",
        "#op=0 exact (coNP)",
        "leaves",
        "#op=1 budget(2,2)",
        "leaves",
        "completeness",
    ]);
    for n in [1usize, 2, 3] {
        let s = unary_source(n);
        let (o0, d0) =
            timed(|| certain::certain_contains(&closed_null_mapping(), &s, &q, &empty, None));
        let budget = SearchBudget {
            max_leaves: Some(200_000),
            ..SearchBudget::bounded(2, 2)
        };
        let (o1, d1) = timed(|| {
            certain::certain_contains(&open_null_mapping(), &s, &q, &empty, Some(&budget))
        });
        t.row(vec![
            n.to_string(),
            fmt_duration(d0),
            o0.leaves.to_string(),
            fmt_duration(d1),
            o1.leaves.to_string(),
            format!("{:?}/{:?}", o0.completeness, o1.completeness),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check: #op=0 grows exponentially in nulls but is exact; \
         #op=1 explores a witness space larger by the replication budget \
         (the Lemma 2 exponent) and is only budget-complete. #op>1 is \
         undecidable (Theorem 3(3)) — no sweep exists.\n"
    );
}

/// E4 — Theorem 4 / Table 1: composition.
fn e4_composition_table1() {
    println!("## E4 — Table 1: `Comp(Σα, Δα′)`\n");
    let mut t = Table::new(&[
        "n",
        "#op=0 (NP, exact)",
        "#op=1 (NEXPTIME, bounded)",
        "monotone Δop (NP, any Σα)",
    ]);
    for n in [1usize, 2, 4] {
        let s = {
            let mut s = Instance::new();
            for i in 0..n {
                s.insert_names("E", &[&format!("v{i}"), &format!("v{}", i + 1)]);
            }
            s
        };
        // Row 1: all-closed Σ.
        let sig0 = Mapping::parse("M(x:cl, y:cl) <- E(x, y)").unwrap();
        let del = Mapping::parse("F(x:cl, y:cl) <- M(x, y)").unwrap();
        let mut w = Instance::new();
        for i in 0..n {
            w.insert_names("F", &[&format!("v{i}"), &format!("v{}", i + 1)]);
        }
        let (_, d0) = timed(|| comp_membership(&sig0, &del, &s, &w, None));
        // Row 2: #op = 1 (replicated target demands extra intermediates; the
        // intermediate-enumeration space is the NEXPTIME exponent, so keep a
        // hard leaf cap and small n).
        let sig1 = Mapping::parse("M(x:cl, z:op) <- E(x, y)").unwrap();
        let mut w1 = Instance::new();
        for i in 0..n.min(2) {
            w1.insert_names("F", &[&format!("v{i}"), &format!("a{i}")]);
            w1.insert_names("F", &[&format!("v{i}"), &format!("b{i}")]);
        }
        let budget1 = SearchBudget {
            max_leaves: Some(200_000),
            ..SearchBudget::bounded(1, 2)
        };
        let (_, d1) = timed(|| comp_membership(&sig1, &del, &s, &w1, Some(&budget1)));
        // Column: monotone Δop.
        let delop = Mapping::parse("F(x:op, y:op) <- M(x, y)").unwrap();
        let (_, d2) = timed(|| comp_membership(&sig1, &delop, &s, &w, None));
        t.row(vec![
            n.to_string(),
            fmt_duration(d0),
            fmt_duration(d1),
            fmt_duration(d2),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check: the monotone-Δop column stays cheap for any Σα \
         (Lemma 3); #op=1 pays the intermediate-replication exponent; \
         #op>1 is undecidable (no row).\n"
    );
}

/// E5 — Lemma 5: syntactic composition cost and output size.
fn e5_sk_composition() {
    println!("## E5 — Lemma 5 / Theorem 5: syntactic SkSTD composition\n");
    let mut t = Table::new(&["σ-rules × Δ-atoms", "time", "Γ rules", "class preserved"]);
    for (k, a) in [(1usize, 1usize), (2, 2), (3, 3), (4, 4), (5, 4)] {
        let mut sigma_rules = String::new();
        for i in 0..k {
            sigma_rules.push_str(&format!("M(x:op, mk{i}(x):op) <- A{i}(x);"));
        }
        let sigma = SkMapping::parse(&sigma_rules).unwrap();
        let mut body = String::new();
        for j in 0..a {
            if j > 0 {
                body.push_str(" & ");
            }
            body.push_str(&format!("M(y{j}, y{})", j + 1));
        }
        let delta = SkMapping::parse(&format!("F(y0:op, y{a}:op) <- {body}")).unwrap();
        let (comp, d) = timed(|| compose_skstd(&sigma, &delta).unwrap());
        t.row(vec![
            format!("{k} × {a}"),
            fmt_duration(d),
            comp.mapping.stds.len().to_string(),
            comp.mapping.has_cq_bodies().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Shape check: Γ has k^a rules (CQ re-normalization), rewrite time follows.\n");
}

/// E6 — Proposition 5: ∀*∃* queries stay coNP for open annotations.
fn e6_universal() {
    println!("## E6 — Proposition 5: ∀*∃* queries under open annotations\n");
    let q = fd_query();
    let empty = Tuple::new(Vec::<Value>::new());
    let mut t = Table::new(&[
        "n",
        "closed (exact)",
        "open (exact, Prop 5 budget)",
        "certain?",
    ]);
    for n in [1usize, 2, 3] {
        let s = unary_source(n);
        let (oc, dc) =
            timed(|| certain::certain_contains(&closed_null_mapping(), &s, &q, &empty, None));
        let (oo, do_) =
            timed(|| certain::certain_contains(&open_null_mapping(), &s, &q, &empty, None));
        assert_eq!(oc.completeness, Completeness::Exact);
        assert_eq!(oo.completeness, Completeness::Exact);
        t.row(vec![
            n.to_string(),
            fmt_duration(dc),
            fmt_duration(do_),
            format!("cl:{} / op:{}", oc.certain, oo.certain),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check: both exact; the open case correctly flips the FD \
         query to non-certain (replication breaks uniqueness).\n"
    );
}

/// E7 — Proposition 6: non-closure witness.
fn e7_non_closure() {
    println!("## E7 — Proposition 6: plain STDs are not closed under composition\n");
    let mut t = Table::new(&["n", "rectangle ∈ Σ∘Δ", "distinct ∈ Σ∘Δ", "time"]);
    for n in [2usize, 3, 4, 5] {
        let ((rect, dist), d) = timed(|| non_closure::demonstrate(n));
        t.row(vec![
            n.to_string(),
            rect.to_string(),
            dist.to_string(),
            fmt_duration(d),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check: rectangles in, distinct-values out — exactly Claim 6; \
         any FO-STD Γ admits the distinct target for large n, so no Γ \
         expresses the composition.\n"
    );
}

/// E8 — Theorem 1(3): the annotation spectrum on one target family.
fn e8_spectrum() {
    println!("## E8 — Theorem 1 / Proposition 2: the OWA–CWA spectrum\n");
    let chain = [
        ("cl,cl", "R(x:cl, z:cl) <- E(x, y)"),
        ("cl,op", "R(x:cl, z:op) <- E(x, y)"),
        ("op,op", "R(x:op, z:op) <- E(x, y)"),
    ];
    let mut s = Instance::new();
    s.insert_names("E", &["a", "b"]);
    let targets = [
        ("copy {(a,k)}", vec![vec!["a", "k"]]),
        (
            "replicated {(a,k),(a,l)}",
            vec![vec!["a", "k"], vec!["a", "l"]],
        ),
        ("rogue {(a,k),(x,y)}", vec![vec!["a", "k"], vec!["x", "y"]]),
    ];
    let mut t = Table::new(&["target", "cl,cl", "cl,op", "op,op"]);
    for (label, tuples) in targets {
        let mut target = Instance::new();
        for tup in &tuples {
            target.insert_names("R", &[tup[0], tup[1]]);
        }
        let mut cells = vec![label.to_string()];
        for (_, rules) in chain {
            let m = Mapping::parse(rules).unwrap();
            cells.push(semantics::is_member(&m, &s, &target).to_string());
        }
        t.row(cells);
    }
    println!("{}", t.render());
    println!("Shape check: membership grows monotonically left → right (α ⪯ α′).\n");
}

/// E9 — Theorem 2 reduction: tripartite matching through membership.
fn e9_tripartite() {
    println!("## E9 — Theorem 2 reduction: tripartite matching\n");
    let mut t = Table::new(&["n", "triples", "brute force", "via exchange", "agree"]);
    for n in [2usize, 3, 4] {
        let inst = tripartite::TripartiteInstance::planted(n, n, 42 + n as u64);
        let (b, db) = timed(|| inst.solve_brute_force().is_some());
        let (e, de) = timed(|| tripartite::solve_via_membership(&inst));
        t.row(vec![
            n.to_string(),
            inst.triples.len().to_string(),
            fmt_duration(db),
            fmt_duration(de),
            (b == e).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Shape check: both exponential (NP-complete); verdicts agree.\n");
}

/// E10 — Theorem 4 reduction: 3-colorability through composition.
fn e10_coloring() {
    println!("## E10 — Theorem 4 reduction: 3-colorability\n");
    let mut t = Table::new(&["graph", "brute force", "via composition", "agree"]);
    let graphs = [
        ("C3 (triangle)", coloring::Graph::cycle(3)),
        ("C4", coloring::Graph::cycle(4)),
        ("K4 (uncolorable)", coloring::Graph::complete(4)),
        ("planted(4, 4)", coloring::Graph::planted_colorable(4, 4, 3)),
    ];
    for (label, g) in graphs {
        let (b, db) = timed(|| g.color_brute_force().is_some());
        let (e, de) = timed(|| coloring::solve_via_composition(&g));
        t.row(vec![
            label.to_string(),
            fmt_duration(db),
            fmt_duration(de),
            (b == e).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Shape check: uncolorable graphs are exactly the non-members.\n");
}

/// E11 — Theorem 3's coNEXPTIME gadget: the tiling reduction, verification
/// direction.
fn e11_tiling() {
    println!("## E11 — Theorem 3 hardness gadget: 2ⁿ×2ⁿ tiling\n");
    let mut t = Table::new(&[
        "system",
        "grid",
        "brute-force tiling",
        "witness verifies (Rep_A + β)",
    ]);
    for (label, sys) in [
        ("checkerboard", tiling::TilingSystem::checkerboard(1)),
        ("unsolvable", tiling::TilingSystem::unsolvable(1)),
    ] {
        let side = sys.side();
        let (tiled, d) = timed(|| sys.solve_brute_force());
        let verdict = match tiled {
            Some(_) => {
                let (w, dv) = timed(|| tiling::verify_witness(&sys));
                format!(
                    "yes, verified in {} ({} tuples)",
                    fmt_duration(dv),
                    w.map(|i| i.tuple_count()).unwrap_or(0)
                )
            }
            None => "no tiling (correctly unsolvable)".to_string(),
        };
        t.row(vec![
            label.to_string(),
            format!("{side}×{side}"),
            fmt_duration(d),
            verdict,
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check: the refutation search is genuinely NEXPTIME, so the \
         harness machine-checks the *verification* direction (witness \
         membership + β-satisfaction), which is polynomial.\n"
    );
}

/// E12 — §3 complexity remark: Rep membership for Codd tables is PTIME
/// (Hopcroft–Karp) vs NP for naive tables (generic backtracking). The
/// deficient all-null family is a worst case for the backtracking search.
fn e12_codd() {
    use dx_relation::{AnnInstance, AnnTuple, Annotation, RelSym};
    use dx_solver::repa::{codd_rep_membership, rep_a_membership_with};
    println!("## E12 — Codd tables: PTIME membership vs generic search\n");
    let mut t = Table::new(&[
        "n nulls / n+1 values",
        "generic backtracking",
        "Hopcroft–Karp",
    ]);
    let rel = RelSym::new("XCodd");
    for n in [2usize, 4, 6, 64, 256] {
        let mut ground = Instance::new();
        let mut ann = AnnInstance::new();
        for i in 0..n {
            let tu = Tuple::new(vec![Value::null(i as u32 + 1)]);
            ground.insert(rel, tu.clone());
            ann.insert(rel, AnnTuple::new(tu, Annotation::all_closed(1)));
        }
        let mut r = Instance::new();
        for i in 0..=n {
            r.insert_names("XCodd", &[&format!("c{i}")]);
        }
        let generic = if n <= 6 {
            let (res, d) = timed(|| rep_a_membership_with(&ann, &r, true));
            assert!(res.is_none());
            fmt_duration(d)
        } else {
            "— (exponential)".to_string()
        };
        let (res, d) = timed(|| codd_rep_membership(&ground, &r));
        assert!(res.is_none());
        t.row(vec![n.to_string(), generic, fmt_duration(d)]);
    }
    println!("{}", t.render());
    println!(
        "Shape check: the backtracking wall appears by n = 6; the matching \
         route stays polynomial past n = 256.\n"
    );
}

/// E13 — §6 extension 1: certain answers for a PTIME language beyond FO
/// (stratified Datalog transitive closure), annotation-independent for
/// hom-preserved programs.
fn e13_datalog() {
    use dx_core::ptime_lang::certain_answers_ptime;
    use dx_logic::datalog::DatalogQuery;
    println!("## E13 — Stratified Datalog certain answers (PTIME language ⊋ FO)\n");
    let tc = DatalogQuery::parse(
        "XPath",
        "XPath(x, y) <- XEdge(x, y); XPath(x, z) <- XPath(x, y) & XEdge(y, z)",
    )
    .expect("program parses");
    let mut t = Table::new(&["n (chain)", "closed", "mixed (author op)", "answers agree"]);
    for n in [4usize, 8, 16, 32] {
        let mut s = Instance::new();
        for i in 0..n {
            s.insert_names("XSrc", &[&format!("v{i}"), &format!("v{}", i + 1)]);
        }
        let closed = Mapping::parse("XEdge(x:cl, y:cl) <- XSrc(x, y)").unwrap();
        let mixed = Mapping::parse("XEdge(x:cl, y:op) <- XSrc(x, y)").unwrap();
        let ((a1, _), d1) = timed(|| certain_answers_ptime(&closed, &s, &tc, None));
        let ((a2, _), d2) = timed(|| certain_answers_ptime(&mixed, &s, &tc, None));
        t.row(vec![
            n.to_string(),
            fmt_duration(d1),
            fmt_duration(d2),
            (a1 == a2).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check: polynomial growth; identical certain answers across \
         annotations (the monotone Proposition 3, beyond FO).\n"
    );
}

/// E15 — the chase-engine race: naive (rescan nested-loop) vs indexed
/// (delta-driven, index-join) on the three chase-heavy workload families.
/// Emits the machine-readable perf-trajectory record to `json_path`
/// (`BENCH_chase.json` on full sweeps, the smoke artifact in CI) next to
/// the markdown table; in smoke mode the indexed engine is parity-gated.
fn e15_chase_engines(ns: &[usize], json_path: Option<&str>, smoke: bool) {
    use dx_bench::chase_workloads::all_cases;
    use dx_chase::chase_engine::ChaseOutcome;
    use dx_chase::{canonical_solution_with_deps_via, ChaseStrategy, NaiveChase};
    use dx_engine::IndexedChase;

    println!("## E15 — chase engines: naive vs indexed (dx-engine)\n");
    let engines: [(&str, &dyn ChaseStrategy); 2] =
        [("naive", &NaiveChase), ("indexed", &IndexedChase)];
    let mut t = Table::new(&[
        "workload",
        "n",
        "naive",
        "indexed",
        "speedup",
        "steps (idx)",
        "tuples (idx)",
    ]);
    let mut records: Vec<String> = Vec::new();
    for &n in ns {
        for case in all_cases(n) {
            let mut times = Vec::new();
            let mut steps = 0usize;
            let mut tuples = 0usize;
            // Per-arm (steps, tuples): the chase's work metrics, asserted
            // bit-identical across the race arms in smoke mode.
            let mut work: Vec<(usize, usize)> = Vec::new();
            for (name, engine) in engines {
                // Best of nine runs: cold-cache and scheduler noise are not
                // the story, and at the small sizes they exceed the signal.
                let mut best: Option<std::time::Duration> = None;
                let mut out = None;
                for _ in 0..9 {
                    let (o, d) = timed(|| {
                        canonical_solution_with_deps_via(
                            engine,
                            &case.mapping,
                            &case.deps,
                            &case.source,
                            1_000_000,
                        )
                    });
                    best = Some(best.map_or(d, |b| b.min(d)));
                    out = Some(o);
                }
                let out = out.expect("ran");
                let best = best.expect("ran");
                assert_eq!(
                    out.outcome,
                    ChaseOutcome::Satisfied,
                    "{} n={n}",
                    case.workload
                );
                // One untimed run per arm captures its dx-obs counter delta
                // for the BENCH row (no-op unless DX_OBS is on).
                let (_, diff) = captured_counters(|| {
                    canonical_solution_with_deps_via(
                        engine,
                        &case.mapping,
                        &case.deps,
                        &case.source,
                        1_000_000,
                    )
                });
                steps = out.steps;
                tuples = out.instance.tuple_count();
                work.push((out.steps, tuples));
                times.push(best);
                records.push(format!(
                    "  {{\"workload\": \"{}\", \"engine\": \"{}\", \"n\": {}, \
                     \"wall_time_us\": {}, \"steps\": {}, \"tuples\": {}{}{}}}",
                    case.workload,
                    name,
                    n,
                    best.as_micros(),
                    out.steps,
                    tuples,
                    counters_field(&diff, CHASE_COUNTERS),
                    gauges_field(&diff, CHASE_GAUGES),
                ));
            }
            if smoke {
                // Work identity: the naive and indexed engines must run the
                // same chase — identical step counts and result sizes, not
                // merely both-Satisfied. (The dx-obs counter basket is
                // indexed-engine-only — the naive walker is deliberately
                // uninstrumented — so the gate compares the engine-reported
                // work metrics the BENCH rows carry.)
                assert_eq!(
                    work[0], work[1],
                    "chase/{} n={n}: steps/tuples diverged across the race arms",
                    case.workload
                );
            }
            assert_smoke_parity(
                smoke,
                &format!("chase/{}", case.workload),
                n,
                times[0],
                times[1],
            );
            let speedup = times[0].as_secs_f64() / times[1].as_secs_f64().max(1e-9);
            t.row(vec![
                case.workload.to_string(),
                n.to_string(),
                fmt_duration(times[0]),
                fmt_duration(times[1]),
                format!("{speedup:.1}×"),
                steps.to_string(),
                tuples.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    if let Some(path) = json_path {
        let json = format!("[\n{}\n]\n", records.join(",\n"));
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    }
    println!(
        "Shape check: parity at small n (fixed overheads), growing indexed \
         advantage on the scaling workloads; machine-readable record \
         written to {}.\n",
        json_path.unwrap_or("(nowhere)")
    );
}

/// E16 — the query-engine race: tree-walking active-domain evaluation vs
/// `dx-query` compiled plans, on the two FO-evaluation-bound stages of the
/// exchange pipeline (`CSol_A(S)` construction and positive-query certain
/// answering over the canonical solution), plus the **`Rep_A` valuation
/// search race**: the solver's incrementally maintained candidate index
/// vs the rebuild-per-candidate baseline on a certainly-true full-FO
/// refutation (the `repa` rows — the per-commit `smoke` mode runs this
/// path too), and the **seeded anti-join race** (the `seeded` rows): the
/// correlated §1 one-author query, tree walker vs the compiled
/// `SeededAntiJoin` plan, answers asserted identical. Returns its
/// `BENCH_query.json` rows (the caller merges them with E17's and writes
/// the file). Smoke mode parity-gates every fast path.
fn e16_query_engines(ns: &[usize], smoke: bool) -> Vec<String> {
    use dx_bench::query_workloads::{all_query_cases, repa_case, seeded_case};
    use dx_chase::{canonical_solution, canonical_solution_via, BodyEval, NaiveBodyEval};
    use dx_query::{PlanCatalog, PlannedBodyEval};
    use dx_solver::{search_rep_a_indexed, SearchBudget};
    use std::collections::BTreeSet;

    println!("## E16 — query engines: tree-walking vs compiled (dx-query)\n");
    // The engine races (and smoke's work-identity gates) are stated
    // against the sequential semantics: pin the pool to one worker for
    // the baseline arms, then race the work-stealing substrate explicitly
    // on the threads axis below. Restored to the ambient width
    // (`DX_THREADS` or the machine) on exit.
    rayon::set_threads(1);
    let mut t = Table::new(&[
        "workload",
        "n",
        "csol tree",
        "csol planned",
        "speedup",
        "answers tree",
        "answers planned",
        "speedup",
        "rows",
    ]);
    let mut records: Vec<String> = Vec::new();
    let mut record = |workload: &str,
                      stage: &str,
                      engine: &str,
                      n: usize,
                      threads: usize,
                      us: u128,
                      rows: usize,
                      counters: &str| {
        records.push(query_row(
            workload, stage, engine, n, threads, us, rows, counters,
        ));
    };
    for &n in ns {
        for case in all_query_cases(n) {
            // Stage 1: canonical-solution construction (body evaluation).
            let evals: [(&str, &dyn BodyEval); 2] =
                [("tree", &NaiveBodyEval), ("planned", &PlannedBodyEval)];
            let mut csol_times = Vec::new();
            for (name, body_eval) in evals {
                let mut best: Option<std::time::Duration> = None;
                for _ in 0..5 {
                    let (_, d) =
                        timed(|| canonical_solution_via(body_eval, &case.mapping, &case.source));
                    best = Some(best.map_or(d, |b| b.min(d)));
                }
                let best = best.expect("ran");
                let (_, diff) = captured_counters(|| {
                    canonical_solution_via(body_eval, &case.mapping, &case.source)
                });
                csol_times.push(best);
                record(
                    case.workload,
                    "csol",
                    name,
                    n,
                    1,
                    best.as_micros(),
                    0,
                    &format!(
                        "{}{}",
                        counters_field(&diff, QUERY_COUNTERS),
                        gauges_field(&diff, QUERY_GAUGES)
                    ),
                );
            }
            // The engines must agree exactly (differential guarantee).
            let naive_csol = canonical_solution(&case.mapping, &case.source);
            let planned_csol =
                canonical_solution_via(&PlannedBodyEval, &case.mapping, &case.source);
            assert_eq!(
                naive_csol.instance, planned_csol.instance,
                "{} n={n}: body-eval engines disagree",
                case.workload
            );

            // Stage 2: naive certain answers over CSol(S) (Prop 3).
            let target = naive_csol.rel_part();
            let compiled = PlanCatalog::shared().eval_in(&case.query, &case.mapping.target);
            assert!(
                compiled.is_compiled(),
                "{}: workload query compiles",
                case.workload
            );
            let mut ans_times = Vec::new();
            let mut rows = 0usize;
            for name in ["tree", "planned"] {
                let mut best: Option<std::time::Duration> = None;
                let mut out = None;
                for _ in 0..5 {
                    let (o, d) = timed(|| match name {
                        "tree" => case.query.naive_certain_answers(&target),
                        _ => compiled.naive_certain_answers(&target),
                    });
                    best = Some(best.map_or(d, |b| b.min(d)));
                    out = Some(o);
                }
                let best = best.expect("ran");
                let (_, diff) = captured_counters(|| match name {
                    "tree" => case.query.naive_certain_answers(&target),
                    _ => compiled.naive_certain_answers(&target),
                });
                rows = out.as_ref().expect("ran").len();
                ans_times.push((best, out.expect("ran")));
                record(
                    case.workload,
                    "answers",
                    name,
                    n,
                    1,
                    best.as_micros(),
                    rows,
                    &format!(
                        "{}{}",
                        counters_field(&diff, QUERY_COUNTERS),
                        gauges_field(&diff, QUERY_GAUGES)
                    ),
                );
            }
            assert_eq!(
                ans_times[0].1, ans_times[1].1,
                "{} n={n}: query engines disagree",
                case.workload
            );
            assert_smoke_parity(
                smoke,
                &format!("csol/{}", case.workload),
                n,
                csol_times[0],
                csol_times[1],
            );
            assert_smoke_parity(
                smoke,
                &format!("answers/{}", case.workload),
                n,
                ans_times[0].0,
                ans_times[1].0,
            );
            let csol_speedup = csol_times[0].as_secs_f64() / csol_times[1].as_secs_f64().max(1e-9);
            let ans_speedup = ans_times[0].0.as_secs_f64() / ans_times[1].0.as_secs_f64().max(1e-9);
            t.row(vec![
                case.workload.to_string(),
                n.to_string(),
                fmt_duration(csol_times[0]),
                fmt_duration(csol_times[1]),
                format!("{csol_speedup:.1}×"),
                fmt_duration(ans_times[0].0),
                fmt_duration(ans_times[1].0),
                format!("{ans_speedup:.1}×"),
                rows.to_string(),
            ]);
        }
    }
    println!("{}", t.render());

    // The seeded anti-join race: the correlated §1 one-author query —
    // `∃a Sub(p,a) ∧ ∀b (Sub(p,b) → a = b)` — which PR 5's seeded lowering
    // compiles to a `SeededAntiJoin` plan; before that, exactly the queries
    // that distinguish OWA/CWA/GCWA* semantics ran on the tree walker. The
    // walker sweeps the active domain per (p, a, b) triple; the plan
    // re-executes the negated branch once per distinct author.
    let mut st = Table::new(&[
        "workload",
        "n",
        "answers tree",
        "answers compiled",
        "speedup",
        "rows",
    ]);
    // The threads bench axis: each pool-backed arm re-run at the widths in
    // `THREAD_WIDTHS`, raced against its own pinned (threads = 1) time.
    let mut tt = Table::new(&["stage", "n", "threads", "pinned (1)", "pooled", "ratio"]);
    for &n in ns {
        let case = seeded_case(n);
        let csol = canonical_solution(&case.mapping, &case.source).rel_part();
        let compiled = PlanCatalog::shared().eval_in(&case.query, &case.mapping.target);
        assert!(
            compiled.is_compiled(),
            "seeded workload must compile to a plan (correlated fragment)"
        );
        let mut times = Vec::new();
        let mut rows = 0usize;
        let mut outs = Vec::new();
        for name in ["tree", "compiled"] {
            let mut best: Option<std::time::Duration> = None;
            let mut out = None;
            for _ in 0..5 {
                let (o, d) = timed(|| match name {
                    "tree" => case.query.naive_certain_answers(&csol),
                    _ => compiled.naive_certain_answers(&csol),
                });
                best = Some(best.map_or(d, |b| b.min(d)));
                out = Some(o);
            }
            let best = best.expect("ran");
            let (_, diff) = captured_counters(|| match name {
                "tree" => case.query.naive_certain_answers(&csol),
                _ => compiled.naive_certain_answers(&csol),
            });
            let out = out.expect("ran");
            rows = out.len();
            outs.push(out);
            times.push(best);
            record(
                case.workload,
                "seeded",
                name,
                n,
                1,
                best.as_micros(),
                rows,
                &format!(
                    "{}{}",
                    counters_field(&diff, QUERY_COUNTERS),
                    gauges_field(&diff, QUERY_GAUGES)
                ),
            );
        }
        assert_eq!(
            outs[0], outs[1],
            "seeded n={n}: tree walker and compiled plan disagree"
        );
        assert!(rows > 0, "seeded n={n}: single-author papers must answer");
        assert_smoke_parity(smoke, "seeded", n, times[0], times[1]);
        // Threads axis: the compiled arm re-run on the work-stealing pool
        // (the seeded anti-join partitions its distinct-key branch runs).
        // Answers must stay bit-identical at every width — the
        // determinism contract the parallel substrate ships with.
        for &w in THREAD_WIDTHS {
            rayon::set_threads(w);
            let mut best: Option<std::time::Duration> = None;
            let mut out = None;
            for _ in 0..3 {
                let (o, d) = timed(|| compiled.naive_certain_answers(&csol));
                best = Some(best.map_or(d, |b| b.min(d)));
                out = Some(o);
            }
            let best = best.expect("ran");
            let (_, diff) = captured_counters(|| compiled.naive_certain_answers(&csol));
            let out = out.expect("ran");
            assert_eq!(
                out, outs[1],
                "seeded n={n} threads={w}: pooled answers diverged from the pinned run"
            );
            record(
                case.workload,
                "seeded",
                "compiled",
                n,
                w,
                best.as_micros(),
                out.len(),
                &format!(
                    "{}{}",
                    counters_field(&diff, QUERY_COUNTERS),
                    gauges_field(&diff, QUERY_GAUGES)
                ),
            );
            assert_threads_parity(smoke, "seeded", n, w, times[1], best);
            tt.row(vec![
                "seeded".to_string(),
                n.to_string(),
                w.to_string(),
                fmt_duration(times[1]),
                fmt_duration(best),
                format!(
                    "{:.1}×",
                    times[1].as_secs_f64() / best.as_secs_f64().max(1e-9)
                ),
            ]);
        }
        rayon::set_threads(1);
        let speedup = times[0].as_secs_f64() / times[1].as_secs_f64().max(1e-9);
        st.row(vec![
            case.workload.to_string(),
            n.to_string(),
            fmt_duration(times[0]),
            fmt_duration(times[1]),
            format!("{speedup:.1}×"),
            rows.to_string(),
        ]);
    }
    println!("{}", st.render());

    // The Rep_A valuation-search race: same search engine, same leaves —
    // only the per-leaf check differs. "rebuild" recreates the old
    // behaviour (an InstanceIndex::build per candidate instance inside
    // QueryEval::holds_on); "incremental" probes the search's single
    // delta-maintained index. Outcomes are asserted identical.
    let mut rt = Table::new(&[
        "workload",
        "n",
        "leaves",
        "rebuild/candidate",
        "incremental index",
        "speedup",
    ]);
    for &n in ns {
        let case = repa_case(n);
        let csol = canonical_solution(&case.mapping, &case.source);
        let ev = PlanCatalog::shared().eval_in(&case.query, &case.mapping.target);
        assert!(ev.is_compiled(), "repa query must run on a plan");
        let consts: BTreeSet<dx_relation::ConstId> =
            case.query.formula.constants().into_iter().collect();
        let empty = Tuple::new(Vec::<Value>::new());
        let budget = SearchBudget::closed_world();
        let mut times = Vec::new();
        let mut leaves = Vec::new();
        let mut diffs = Vec::new();
        for engine in ["rebuild", "incremental"] {
            let mut best: Option<std::time::Duration> = None;
            let mut out = None;
            for _ in 0..5 {
                let (o, d) = timed(|| {
                    search_rep_a_indexed(&csol.instance, &consts, &budget, &mut |leaf| {
                        if engine == "rebuild" {
                            !ev.holds_on(leaf.instance(), &empty)
                        } else {
                            !ev.holds_on_indexed(leaf.index(), leaf.instance(), &empty)
                        }
                    })
                });
                best = Some(best.map_or(d, |b| b.min(d)));
                out = Some(o);
            }
            let best = best.expect("ran");
            let (_, diff) = captured_counters(|| {
                search_rep_a_indexed(&csol.instance, &consts, &budget, &mut |leaf| {
                    if engine == "rebuild" {
                        !ev.holds_on(leaf.instance(), &empty)
                    } else {
                        !ev.holds_on_indexed(leaf.index(), leaf.instance(), &empty)
                    }
                })
            });
            let out = out.expect("ran");
            assert!(
                out.witness.is_none(),
                "repa n={n}: certainly-true query must not be refuted"
            );
            times.push(best);
            leaves.push(out.leaves);
            record(
                case.workload,
                "repa",
                engine,
                n,
                1,
                best.as_micros(),
                out.leaves as usize,
                &format!(
                    "{}{}",
                    counters_field(&diff, SOLVER_COUNTERS),
                    gauges_field(&diff, SOLVER_GAUGES)
                ),
            );
            diffs.push(diff);
        }
        assert_eq!(
            leaves[0], leaves[1],
            "repa n={n}: engines must explore identical leaf counts"
        );
        // Both arms drive the identical search; only the per-leaf check
        // differs — so every solver.dfs.* counter must agree bit-for-bit.
        assert_work_identity(smoke, "repa", n, SOLVER_COUNTERS, &diffs[0], &diffs[1]);
        assert_smoke_parity(smoke, "repa", n, times[0], times[1]);
        // Threads axis: the incremental arm re-run on the pool (the
        // compiled per-leaf plans fan their hash joins out above the row
        // threshold). The search itself stays sequential, so witness
        // absence and the leaf count must be identical at every width.
        for &w in THREAD_WIDTHS {
            rayon::set_threads(w);
            let mut best: Option<std::time::Duration> = None;
            let mut out = None;
            for _ in 0..3 {
                let (o, d) = timed(|| {
                    search_rep_a_indexed(&csol.instance, &consts, &budget, &mut |leaf| {
                        !ev.holds_on_indexed(leaf.index(), leaf.instance(), &empty)
                    })
                });
                best = Some(best.map_or(d, |b| b.min(d)));
                out = Some(o);
            }
            let best = best.expect("ran");
            let (_, diff) = captured_counters(|| {
                search_rep_a_indexed(&csol.instance, &consts, &budget, &mut |leaf| {
                    !ev.holds_on_indexed(leaf.index(), leaf.instance(), &empty)
                })
            });
            let out = out.expect("ran");
            assert!(
                out.witness.is_none(),
                "repa n={n} threads={w}: certainly-true query must not be refuted"
            );
            assert_eq!(
                out.leaves, leaves[1],
                "repa n={n} threads={w}: leaf count diverged from the pinned run"
            );
            record(
                case.workload,
                "repa",
                "incremental",
                n,
                w,
                best.as_micros(),
                out.leaves as usize,
                &format!(
                    "{}{}",
                    counters_field(&diff, SOLVER_COUNTERS),
                    gauges_field(&diff, SOLVER_GAUGES)
                ),
            );
            assert_threads_parity(smoke, "repa", n, w, times[1], best);
            tt.row(vec![
                "repa".to_string(),
                n.to_string(),
                w.to_string(),
                fmt_duration(times[1]),
                fmt_duration(best),
                format!(
                    "{:.1}×",
                    times[1].as_secs_f64() / best.as_secs_f64().max(1e-9)
                ),
            ]);
        }
        rayon::set_threads(1);
        let speedup = times[0].as_secs_f64() / times[1].as_secs_f64().max(1e-9);
        rt.row(vec![
            case.workload.to_string(),
            n.to_string(),
            leaves[0].to_string(),
            fmt_duration(times[0]),
            fmt_duration(times[1]),
            format!("{speedup:.1}×"),
        ]);
    }
    println!("{}", rt.render());

    println!("### Threads axis (pool-backed arms vs their pinned runs)\n");
    println!("{}", tt.render());

    println!(
        "Shape check: parity at small n, compiled advantage growing with n \
         on both stages (the tree walker pays an active-domain scan per \
         negated existential, the plan one anti-join); the Rep_A race pays \
         Θ(n) index rebuilds of Θ(n) tuples per search on the baseline vs \
         O(1) delta work per leaf on the incremental store; results \
         asserted identical across engines. The threads rows record the \
         same arms on the work-stealing pool — bit-identical output at \
         every width; the ratio only exceeds 1× when the host has the \
         cores to back the width.\n"
    );
    rayon::set_threads(0);
    records
}

/// E17 — the non-monotonic regime race: GCWA\* (Hernich) and approximation
/// (Calautti-style) certain answers from `dx_core::regimes`, each run as
/// **rebuild-per-candidate** (an `InstanceIndex::build` inside
/// `QueryEval::holds_on` per union/member) vs **incremental** (compiled
/// plans probing the one refcounted delta index — the shipped engines).
/// Emits the `gcwa`/`approx` rows of `BENCH_query.json`; at n ≤ 16 (the
/// smoke sizes) both regimes are additionally asserted nonempty and
/// identical to brute-force oracles (materialized unions / full member
/// enumeration, tree-walking evaluation); smoke mode parity-gates the
/// incremental engines.
fn e17_regimes(ns: &[usize], smoke: bool) -> Vec<String> {
    use dx_bench::query_workloads::{approx_case, gcwa_case};
    use dx_chase::canonical_solution;
    use dx_core::regimes::{self, RegimeBudget};
    use dx_query::PlanCatalog;
    use dx_solver::{for_each_union, minimal_rep_a_members, search_rep_a, search_rep_a_indexed};

    println!("## E17 — non-monotonic regimes: GCWA* / approximation (dx-core)\n");
    // Same pinning discipline as E16: sequential semantics for the engine
    // races and their union-walk work-identity gates, explicit widths for
    // the threads axis, ambient width restored on exit.
    rayon::set_threads(1);
    let mut records: Vec<String> = Vec::new();
    let mut record = |workload: &str,
                      stage: &str,
                      engine: &str,
                      n: usize,
                      threads: usize,
                      us: u128,
                      rows: usize,
                      counters: &str| {
        records.push(query_row(
            workload, stage, engine, n, threads, us, rows, counters,
        ));
    };
    let empty = Tuple::new(Vec::<Value>::new());

    // --- GCWA*: rebuild-per-union vs the incremental union walker. ---
    let gcwa_budget = RegimeBudget::unions_of(2);
    let mut gt = Table::new(&[
        "workload",
        "n",
        "minimal",
        "unions",
        "rebuild/union",
        "incremental",
        "speedup",
    ]);
    let mut gtt = Table::new(&["stage", "n", "threads", "pinned (1)", "pooled", "ratio"]);
    for &n in ns {
        let case = gcwa_case(n);
        assert!(case.query.is_boolean(), "gcwa workload is a sentence");
        let run = |engine: &str| match engine {
            "rebuild" => {
                // The pre-regime baseline: same minimal solutions,
                // same union traversal, but every union evaluated
                // through `holds_on` — one index build per union.
                let csol = canonical_solution(&case.mapping, &case.source);
                let ev = PlanCatalog::shared().eval_in(&case.query, &case.mapping.target);
                let palette = regimes::answer_palette(&case.source, &case.query);
                let (minimal, _) = minimal_rep_a_members(&csol.instance, &palette, None);
                let mut certain = true;
                let unions = for_each_union(&minimal, 2, &mut |delta| {
                    if ev.holds_on(delta.instance(), &empty) {
                        false
                    } else {
                        certain = false;
                        true
                    }
                });
                (certain, minimal.len(), unions)
            }
            _ => {
                let out = regimes::gcwa_star_answers(
                    &case.mapping,
                    &case.source,
                    &case.query,
                    &gcwa_budget,
                );
                (!out.answers.is_empty(), out.minimal_solutions, out.unions)
            }
        };
        let mut times = Vec::new();
        let mut verdicts = Vec::new();
        let mut stats = (0usize, 0u64);
        let mut diffs = Vec::new();
        for engine in ["rebuild", "incremental"] {
            let mut best: Option<std::time::Duration> = None;
            let mut answer = None;
            for _ in 0..5 {
                let (out, d) = timed(|| run(engine));
                best = Some(best.map_or(d, |b| b.min(d)));
                answer = Some(out);
            }
            let best = best.expect("ran");
            let (_, diff) = captured_counters(|| run(engine));
            let (certain, minimal, unions) = answer.expect("ran");
            verdicts.push(certain);
            stats = (minimal, unions);
            times.push(best);
            record(
                case.workload,
                "gcwa",
                engine,
                n,
                1,
                best.as_micros(),
                unions as usize,
                &format!(
                    "{}{}",
                    counters_field(&diff, UNION_COUNTERS),
                    gauges_field(&diff, SOLVER_GAUGES)
                ),
            );
            diffs.push(diff);
        }
        assert_eq!(verdicts[0], verdicts[1], "gcwa n={n}: engines disagree");
        // Both arms enumerate the same minimal solutions and walk the same
        // unions on the shared delta store; the union-walk work metrics
        // must agree bit-for-bit.
        assert_work_identity(smoke, "gcwa", n, UNION_COUNTERS, &diffs[0], &diffs[1]);
        assert!(
            verdicts[1],
            "gcwa n={n}: the workload query is GCWA*-certain"
        );
        if n <= 16 {
            // Brute-force oracle: materialized unions, tree-walking eval.
            let csol = canonical_solution(&case.mapping, &case.source);
            let palette = regimes::answer_palette(&case.source, &case.query);
            let (minimal, _) = minimal_rep_a_members(&csol.instance, &palette, None);
            let mut oracle = true;
            for i in 0..minimal.len() {
                if !case.query.holds_boolean(&minimal[i]) {
                    oracle = false;
                }
                for j in i + 1..minimal.len() {
                    if !case.query.holds_boolean(&minimal[i].union(&minimal[j])) {
                        oracle = false;
                    }
                }
            }
            assert_eq!(
                verdicts[1], oracle,
                "gcwa n={n}: regime answer must be oracle-identical"
            );
        }
        assert_smoke_parity(smoke, "gcwa", n, times[0], times[1]);
        // Threads axis: the incremental regime re-run on the pool — the
        // union retain/refute sweeps chunk the union space across workers
        // and reconstruct the sequential early-stop semantics, so the
        // verdict, the minimal-solution count, AND the reported union
        // count must all be bit-identical to the pinned run.
        for &w in THREAD_WIDTHS {
            rayon::set_threads(w);
            let mut best: Option<std::time::Duration> = None;
            let mut answer = None;
            for _ in 0..3 {
                let (out, d) = timed(|| run("incremental"));
                best = Some(best.map_or(d, |b| b.min(d)));
                answer = Some(out);
            }
            let best = best.expect("ran");
            let (_, diff) = captured_counters(|| run("incremental"));
            let (certain, minimal, unions) = answer.expect("ran");
            assert_eq!(
                (certain, minimal, unions),
                (verdicts[1], stats.0, stats.1),
                "gcwa n={n} threads={w}: pooled sweep diverged from the pinned run"
            );
            record(
                case.workload,
                "gcwa",
                "incremental",
                n,
                w,
                best.as_micros(),
                unions as usize,
                &format!(
                    "{}{}",
                    counters_field(&diff, UNION_COUNTERS),
                    gauges_field(&diff, SOLVER_GAUGES)
                ),
            );
            assert_threads_parity(smoke, "gcwa", n, w, times[1], best);
            gtt.row(vec![
                "gcwa".to_string(),
                n.to_string(),
                w.to_string(),
                fmt_duration(times[1]),
                fmt_duration(best),
                format!(
                    "{:.1}×",
                    times[1].as_secs_f64() / best.as_secs_f64().max(1e-9)
                ),
            ]);
        }
        rayon::set_threads(1);
        let speedup = times[0].as_secs_f64() / times[1].as_secs_f64().max(1e-9);
        gt.row(vec![
            case.workload.to_string(),
            n.to_string(),
            stats.0.to_string(),
            stats.1.to_string(),
            fmt_duration(times[0]),
            fmt_duration(times[1]),
            format!("{speedup:.1}×"),
        ]);
    }
    println!("{}", gt.render());

    println!("### Threads axis (GCWA* union sweep on the pool)\n");
    println!("{}", gtt.render());

    // --- Approximation: rebuild-per-member vs the incremental sampler. ---
    let sample = SearchBudget {
        max_leaves: None,
        ..SearchBudget::bounded(1, 1)
    };
    let mut at = Table::new(&[
        "workload",
        "n",
        "members",
        "rebuild/member",
        "incremental",
        "speedup",
    ]);
    for &n in ns {
        let case = approx_case(n);
        assert!(case.query.is_boolean(), "approx workload is a sentence");
        let run = |engine: &str| match engine {
            "rebuild" => {
                // Same rewritings (incl. the rigid-negation
                // tightening) and sampling sweep, but every member
                // check rebuilds an index (`holds_on`).
                let csol = canonical_solution(&case.mapping, &case.source);
                let rigid =
                    dx_logic::classify::rigid_relations_of(&case.query.formula, &csol.instance);
                let (_, over) = regimes::under_over_queries_rigid(&case.query, &rigid);
                let (upper0, _) =
                    dx_core::certain_answers_with(&case.mapping, &csol, &case.source, &over, None);
                let ev = PlanCatalog::shared().eval_in(&case.query, &case.mapping.target);
                let palette = regimes::answer_palette(&case.source, &case.query);
                let mut survivors: Vec<Tuple> = upper0.iter().cloned().collect();
                let outcome =
                    search_rep_a_indexed(&csol.instance, &palette, &sample, &mut |leaf| {
                        survivors.retain(|t| ev.holds_on(leaf.instance(), t));
                        survivors.is_empty()
                    });
                (survivors.len(), outcome.leaves)
            }
            _ => {
                let out = regimes::approx_certain_answers(
                    &case.mapping,
                    &case.source,
                    &case.query,
                    Some(&sample),
                );
                (out.upper.len(), out.leaves)
            }
        };
        let mut times = Vec::new();
        let mut uppers = Vec::new();
        let mut leaves = Vec::new();
        for engine in ["rebuild", "incremental"] {
            let mut best: Option<std::time::Duration> = None;
            let mut answer = None;
            for _ in 0..5 {
                let (out, d) = timed(|| run(engine));
                best = Some(best.map_or(d, |b| b.min(d)));
                answer = Some(out);
            }
            let best = best.expect("ran");
            // No cross-arm counter-identity assert here: the rebuild arm's
            // hand-rolled pipeline need not match the regime's internal
            // lower-bound search counter-for-counter. The `uppers`/`leaves`
            // equality asserts below are this race's work-identity gate.
            let (_, diff) = captured_counters(|| run(engine));
            let (upper, lv) = answer.expect("ran");
            uppers.push(upper);
            leaves.push(lv);
            times.push(best);
            record(
                case.workload,
                "approx",
                engine,
                n,
                1,
                best.as_micros(),
                lv as usize,
                &format!(
                    "{}{}",
                    counters_field(&diff, SOLVER_COUNTERS),
                    gauges_field(&diff, SOLVER_GAUGES)
                ),
            );
        }
        assert_eq!(uppers[0], uppers[1], "approx n={n}: engines disagree");
        assert_eq!(leaves[0], leaves[1], "approx n={n}: same sampled members");
        assert_eq!(uppers[1], 1, "approx n={n}: upper bound stays nonempty");
        if n <= 16 {
            // Oracle: exact certain answer over the full sampled space.
            let csol = canonical_solution(&case.mapping, &case.source);
            let palette = regimes::answer_palette(&case.source, &case.query);
            let mut exact = true;
            search_rep_a(&csol.instance, &palette, &sample, &mut |member| {
                if !case.query.holds_boolean(member) {
                    exact = false;
                }
                false
            });
            let out = regimes::approx_certain_answers(
                &case.mapping,
                &case.source,
                &case.query,
                Some(&sample),
            );
            assert_eq!(
                !out.upper.is_empty(),
                exact,
                "approx n={n}: upper must be oracle-identical on the sampled space"
            );
            assert!(
                out.lower.is_empty() || exact,
                "approx n={n}: lower must stay sound"
            );
        }
        assert_smoke_parity(smoke, "approx", n, times[0], times[1]);
        let speedup = times[0].as_secs_f64() / times[1].as_secs_f64().max(1e-9);
        at.row(vec![
            case.workload.to_string(),
            n.to_string(),
            leaves[0].to_string(),
            fmt_duration(times[0]),
            fmt_duration(times[1]),
            format!("{speedup:.1}×"),
        ]);
    }
    println!("{}", at.render());
    println!(
        "Shape check: the union walk pays one private-delta insert per \
         union (O(1) for this family) against a Θ(n) index rebuild per \
         union on the baseline — likewise per sampled member in the \
         approximation sweep; verdicts asserted identical across engines \
         and against brute-force oracles at the smoke sizes. The threads \
         rows re-run the incremental regime on the work-stealing pool with \
         verdict, minimal count, and union count asserted bit-identical.\n"
    );
    rayon::set_threads(0);
    records
}

/// E18 — streaming exchange: the delta protocol raced end to end. The
/// incremental arm holds one `StreamSession` across the workload's whole
/// update trace (incrementally maintained canonical solution + delta-plan
/// answer maintenance, recompute fallback on the retraction batch); the
/// rebuild arm re-chases the rolling source and re-answers from scratch
/// after every batch. Per-batch answer identity is asserted on every run
/// (not just smoke); smoke mode parity-gates the incremental arm, and the
/// full sweep enforces the ≥2× incremental speedup at n ≥ 64 — the
/// headline claim of `DESIGN.md §Streaming data exchange`. Emits the
/// `stream` rows of `BENCH_query.json`.
fn e18_stream(ns: &[usize], smoke: bool) -> Vec<String> {
    use dx_bench::query_workloads::stream_case;
    use dx_core::certain::certain_answers;
    use dx_core::streaming::{QueryPath, StreamRegime, StreamSession};

    println!("## E18 — streaming exchange: incremental maintenance vs recompute (dx-core)\n");
    rayon::set_threads(1);
    let mut records: Vec<String> = Vec::new();
    let mut t = Table::new(&[
        "workload",
        "n",
        "batches",
        "delta paths",
        "rebuild/batch",
        "incremental",
        "speedup",
    ]);
    for &n in ns {
        let case = stream_case(n);
        let batches = case.updates.len();
        // The rebuild baseline: the pre-streaming batch entry point, run
        // once per batch over the rolling source.
        let run_rebuild = || {
            let mut rolling = case.source.clone();
            let mut per_batch = Vec::with_capacity(batches);
            for up in &case.updates {
                up.apply(&mut rolling);
                let (rel, _) = certain_answers(&case.mapping, &rolling, &case.query, None);
                per_batch.push(rel);
            }
            per_batch
        };
        let run_incremental = || {
            let mut sess =
                StreamSession::new(case.mapping.clone(), Vec::new(), case.source.clone());
            sess.register("q", case.query.clone(), StreamRegime::Certain);
            let mut per_batch = Vec::with_capacity(batches);
            let mut delta_paths = 0usize;
            for up in &case.updates {
                let report = sess.update(up);
                delta_paths += report
                    .queries
                    .iter()
                    .filter(|(_, p)| matches!(p, QueryPath::DeltaPlan { .. }))
                    .count();
                per_batch.push(sess.answers("q").expect("registered").0);
            }
            (per_batch, delta_paths)
        };
        let mut best_rebuild: Option<Duration> = None;
        let mut rebuild_answers = None;
        let mut best_incr: Option<Duration> = None;
        let mut incr_out = None;
        for _ in 0..5 {
            let (out, d) = timed(run_rebuild);
            best_rebuild = Some(best_rebuild.map_or(d, |b| b.min(d)));
            rebuild_answers = Some(out);
            let (out, d) = timed(run_incremental);
            best_incr = Some(best_incr.map_or(d, |b| b.min(d)));
            incr_out = Some(out);
        }
        let (best_rebuild, best_incr) = (best_rebuild.expect("ran"), best_incr.expect("ran"));
        let rebuild_answers = rebuild_answers.expect("ran");
        let (incr_answers, delta_paths) = incr_out.expect("ran");
        // The differential gate: after EVERY batch the maintained answer
        // set must equal recompute-from-scratch.
        for (i, (a, b)) in rebuild_answers.iter().zip(&incr_answers).enumerate() {
            assert_eq!(
                a, b,
                "stream n={n} batch {i}: maintained answers diverge from recompute"
            );
        }
        // All insert-only batches must actually ride delta plans (only the
        // final retraction batch is allowed to fall back).
        assert!(
            delta_paths >= batches - 1,
            "stream n={n}: only {delta_paths}/{batches} batches rode the delta plan"
        );
        let final_rows = incr_answers.last().map_or(0, |r| r.len());
        records.push(query_row(
            case.workload,
            "stream",
            "rebuild",
            n,
            1,
            best_rebuild.as_micros(),
            final_rows,
            "",
        ));
        records.push(query_row(
            case.workload,
            "stream",
            "incremental",
            n,
            1,
            best_incr.as_micros(),
            final_rows,
            "",
        ));
        assert_smoke_parity(smoke, "stream", n, best_rebuild, best_incr);
        let speedup = best_rebuild.as_secs_f64() / best_incr.as_secs_f64().max(1e-9);
        if !smoke && n >= 64 {
            assert!(
                speedup >= 2.0,
                "stream n={n}: incremental maintenance must beat per-batch \
                 recompute by ≥2× (measured {speedup:.2}×)"
            );
        }
        t.row(vec![
            case.workload.to_string(),
            n.to_string(),
            batches.to_string(),
            format!("{delta_paths}/{batches}"),
            fmt_duration(best_rebuild),
            fmt_duration(best_incr),
            format!("{speedup:.1}×"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check: the rebuild arm re-chases all n edges and re-answers \
         the two-hop query per batch (Θ(n) per batch, Θ(n·B) total); the \
         session arm chases only each batch's delta and unions the delta \
         plan's new answers into the maintained raw set (O(|Δ|) per \
         insert-only batch), recomputing once on the final retraction. \
         Answer sets asserted identical batch for batch.\n"
    );
    rayon::set_threads(0);
    records
}

/// E14 — the §2-cited Imieliński–Lipski mechanism: exact CWA certain
/// answers for a difference query via c-tables, against the coNP valuation
/// search (two independent exact engines).
fn e14_ctables() {
    use dx_core::ctable_bridge::certain_answers_cwa_ra;
    use dx_ctables::RaExpr;
    use dx_logic::Query;
    println!("## E14 — Conditional tables vs coNP search (CWA, full RA)\n");
    let m = Mapping::parse("XP(x:cl) <- XA(x, y); XQ(z:cl) <- XB(y, z)").unwrap();
    let fo = Query::parse(&["x"], "XP(x) & !XQ(x)").unwrap();
    let ra = RaExpr::rel("XP").diff(RaExpr::rel("XQ"));
    let mut t = Table::new(&[
        "n rows/side",
        "coNP search",
        "c-table route",
        "answers agree",
    ]);
    for n in [1usize, 2, 3] {
        let mut s = Instance::new();
        for i in 0..n {
            s.insert_names("XA", &[&format!("a{i}"), &format!("t{i}")]);
            s.insert_names("XB", &[&format!("u{i}"), &format!("b{i}")]);
        }
        let ((a1, _), d1) = timed(|| certain::certain_answers(&m, &s, &fo, None));
        let (a2, d2) = timed(|| certain_answers_cwa_ra(&m, &s, &ra));
        t.row(vec![
            n.to_string(),
            fmt_duration(d1),
            fmt_duration(d2),
            (a1 == a2).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check: both engines are exponential in the null count (the \
         problem is coNP-complete) and agree exactly; the c-table route \
         spends its time in condition-validity checks instead of instance \
         search.\n"
    );
}
