//! `dx` — the scenario-language command line.
//!
//! ```text
//! dx check <file.dx>                    parse + validate, report diagnostics
//! dx gen --seed S --grade G             print a generated scenario
//! dx corpus [--seeds N] [--grades 0,3] [--out PATH]
//!                                       run the differential corpus race
//! dx <file.dx> [--query NAME] [--chase|--certain|--gcwa|--approx|--all]
//!              [--updates] [--explain]  run pipelines over a scenario
//! ```
//!
//! A `.dx` run loads the scenario, chases it (both engines, constraints
//! included), and answers its queries under the selected regimes through
//! the shared `PlanCatalog`. `--updates` then streams the file's `update`
//! blocks through a `dx_core::StreamSession`, reporting per batch how each
//! registered query was serviced (delta plan / recompute / skip) and its
//! refreshed certain answers. `--explain` additionally prints the compiled
//! plan of each query with per-node executed-row counts (the dx-obs
//! EXPLAIN face) and, when the file carries `update` blocks, the derived
//! delta plan per batch — `R$delta` scans mark the recomputed frontier,
//! every other node re-reads maintained state.

use dx_bench::corpus::{run_corpus, CorpusStats};
use dx_chase::chase_engine::{ChaseOutcome, DEFAULT_CHASE_LIMIT};
use dx_chase::{canonical_solution_with_deps_via, NaiveChase};
use dx_core::certain::certain_answers;
use dx_core::regimes::{approx_certain_answers, gcwa_star_answers, RegimeBudget};
use dx_core::streaming::{affected_target_rels, QueryPath, StreamRegime, StreamSession};
use dx_engine::IndexedChase;
use dx_solver::{Completeness, SearchBudget};
use dx_text::{gen_text, Grade, Scenario};
use std::process::ExitCode;

const USAGE: &str = "usage:
  dx check <file.dx>
  dx gen --seed <S> [--grade <0..3>]
  dx corpus [--seeds <N>] [--grades <lo,hi>] [--out <path.json>]
  dx <file.dx> [--query <NAME>] [--chase|--certain|--gcwa|--approx|--all] [--updates] [--explain]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some(path) if path.ends_with(".dx") => cmd_run(path, &args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Flag-value lookup: `--name value`.
fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn load(path: &str) -> Result<Scenario, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("dx: cannot read {path}: {e}");
        ExitCode::from(2)
    })?;
    Scenario::parse(&text).map_err(|e| {
        eprintln!("{path}: {}", e.render(&text));
        ExitCode::FAILURE
    })
}

/// `dx check`: parse + validate, print a one-line summary.
fn cmd_check(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match load(path) {
        Ok(sc) => {
            println!(
                "{path}: ok — scenario \"{}\": {} rules, {} constraints, {} facts, {} queries",
                sc.name,
                sc.mapping.stds.len(),
                sc.constraints.len(),
                sc.source.tuple_count(),
                sc.queries.len()
            );
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

/// `dx gen`: print the canonical text of a generated scenario.
fn cmd_gen(args: &[String]) -> ExitCode {
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let grade: u8 = flag_value(args, "--grade")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    print!("{}", gen_text(seed, Grade::new(grade)));
    ExitCode::SUCCESS
}

/// `dx corpus`: race `seeds × grades` generated scenarios and emit the
/// aggregated statistics as JSON (stdout, plus `--out` when given).
fn cmd_corpus(args: &[String]) -> ExitCode {
    let seeds: u64 = flag_value(args, "--seeds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let grades: Vec<Grade> = match flag_value(args, "--grades") {
        Some(spec) => {
            let parts: Vec<u8> = spec.split(',').filter_map(|p| p.parse().ok()).collect();
            match parts[..] {
                [lo, hi] if lo <= hi => (lo..=hi).map(Grade::new).collect(),
                [only] => vec![Grade::new(only)],
                _ => {
                    eprintln!("dx: --grades wants `lo,hi` or a single level");
                    return ExitCode::from(2);
                }
            }
        }
        None => Grade::ALL.to_vec(),
    };
    let stats: CorpusStats = run_corpus(0..seeds, &grades);
    let json = stats.to_json();
    print!("{json}");
    if let Some(out) = flag_value(args, "--out") {
        if let Some(dir) = std::path::Path::new(out).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("dx: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("corpus stats written to {out}");
    }
    ExitCode::SUCCESS
}

/// `dx <file.dx>`: chase + query pipelines (+ `--explain`).
fn cmd_run(path: &str, args: &[String]) -> ExitCode {
    let sc = match load(path) {
        Ok(sc) => sc,
        Err(code) => return code,
    };
    let all = args.iter().any(|a| a == "--all");
    let wants = |flag: &str| all || args.iter().any(|a| a == flag);
    let default_run = !args.iter().any(|a| {
        matches!(
            a.as_str(),
            "--chase" | "--certain" | "--gcwa" | "--approx" | "--all"
        )
    });
    let explain = args.iter().any(|a| a == "--explain");
    let query_filter = flag_value(args, "--query");

    println!("# {path} — scenario \"{}\"", sc.name);

    if wants("--chase") || default_run {
        run_chase(&sc);
    }

    // Interactive budgets: tighter leaf caps than the library defaults so a
    // pathological scenario degrades to a `capped` report, not a long sweep.
    let budget = SearchBudget {
        max_leaves: Some(100_000),
        ..SearchBudget::default()
    };
    let regime_budget = RegimeBudget {
        max_union_size: 2,
        max_minimal_solutions: 12,
        max_leaves: Some(5_000),
    };
    for nq in &sc.queries {
        if query_filter.is_some_and(|want| want != nq.name) {
            continue;
        }
        println!("\n## query {}", nq.name);
        if explain {
            print_explain(&sc, &nq.query);
        }
        if wants("--certain") || default_run {
            let (rel, comp) = certain_answers(&sc.mapping, &sc.source, &nq.query, Some(&budget));
            println!("certain   [{}]: {}", comp_label(comp), render_rel(&rel));
        }
        if wants("--gcwa") {
            let out = gcwa_star_answers(&sc.mapping, &sc.source, &nq.query, &regime_budget);
            println!(
                "gcwa*     [{}]: {} ({} minimal solutions, {} unions)",
                comp_label(out.completeness),
                render_rel(&out.answers),
                out.minimal_solutions,
                out.unions
            );
        }
        if wants("--approx") {
            let out = approx_certain_answers(&sc.mapping, &sc.source, &nq.query, Some(&budget));
            println!(
                "approx    [{}]: lower {} / upper {} (tight: {})",
                comp_label(out.completeness),
                render_rel(&out.lower),
                render_rel(&out.upper),
                out.tight
            );
        }
    }

    if args.iter().any(|a| a == "--updates") {
        run_updates(&sc, &budget);
    }

    if query_filter.is_some_and(|want| sc.query(want).is_none()) {
        eprintln!("dx: no query named {:?} in {path}", query_filter.unwrap());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `--updates`: stream the scenario's `update` blocks through one
/// [`StreamSession`], reporting per batch how the canonical solution moved
/// and how each registered query was serviced — the CLI face of the delta
/// protocol (`DESIGN.md §Streaming data exchange`).
fn run_updates(sc: &Scenario, budget: &SearchBudget) {
    println!("\n## updates (streaming session)");
    if sc.updates.is_empty() {
        println!("(no `update` blocks in this scenario)");
        return;
    }
    if !sc.constraints.is_empty() {
        println!("(note: target constraints re-chase via the merged-taint fallback when touched)");
    }
    let mut sess = StreamSession::new(
        sc.mapping.clone(),
        sc.constraints.clone(),
        sc.source.clone(),
    );
    sess.set_search_budget(Some(budget.clone()));
    for nq in &sc.queries {
        sess.register(&nq.name, nq.query.clone(), StreamRegime::Certain);
    }
    for nu in &sc.updates {
        let report = sess.update(&nu.update);
        println!(
            "\nbatch \"{}\": csol +{} / -{} annotated tuples",
            nu.name,
            report.update.added.len(),
            report.update.removed.len()
        );
        for (name, path) in &report.queries {
            let how = match path {
                QueryPath::Skipped => "skipped (unaffected)".to_string(),
                QueryPath::DeltaPlan { delta_answers } => {
                    format!("delta plan (+{delta_answers} candidate rows)")
                }
                QueryPath::Recomputed => "recomputed (fallback)".to_string(),
            };
            match sess.answers(name) {
                Some((rel, comp)) => println!(
                    "  {name}: {how} -> [{}] {}",
                    comp_label(comp),
                    render_rel(&rel)
                ),
                None => println!("  {name}: {how}"),
            }
        }
    }
}

/// The chase phase of a `.dx` run: both engines, constraints included,
/// differentially checked exactly as the corpus harness does.
fn run_chase(sc: &Scenario) {
    let naive = canonical_solution_with_deps_via(
        &NaiveChase,
        &sc.mapping,
        &sc.constraints,
        &sc.source,
        DEFAULT_CHASE_LIMIT,
    );
    let indexed = canonical_solution_with_deps_via(
        &IndexedChase,
        &sc.mapping,
        &sc.constraints,
        &sc.source,
        DEFAULT_CHASE_LIMIT,
    );
    assert_eq!(
        std::mem::discriminant(&naive.outcome),
        std::mem::discriminant(&indexed.outcome),
        "chase engines disagree on {}",
        sc.name
    );
    println!("\n## chase (naive & indexed agree)");
    match indexed.outcome {
        ChaseOutcome::Satisfied => {
            println!(
                "satisfied — CSol_A(S) has {} tuples, {} nulls:",
                indexed.instance.tuple_count(),
                indexed.instance.nulls().len()
            );
            print!("{}", indexed.instance);
        }
        ChaseOutcome::Failed { .. } => {
            println!("failed — an egd equates distinct constants; no solution exists");
        }
        ChaseOutcome::StepLimit => println!("step limit reached (non-terminating chase?)"),
    }
}

/// The `--explain` face: compile the query through the same lowering the
/// `PlanCatalog` uses and print the per-node executed-row report over the
/// constraint-free canonical solution.
fn print_explain(sc: &Scenario, query: &dx_logic::Query) {
    let csol = dx_chase::canonical_solution(&sc.mapping, &sc.source);
    let target = csol.rel_part();
    match dx_query::lower_formula(&query.formula) {
        Ok(plan) => {
            let idx = dx_relation::InstanceIndex::build(&target);
            let (rows, report) = dx_query::explain_run(&plan, &idx);
            println!("{}", report.render());
            println!(
                "{} result rows over CSol(S) ({} tuples).",
                rows.rows.len(),
                target.tuple_count()
            );
        }
        Err(e) => println!("(not safe-range; tree-walking oracle evaluates it: {e:?})"),
    }
    // The delta face: when the scenario carries update blocks, show how
    // each batch would be serviced for this query — the derived delta plan
    // (`R$delta` scans are the recomputed frontier, everything else
    // re-reads maintained state) or the documented fallback.
    if sc.updates.is_empty() {
        return;
    }
    let Ok(plan) = dx_query::lower_formula(&query.formula) else {
        return;
    };
    for nu in &sc.updates {
        let changed = affected_target_rels(&sc.mapping, &nu.update);
        let names: Vec<String> = changed.iter().map(|r| r.to_string()).collect();
        println!(
            "delta plan for update \"{}\" (touches {{{}}}):",
            nu.name,
            names.join(", ")
        );
        if nu.update.retracts().count() > 0 {
            println!("  retraction present -> recompute (maintained sets cannot shrink by union)");
            continue;
        }
        match dx_query::delta_plan(&plan, &changed) {
            None => println!("  non-monotone occurrence -> recompute"),
            Some(dx_query::Plan::Empty { .. }) => {
                println!("  query reads none of the changed relations -> maintained as-is (skip)")
            }
            Some(dp) => {
                for line in format!("{dp}").lines() {
                    println!("  {line}");
                }
            }
        }
    }
}

fn comp_label(c: Completeness) -> &'static str {
    match c {
        Completeness::Exact => "exact",
        Completeness::Bounded => "bounded",
        Completeness::Capped => "capped",
    }
}

/// Render a relation as `{(a, b), (c, d)}` on one line.
fn render_rel(rel: &dx_relation::Relation) -> String {
    let mut rows: Vec<String> = rel.iter().map(|t| t.to_string()).collect();
    rows.sort();
    format!("{{{}}}", rows.join(", "))
}
