//! # dx-bench — shared harness utilities for the experiment suite
//!
//! The paper has no empirical section; its "tables and figures" are
//! complexity claims (Theorems 1–5, Table 1) and worked examples. The bench
//! suite regenerates the *shape* of each claim: which configuration is
//! tractable, which blows up, and where behaviour changes. See
//! `EXPERIMENTS.md` at the repository root for the experiment index and
//! recorded outcomes.
//!
//! This library crate holds the workload builders shared between the
//! Criterion benches (`benches/*.rs`) and the `experiments` binary.

#![warn(missing_docs)]

use dx_chase::Mapping;
use dx_logic::Query;
use dx_relation::Instance;
use std::time::{Duration, Instant};

pub mod chase_workloads;
pub mod corpus;
pub mod query_workloads;

/// Time a closure, returning (result, elapsed).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Format a duration in adaptive units for table output.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.1} ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2} s", us as f64 / 1_000_000.0)
    }
}

/// A simple copy source: `E` with `n` edges on `n+1` vertices (a path).
pub fn path_source(n: usize) -> Instance {
    let mut s = Instance::new();
    for i in 0..n {
        s.insert_names("E", &[&format!("v{i}"), &format!("v{}", i + 1)]);
    }
    s
}

/// A unary source `E = {e0 … e{n-1}}`.
pub fn unary_source(n: usize) -> Instance {
    let mut s = Instance::new();
    for i in 0..n {
        s.insert_names("E", &[&format!("e{i}")]);
    }
    s
}

/// The copy mapping `Ep(x,y) :- E(x,y)` with the given annotation suffix
/// (`"cl"` / `"op"`), plus builders for the three annotation regimes used
/// across experiments.
pub fn copy2(ann: &str) -> Mapping {
    Mapping::parse(&format!("Ep(x:{ann}, y:{ann}) <- E(x, y)")).unwrap()
}

/// The `#op = 1` null-introducing mapping `R(x:cl, z:op) :- E(x)`.
pub fn open_null_mapping() -> Mapping {
    Mapping::parse("R(x:cl, z:op) <- E(x)").unwrap()
}

/// The `#op = 0` variant `R(x:cl, z:cl) :- E(x)`.
pub fn closed_null_mapping() -> Mapping {
    Mapping::parse("R(x:cl, z:cl) <- E(x)").unwrap()
}

/// An FO (non-monotone, non-`∀*∃*`) query over `R` used by the DEQA
/// experiments: "some x has R-values that nothing else shares".
pub fn fo_query() -> Query {
    Query::boolean(
        dx_logic::parse_formula(
            "exists x. ((exists u. R(x, u)) & (forall y w. (R(y, w) & R(x, w) -> y = x)))",
        )
        .unwrap(),
    )
}

/// A *certainly-true* full-FO query over `R` — the decision must exhaust
/// the witness space, making the exponential search visible (contrast with
/// [`fo_query`], which is refuted at the first counterexample).
pub fn exhaust_query() -> Query {
    Query::boolean(
        dx_logic::parse_formula(
            "exists x u. (R(x, u) & forall y w. (R(y, w) & R(x, w) -> R(x, u)))",
        )
        .unwrap(),
    )
}

/// The functional-dependency query "R's second attribute is unique per
/// first" — a `∀*` query (Prop 5 regime).
pub fn fd_query() -> Query {
    Query::boolean(
        dx_logic::parse_formula("forall x y1 y2. (R(x, y1) & R(x, y2) -> y1 = y2)").unwrap(),
    )
}

/// A markdown table printer for the `experiments` binary.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render as a markdown table.
    pub fn render(&self) -> String {
        // Width in chars, not bytes — cells contain µ and ⊥.
        let w = |s: &str| s.chars().count();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| w(h)).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(w(c));
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new(&["n", "time"]);
        t.row(vec!["1".into(), "2 µs".into()]);
        let s = t.render();
        assert!(s.contains("| n | time |"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn workload_builders() {
        assert_eq!(path_source(3).tuple_count(), 3);
        assert_eq!(unary_source(4).tuple_count(), 4);
        assert!(copy2("cl").is_all_closed());
        assert_eq!(open_null_mapping().num_op(), 1);
        assert_eq!(
            fd_query().class(),
            dx_logic::QueryClass::UniversalExistential
        );
        assert_eq!(fo_query().class(), dx_logic::QueryClass::FullFirstOrder);
    }
}
