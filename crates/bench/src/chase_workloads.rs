//! The chase-heavy workload cases shared by the engine benches
//! (`benches/engine.rs`) and the `experiments` binary's `BENCH_chase.json`
//! emitter: a fully specified exchange-with-constraints problem per family
//! and size.

use dx_chase::target_deps::TargetDep;
use dx_chase::Mapping;
use dx_relation::{Ann, Instance, Schema};
use dx_workloads::{conference, copying};

/// One benchmarkable chase problem: mapping + target dependencies + source.
pub struct ChaseCase {
    /// Workload family name (stable key in `BENCH_chase.json`).
    pub workload: &'static str,
    /// The scale parameter the source was built from.
    pub n: usize,
    /// The annotated schema mapping.
    pub mapping: Mapping,
    /// Weakly acyclic target dependencies.
    pub deps: Vec<TargetDep>,
    /// The ground source instance.
    pub source: Instance,
}

/// The membership workload: the §1 conference mapping at `n` papers, with a
/// decision-inventing tgd and a one-decision-per-paper FD.
pub fn conference_case(n: usize) -> ChaseCase {
    ChaseCase {
        workload: "membership",
        n,
        mapping: conference::mapping(),
        deps: TargetDep::parse_many(
            "Decisions(p:cl, d:op) <- Reviews(p, r); \
             d1 = d2 <- Decisions(p, d1) & Decisions(p, d2)",
        )
        .expect("deps parse"),
        source: conference::source(n, 2),
    }
}

/// A composition-shaped two-hop pipeline (the Table 1 shape): exchange `E`
/// into `M`, then target dependencies push `M` across a second hop into `F`
/// with a key constraint on the far side.
pub fn composition_case(n: usize) -> ChaseCase {
    let mut source = Instance::new();
    for i in 0..n {
        source.insert_names("CbE", &[&format!("v{i}"), &format!("v{}", (i + 1) % n)]);
        source.insert_names("CbE", &[&format!("v{i}"), &format!("w{i}")]);
    }
    ChaseCase {
        workload: "composition",
        n,
        mapping: Mapping::parse("CbM(x:cl, y:cl) <- CbE(x, y)").expect("mapping parses"),
        deps: TargetDep::parse_many(
            "CbF(x:cl, z:op) <- CbM(x, y); \
             CbG(z:cl) <- CbF(x, z); \
             z1 = z2 <- CbF(x, z1) & CbF(x, z2)",
        )
        .expect("deps parse"),
        source,
    }
}

/// The copying workload (§4's lower-bound carrier): copy a binary relation,
/// symmetrize the copy, and invent one keyed witness per vertex.
pub fn copying_case(n: usize) -> ChaseCase {
    let schema = Schema::from_pairs([("CpE", 2)]);
    let mut source = Instance::new();
    for i in 0..n {
        source.insert_names("CpE", &[&format!("v{i}"), &format!("v{}", i + 1)]);
    }
    ChaseCase {
        workload: "copying",
        n,
        mapping: copying::copy_mapping(&schema, Ann::Closed),
        deps: TargetDep::parse_many(
            "CpE_p(y:cl, x:cl) <- CpE_p(x, y); \
             CpT(x:cl, z:op) <- CpE_p(x, y); \
             z1 = z2 <- CpT(x, z1) & CpT(x, z2)",
        )
        .expect("deps parse"),
        source,
    }
}

/// All three families at one size (the `BENCH_chase.json` sweep axis).
pub fn all_cases(n: usize) -> Vec<ChaseCase> {
    vec![conference_case(n), composition_case(n), copying_case(n)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_chase::chase_engine::ChaseOutcome;
    use dx_chase::target_deps::is_weakly_acyclic;
    use dx_chase::{canonical_solution_with_deps_via, NaiveChase};

    #[test]
    fn cases_are_weakly_acyclic_and_chaseable() {
        for case in all_cases(4) {
            assert!(is_weakly_acyclic(&case.deps), "{}", case.workload);
            let out = canonical_solution_with_deps_via(
                &NaiveChase,
                &case.mapping,
                &case.deps,
                &case.source,
                100_000,
            );
            assert_eq!(out.outcome, ChaseOutcome::Satisfied, "{}", case.workload);
            assert!(out.steps > 0, "{} must actually chase", case.workload);
        }
    }
}
