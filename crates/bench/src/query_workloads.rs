//! The query-evaluation workload cases shared by the query benches
//! (`benches/query.rs`) and the `experiments` binary's `BENCH_query.json`
//! emitter (E16): exchange problems whose cost is dominated by FO
//! evaluation — STD-body evaluation during `CSol_A(S)` construction, and
//! positive-query certain answering over the canonical solution.
//!
//! Both workloads carry a negated existential, the shape where the
//! tree-walking evaluator pays a full active-domain scan per candidate row
//! (O(n²) and up) while the compiled plan runs one anti-join (O(n)).

use dx_chase::Mapping;
use dx_logic::Query;
use dx_relation::{Instance, Update};
use dx_workloads::conference;

/// One benchmarkable query-evaluation problem: a mapping + source whose
/// canonical solution the `query` is then answered over.
pub struct QueryCase {
    /// Workload family name (stable key in `BENCH_query.json`).
    pub workload: &'static str,
    /// The scale parameter the source was built from.
    pub n: usize,
    /// The annotated schema mapping.
    pub mapping: Mapping,
    /// The ground source instance.
    pub source: Instance,
    /// A safe-range target query evaluated naively over `CSol(S)`; the
    /// membership workload's query is positive (the Proposition 3 regime),
    /// the join workload adds safe negation to exercise the anti-join path
    /// of the same `Q_naive` evaluation operator.
    pub query: Query,
}

/// The membership workload: the §1 conference mapping — its third rule's
/// body `Papers(x, y) ∧ ¬∃r Assignments(x, r)` is the ROADMAP-flagged
/// canonical-solution bottleneck — plus the reviewed-papers query.
pub fn membership_case(n: usize) -> QueryCase {
    QueryCase {
        workload: "membership",
        n,
        mapping: conference::mapping(),
        source: conference::source(n, 2),
        query: conference::reviewed_query(),
    }
}

/// The query-answering workload: copy a branching path graph and ask for
/// two-hop pairs ending in a sink — a join pipeline with a negated
/// existential tail.
pub fn join_case(n: usize) -> QueryCase {
    let mut source = Instance::new();
    for i in 0..n {
        source.insert_names("QwSrc", &[&format!("v{i}"), &format!("v{}", i + 1)]);
        source.insert_names("QwSrc", &[&format!("v{i}"), &format!("w{i}")]);
    }
    QueryCase {
        workload: "join",
        n,
        mapping: Mapping::parse("QwE(x:cl, y:cl) <- QwSrc(x, y)").expect("mapping parses"),
        source,
        query: Query::parse(
            &["x", "z"],
            "exists y. QwE(x, y) & QwE(y, z) & !(exists w. QwE(z, w))",
        )
        .expect("query parses"),
    }
}

/// Both evaluation families at one size (the `BENCH_query.json` sweep
/// axis); the `Rep_A` valuation-search family is separate
/// ([`repa_case`]) — its cost profile is leaves × per-leaf check, not a
/// single evaluation.
pub fn all_query_cases(n: usize) -> Vec<QueryCase> {
    vec![membership_case(n), join_case(n)]
}

/// The `Rep_A` refutation workload (the `repa` rows of
/// `BENCH_query.json`): an all-closed exchange — a copied path graph of
/// `n` edges plus one null-producing seed rule — refuting a full-FO query
/// that is *certainly true*, so the coNP valuation search of Theorem 3(1)
/// must exhaust every valuation of the null. The query is chosen so its
/// compiled plan is pure index probes per leaf (the anti-join's filter
/// side starts from a zero-selectivity probe and short-circuits): the
/// workload thereby isolates the cost of *providing* an index per
/// candidate — rebuild-per-candidate (`QueryEval::holds_on`, an
/// `InstanceIndex::build` per leaf, the pre-catalog engine) vs the
/// solver's single incrementally maintained store (`holds_on_indexed` on
/// `Leaf::index`, O(1) delta work per leaf). Leaves grow linearly with
/// `n` (palette = adom + 1 fresh), so the rebuild path is Θ(n²) total
/// and the incremental path Θ(n) — a speedup growing linearly in `n`.
pub fn repa_case(n: usize) -> QueryCase {
    let mut source = Instance::new();
    for i in 0..n {
        source.insert_names("RpSrc", &[&format!("v{i}"), &format!("v{}", i + 1)]);
    }
    source.insert_names("RpSeed", &["s0"]);
    QueryCase {
        workload: "repa",
        n,
        mapping: Mapping::parse("RpE(x:cl, y:cl) <- RpSrc(x, y); RpP(u:cl, z:cl) <- RpSeed(u)")
            .expect("mapping parses"),
        source,
        // ∃∀ shape (full FO): "some seeded value w has no successor that
        // reaches rp_sink". No rp_sink edge exists, so the query is true
        // under every valuation of ⊥ and refutation exhausts the witness
        // space; the inner join grounds out on the empty ·→rp_sink probe.
        query: Query::parse(
            &[],
            "exists u w. RpP(u, w) & (forall x. !(RpE(w, x) & RpE(x, 'rp_sink')))",
        )
        .expect("query parses"),
    }
}

/// The seeded-anti-join workload (the `seeded` rows of `BENCH_query.json`):
/// the §1 one-author query in its **correlated** form —
/// `Q(p) = ∃a Sub(p, a) ∧ ∀b (Sub(p, b) → a = b)`, "papers with exactly one
/// author" — whose negated branch ranges the outer-bound `a` only in an
/// inequality. PR 5's seeded lowering compiles it to a
/// `dx_query::Plan::SeededAntiJoin`; before that the shape fell back to the
/// tree walker. The source gives every even paper one author and every odd
/// paper two, drawn from a constant-size author pool, so the compiled path
/// re-executes the branch once per distinct author (≈ constant many index
/// probes) while the tree walker sweeps the active domain per `(p, a, b)`
/// triple — a gap growing roughly cubically with `n`.
pub fn seeded_case(n: usize) -> QueryCase {
    let mut source = Instance::new();
    for i in 0..n {
        let p = format!("sp{i}");
        source.insert_names("SeSrc", &[&p, &format!("solo{}", i % 7)]);
        if i % 2 == 1 {
            source.insert_names("SeSrc", &[&p, &format!("co{}", (i + 1) % 7)]);
        }
    }
    QueryCase {
        workload: "seeded",
        n,
        mapping: Mapping::parse("SeSub(x:cl, y:cl) <- SeSrc(x, y)").expect("mapping parses"),
        source,
        query: Query::parse(
            &["p"],
            "exists a. SeSub(p, a) & (forall b. (SeSub(p, b) -> a = b))",
        )
        .expect("query parses"),
    }
}

/// The GCWA\* workload (the `gcwa` rows of `BENCH_query.json`): a copied
/// path graph plus one null-producing seed rule with an **open** second
/// position (mixed annotations). The canonical solution has one null, so
/// there are Θ(n) ⊆-minimal solutions (one per palette constant) and, at
/// union cap 2, Θ(n²) candidate unions — the workload isolates the cost of
/// *providing* each union to the query: materialize + `InstanceIndex::build`
/// per union (rebuild baseline) vs one refcounted `DeltaIndex` whose
/// per-union delta is the O(1) private remainder (`dx_solver::for_each_union`).
/// The query carries a negated atom and is GCWA\*-certainly true (no
/// `·→gw_sink` edge exists in any minimal solution), so the walk exhausts
/// the whole union space.
pub fn gcwa_case(n: usize) -> QueryCase {
    let mut source = Instance::new();
    for i in 0..n {
        source.insert_names("GwSrc", &[&format!("v{i}"), &format!("v{}", i + 1)]);
    }
    source.insert_names("GwSeed", &["s0"]);
    QueryCase {
        workload: "gcwa",
        n,
        mapping: Mapping::parse("GwE(x:cl, y:cl) <- GwSrc(x, y); GwP(u:cl, z:op) <- GwSeed(u)")
            .expect("mapping parses"),
        source,
        query: Query::parse(&[], "exists u w. GwP(u, w) & !GwE(w, 'gw_sink')")
            .expect("query parses"),
    }
}

/// The approximation workload (the `approx` rows of `BENCH_query.json`):
/// same shape with an open seed position, sampled under a small replication
/// budget — Θ(n) valuations × Θ(n) replication extras ⇒ Θ(n²) sampled
/// members, each evaluated by one plan probe against the sampler's live
/// index vs an `InstanceIndex::build` per member on the rebuild baseline.
/// The query (negated atom, certainly true on every member) keeps the
/// upper bound nonempty so no early exit cuts the race short.
pub fn approx_case(n: usize) -> QueryCase {
    let mut source = Instance::new();
    for i in 0..n {
        source.insert_names("ApSrc", &[&format!("v{i}"), &format!("v{}", i + 1)]);
    }
    source.insert_names("ApSeed", &["s0"]);
    QueryCase {
        workload: "approx",
        n,
        mapping: Mapping::parse("ApE(x:cl, y:cl) <- ApSrc(x, y); ApP(u:cl, z:op) <- ApSeed(u)")
            .expect("mapping parses"),
        source,
        query: Query::parse(&[], "exists u w. ApP(u, w) & !ApE(w, 'ap_sink')")
            .expect("query parses"),
    }
}

/// One streaming-exchange problem (the `stream` rows of
/// `BENCH_query.json`): an initial source, a positive two-hop target query,
/// and a trace of source [`Update`] batches. The race pits
/// `dx_core::StreamSession` (delta plans over the incrementally maintained
/// canonical solution) against recompute-from-scratch (`certain_answers`
/// over a fresh chase per batch). All but the last batch are insert-only —
/// the regime delta plans are sound in — so the incremental arm does
/// O(|Δ|) work per batch while the rebuild arm re-chases all n edges; the
/// final batch retracts a tuple to exercise the documented
/// fall-back-to-recompute arm of the delta protocol.
pub struct StreamCase {
    /// Workload family name (stable key in `BENCH_query.json`).
    pub workload: &'static str,
    /// The scale parameter (initial path length).
    pub n: usize,
    /// The annotated schema mapping (a closed copy rule).
    pub mapping: Mapping,
    /// The initial ground source instance.
    pub source: Instance,
    /// The positive two-hop query both arms maintain/recompute.
    pub query: Query,
    /// The update trace, applied in order.
    pub updates: Vec<Update>,
}

/// Build the streaming workload at path length `n`: 7 insert-only growth
/// batches (extend the path tip, branch off the prefix) followed by 1
/// churn batch whose retraction forces the recompute fallback.
pub fn stream_case(n: usize) -> StreamCase {
    let mut source = Instance::new();
    for i in 0..n {
        source.insert_names("StSrc", &[&format!("v{i}"), &format!("v{}", i + 1)]);
    }
    let mut updates = Vec::new();
    for b in 0..7usize {
        let tip = n + 2 * b;
        updates.push(
            Update::new()
                .insert_names("StSrc", &[&format!("v{tip}"), &format!("v{}", tip + 1)])
                .insert_names(
                    "StSrc",
                    &[&format!("v{}", tip + 1), &format!("v{}", tip + 2)],
                )
                .insert_names("StSrc", &[&format!("v{b}"), &format!("w{b}")]),
        );
    }
    updates.push(
        Update::new()
            .retract_names("StSrc", &["v0", "v1"])
            .insert_names("StSrc", &["w0", "v2"]),
    );
    StreamCase {
        workload: "stream",
        n,
        mapping: Mapping::parse("StE(x:cl, y:cl) <- StSrc(x, y)").expect("mapping parses"),
        source,
        query: Query::parse(&["x", "z"], "exists y. StE(x, y) & StE(y, z)").expect("query parses"),
        updates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_chase::canonical_solution;
    use dx_logic::classify;
    use dx_query::{CompiledQuery, PlanCatalog, QueryEval};

    #[test]
    fn cases_are_compilable() {
        assert!(
            classify::is_positive(&membership_case(4).query.formula),
            "membership: Prop 3 regime requires a positive query"
        );
        for case in all_query_cases(6) {
            assert!(
                CompiledQuery::compile(&case.query).is_ok(),
                "{}: query must lower to a plan",
                case.workload
            );
            for std in &case.mapping.stds {
                let vars = std.body_vars();
                assert!(
                    CompiledQuery::compile_formula(&std.body, &vars).is_ok(),
                    "{}: STD bodies must lower to plans",
                    case.workload
                );
            }
        }
    }

    #[test]
    fn engines_agree_on_all_cases() {
        for case in all_query_cases(8) {
            let csol = canonical_solution(&case.mapping, &case.source).rel_part();
            let tree = case.query.naive_certain_answers(&csol);
            let planned = QueryEval::new(&case.query).naive_certain_answers(&csol);
            assert_eq!(tree, planned, "{}", case.workload);
            assert!(!tree.is_empty(), "{} must produce answers", case.workload);
        }
    }

    /// The seeded workload hits what it advertises: a correlated-negation
    /// query that compiles to a plan carrying a `SeededAntiJoin`, answering
    /// exactly the single-author papers, identically to the tree walker.
    #[test]
    fn seeded_case_compiles_to_seeded_antijoin() {
        let case = seeded_case(9);
        let ev = QueryEval::new(&case.query);
        assert!(
            ev.is_compiled(),
            "correlated §1 query must compile: {:?}",
            ev.lower_error()
        );
        let plan = format!("{}", ev.compiled().unwrap().plan());
        assert!(plan.contains("seeded-antijoin"), "plan:\n{plan}");
        let csol = canonical_solution(&case.mapping, &case.source).rel_part();
        let tree = case.query.naive_certain_answers(&csol);
        let planned = ev.naive_certain_answers(&csol);
        assert_eq!(tree, planned);
        // Exactly the even (single-author) papers answer.
        assert_eq!(planned.len(), 5);
        assert!(planned.contains(&dx_relation::Tuple::from_names(&["sp0"])));
        assert!(!planned.contains(&dx_relation::Tuple::from_names(&["sp1"])));
    }

    /// The regime workloads hit what they advertise: mixed annotations,
    /// compiled queries with negation, a GCWA\*-certain verdict with a
    /// nonempty answer set, and an approximation bracket whose upper bound
    /// stays nonempty under sampling.
    #[test]
    fn regime_cases_fire_their_regimes() {
        use dx_core::regimes::{approx_certain_answers, gcwa_star_answers, RegimeBudget};
        use dx_solver::SearchBudget;
        for case in [gcwa_case(6), approx_case(6)] {
            assert!(!case.mapping.is_all_closed(), "{}: mixed", case.workload);
            assert!(case.mapping.num_op() > 0 && case.mapping.num_cl() > 0);
            assert!(!classify::is_positive(&case.query.formula));
            assert!(
                CompiledQuery::compile(&case.query).is_ok(),
                "{}: regime queries run on plans",
                case.workload
            );
        }
        let g = gcwa_case(6);
        let out = gcwa_star_answers(&g.mapping, &g.source, &g.query, &RegimeBudget::unions_of(2));
        assert!(!out.answers.is_empty(), "gcwa workload is GCWA*-certain");
        assert!(out.minimal_solutions > 2 && out.unions > out.minimal_solutions as u64);
        let a = approx_case(6);
        let sample = SearchBudget {
            max_leaves: None,
            ..SearchBudget::bounded(1, 1)
        };
        let out = approx_certain_answers(&a.mapping, &a.source, &a.query, Some(&sample));
        assert!(!out.upper.is_empty(), "upper bound survives sampling");
        assert!(
            !out.lower.is_empty() && out.tight,
            "PR 5 rigid-negation tightening: ApE is ground + fully closed in \
             the canonical solution, so !ApE(w, 'ap_sink') survives the \
             under-rewriting and the bracket closes"
        );
        assert!(out.leaves > 0, "the sampler actually ran");
    }

    /// The stream workload hits what it advertises: a positive compiled
    /// query that rides delta plans on every insert-only batch, falls back
    /// to recompute on the churn batch's retraction, and stays
    /// answer-identical to recompute-from-scratch throughout.
    #[test]
    fn stream_case_rides_delta_plans_and_matches_recompute() {
        use dx_core::certain::certain_answers;
        use dx_core::streaming::{QueryPath, StreamRegime, StreamSession};
        let case = stream_case(8);
        assert!(classify::is_positive(&case.query.formula));
        assert!(QueryEval::new(&case.query).is_compiled());
        let (growth, churn) = case.updates.split_at(case.updates.len() - 1);
        assert!(growth.iter().all(|u| u.retracts().count() == 0));
        assert!(churn[0].retracts().count() > 0, "churn batch retracts");
        let mut sess = StreamSession::new(case.mapping.clone(), Vec::new(), case.source.clone());
        sess.register("q", case.query.clone(), StreamRegime::Certain);
        let mut rolling = case.source.clone();
        for (i, up) in case.updates.iter().enumerate() {
            let report = sess.update(up);
            let (_, path) = &report.queries[0];
            if i < growth.len() {
                assert!(
                    matches!(path, QueryPath::DeltaPlan { .. }),
                    "batch {i}: insert-only batches ride the delta plan, got {path:?}"
                );
            } else {
                assert!(
                    matches!(path, QueryPath::Recomputed),
                    "batch {i}: the retraction must fall back to recompute, got {path:?}"
                );
            }
            up.apply(&mut rolling);
            let (maintained, _) = sess.answers("q").expect("registered");
            let (oracle, _) = certain_answers(&case.mapping, &rolling, &case.query, None);
            assert_eq!(maintained, oracle, "batch {i}: answers diverge");
        }
    }

    /// The repa workload hits the regime it advertises: full-FO query over
    /// an all-closed mapping (Theorem 3(1), coNP valuation search), query
    /// compiled, certain answer true, and the incremental search agrees
    /// with a rebuild-per-candidate check leaf for leaf.
    #[test]
    fn repa_case_is_closed_world_exhaustive() {
        use dx_core::certain::{certain_contains, Regime};
        use dx_relation::{Tuple, Value};
        let case = repa_case(6);
        assert!(case.mapping.is_all_closed());
        assert!(!classify::is_positive(&case.query.formula));
        assert!(!classify::is_monotone(&case.query.formula));
        assert_eq!(
            classify::classify(&case.query.formula),
            classify::QueryClass::FullFirstOrder
        );
        let ev = PlanCatalog::shared().eval_in(&case.query, &case.mapping.target);
        assert!(ev.is_compiled(), "repa query must run on a plan");
        let empty = Tuple::new(Vec::<Value>::new());
        let out = certain_contains(&case.mapping, &case.source, &case.query, &empty, None);
        assert!(out.certain, "the query is certainly true");
        assert_eq!(out.regime, Regime::ClosedWorld);
        assert!(
            out.leaves as usize >= case.source.adom_consts().len(),
            "refutation exhausts one leaf per palette constant"
        );
    }
}
