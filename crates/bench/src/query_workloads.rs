//! The query-evaluation workload cases shared by the query benches
//! (`benches/query.rs`) and the `experiments` binary's `BENCH_query.json`
//! emitter (E16): exchange problems whose cost is dominated by FO
//! evaluation — STD-body evaluation during `CSol_A(S)` construction, and
//! positive-query certain answering over the canonical solution.
//!
//! Both workloads carry a negated existential, the shape where the
//! tree-walking evaluator pays a full active-domain scan per candidate row
//! (O(n²) and up) while the compiled plan runs one anti-join (O(n)).

use dx_chase::Mapping;
use dx_logic::Query;
use dx_relation::Instance;
use dx_workloads::conference;

/// One benchmarkable query-evaluation problem: a mapping + source whose
/// canonical solution the `query` is then answered over.
pub struct QueryCase {
    /// Workload family name (stable key in `BENCH_query.json`).
    pub workload: &'static str,
    /// The scale parameter the source was built from.
    pub n: usize,
    /// The annotated schema mapping.
    pub mapping: Mapping,
    /// The ground source instance.
    pub source: Instance,
    /// A safe-range target query evaluated naively over `CSol(S)`; the
    /// membership workload's query is positive (the Proposition 3 regime),
    /// the join workload adds safe negation to exercise the anti-join path
    /// of the same `Q_naive` evaluation operator.
    pub query: Query,
}

/// The membership workload: the §1 conference mapping — its third rule's
/// body `Papers(x, y) ∧ ¬∃r Assignments(x, r)` is the ROADMAP-flagged
/// canonical-solution bottleneck — plus the reviewed-papers query.
pub fn membership_case(n: usize) -> QueryCase {
    QueryCase {
        workload: "membership",
        n,
        mapping: conference::mapping(),
        source: conference::source(n, 2),
        query: conference::reviewed_query(),
    }
}

/// The query-answering workload: copy a branching path graph and ask for
/// two-hop pairs ending in a sink — a join pipeline with a negated
/// existential tail.
pub fn join_case(n: usize) -> QueryCase {
    let mut source = Instance::new();
    for i in 0..n {
        source.insert_names("QwSrc", &[&format!("v{i}"), &format!("v{}", i + 1)]);
        source.insert_names("QwSrc", &[&format!("v{i}"), &format!("w{i}")]);
    }
    QueryCase {
        workload: "join",
        n,
        mapping: Mapping::parse("QwE(x:cl, y:cl) <- QwSrc(x, y)").expect("mapping parses"),
        source,
        query: Query::parse(
            &["x", "z"],
            "exists y. QwE(x, y) & QwE(y, z) & !(exists w. QwE(z, w))",
        )
        .expect("query parses"),
    }
}

/// Both families at one size (the `BENCH_query.json` sweep axis).
pub fn all_query_cases(n: usize) -> Vec<QueryCase> {
    vec![membership_case(n), join_case(n)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_chase::canonical_solution;
    use dx_logic::classify;
    use dx_query::{CompiledQuery, QueryEval};

    #[test]
    fn cases_are_compilable() {
        assert!(
            classify::is_positive(&membership_case(4).query.formula),
            "membership: Prop 3 regime requires a positive query"
        );
        for case in all_query_cases(6) {
            assert!(
                CompiledQuery::compile(&case.query).is_ok(),
                "{}: query must lower to a plan",
                case.workload
            );
            for std in &case.mapping.stds {
                let vars = std.body_vars();
                assert!(
                    CompiledQuery::compile_formula(&std.body, &vars).is_ok(),
                    "{}: STD bodies must lower to plans",
                    case.workload
                );
            }
        }
    }

    #[test]
    fn engines_agree_on_all_cases() {
        for case in all_query_cases(8) {
            let csol = canonical_solution(&case.mapping, &case.source).rel_part();
            let tree = case.query.naive_certain_answers(&csol);
            let planned = QueryEval::new(&case.query).naive_certain_answers(&csol);
            assert_eq!(tree, planned, "{}", case.workload);
            assert!(!tree.is_empty(), "{} must produce answers", case.workload);
        }
    }
}
