//! Exact certain (and possible) answers of relational-algebra queries over
//! conditional instances.
//!
//! Given the conditional result table `Q(T)` of [`RaExpr::eval_conditional`],
//! a ground tuple `t` is a **certain answer** iff it appears in `v(Q(T))`
//! for *every* valuation `v` satisfying the global condition — equivalently
//! iff the *support disjunction*
//!
//! ```text
//! global → ⋁_{(s, φ) ∈ Q(T)} (φ ∧ t ≐ s)
//! ```
//!
//! is valid, which [`Condition::is_valid`] decides exactly over a generic
//! palette. Dually, `t` is a **possible answer** iff the support disjunction
//! (conjoined with `global`) is satisfiable.
//!
//! Candidate certain tuples are the *ground* rows of `Q(T)`: under the
//! all-fresh-distinct valuation every null becomes a brand-new constant, so
//! a ground certain tuple must literally appear as a ground row. Candidate
//! possible tuples additionally include ground instantiations of null rows
//! over the instance/query constants (plus fresh ones for the generic
//! pattern).

use crate::algebra::RaExpr;
use crate::condition::Condition;
use crate::ctable::{CInstance, CTable};
use dx_relation::{ConstId, Relation, Tuple};
use std::collections::BTreeSet;

/// The certain answers `□Q(T)`: ground tuples present under every valuation
/// satisfying the global condition. Exact (see module docs); worst-case
/// exponential in the number of nulls per support condition, as certain
/// answering for full RA is coNP-hard.
pub fn certain_answers_ra(query: &RaExpr, cinst: &CInstance) -> Relation {
    let result = query.eval_conditional(cinst);
    let mut extra: BTreeSet<ConstId> = cinst.constants();
    extra.extend(query.constants());
    certain_answers_from(&result, &extra, &cinst.global)
}

/// Certain-answer extraction from an already-evaluated conditional result
/// table: the ground rows whose support disjunction is valid over the
/// `extra`-constant palette. Shared by [`certain_answers_ra`] and the
/// plan-backed conditional executor of `dx-query`.
pub fn certain_answers_from(
    result: &CTable,
    extra: &BTreeSet<ConstId>,
    global: &Condition,
) -> Relation {
    let mut out = Relation::new(result.arity());
    // If the global condition is unsatisfiable, Rep is empty and every
    // tuple is vacuously certain; we follow the data-exchange convention of
    // returning the candidates (ground rows) in that degenerate case.
    for row in result.rows() {
        if !row.tuple.is_ground() {
            continue;
        }
        if out.contains(&row.tuple) {
            continue;
        }
        if support_condition(result, &row.tuple, global).is_valid(extra) {
            out.insert(row.tuple.clone());
        }
    }
    out
}

/// The possible answers `◇Q(T)`: ground tuples present under at least one
/// valuation satisfying the global condition. Candidates range over ground
/// rows and ground instantiations of null positions by mentioned constants;
/// tuples whose possible witnesses all involve *fresh* constants are
/// reported via their canonical fresh pattern only if ground (i.e. they are
/// not enumerated — possibility of generic tuples is signalled by
/// [`has_generic_possible_rows`]).
pub fn possible_answers_ra(query: &RaExpr, cinst: &CInstance) -> Relation {
    let result = query.eval_conditional(cinst);
    let mut extra: BTreeSet<ConstId> = cinst.constants();
    extra.extend(query.constants());
    possible_answers_from(&result, &extra, &cinst.global)
}

/// Possible-answer extraction from an already-evaluated conditional result
/// table (see [`possible_answers_ra`]); the counterpart of
/// [`certain_answers_from`].
pub fn possible_answers_from(
    result: &CTable,
    extra: &BTreeSet<ConstId>,
    global: &Condition,
) -> Relation {
    let consts: Vec<ConstId> = extra.iter().copied().collect();
    let mut out = Relation::new(result.arity());
    let mut candidates: BTreeSet<Tuple> = BTreeSet::new();
    for row in result.rows() {
        if row.tuple.is_ground() {
            candidates.insert(row.tuple.clone());
        } else {
            // Instantiate null positions over the mentioned constants.
            let null_positions: Vec<usize> = (0..row.tuple.arity())
                .filter(|&i| row.tuple.get(i).is_null())
                .collect();
            let mut stack = vec![row.tuple.clone()];
            for &i in &null_positions {
                let mut next = Vec::new();
                for t in stack {
                    for &c in &consts {
                        let mut vals: Vec<_> = t.values().to_vec();
                        vals[i] = dx_relation::Value::Const(c);
                        next.push(Tuple::new(vals));
                    }
                }
                stack = next;
            }
            candidates.extend(stack.into_iter().filter(|t| t.is_ground()));
        }
    }
    for t in candidates {
        let cond = Condition::and([global.clone(), support_condition_raw(result, &t)]);
        if cond.is_satisfiable(extra) {
            out.insert(t);
        }
    }
    out
}

/// Are there rows with nulls whose guard is satisfiable — i.e. possible
/// answers with "generic" (fresh) values not covered by
/// [`possible_answers_ra`]'s enumeration?
pub fn has_generic_possible_rows(query: &RaExpr, cinst: &CInstance) -> bool {
    let result = query.eval_conditional(cinst);
    let mut extra: BTreeSet<ConstId> = cinst.constants();
    extra.extend(query.constants());
    let found = result.rows().any(|row| {
        !row.tuple.is_ground()
            && Condition::and([cinst.global.clone(), row.cond.clone()]).is_satisfiable(&extra)
    });
    found
}

/// `global → ⋁ (φᵢ ∧ t ≐ sᵢ)` — the condition under which `t` is in the
/// result.
fn support_condition(result: &CTable, t: &Tuple, global: &Condition) -> Condition {
    Condition::or([global.clone().negate(), support_condition_raw(result, t)])
}

fn support_condition_raw(result: &CTable, t: &Tuple) -> Condition {
    Condition::or(
        result
            .rows()
            .map(|row| Condition::and([row.cond.clone(), Condition::tuples_equal(&row.tuple, t)])),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::RaPred;
    use crate::ctable::CTuple;
    use dx_relation::{Instance, RelSym, Value};

    /// The classic naive-evaluation failure: `Q = R ∖ S` on naive tables.
    /// R = {(a)}, S = {(⊥)}: naive evaluation keeps (a) (⊥ ≠ a as syntax),
    /// but (a) is NOT certain — v(⊥) = a removes it. The c-table engine gets
    /// this right.
    #[test]
    fn difference_defeats_naive_evaluation() {
        let (r, s) = (RelSym::new("CeR"), RelSym::new("CeS"));
        let mut inst = Instance::new();
        inst.insert(r, Tuple::from_names(&["a"]));
        inst.insert(s, Tuple::new(vec![Value::null(1)]));
        let ct = CInstance::from_naive(&inst);
        let q = RaExpr::Rel(r).diff(RaExpr::Rel(s));
        // Naive evaluation (ground eval with nulls as values) says {(a)}.
        assert_eq!(q.eval_ground(&inst).len(), 1);
        // Certain answers: none.
        assert!(certain_answers_ra(&q, &ct).is_empty());
        // But (a) is possible.
        assert!(possible_answers_ra(&q, &ct).contains(&Tuple::from_names(&["a"])));
    }

    /// Excluded middle across two rows: R = {(a ‖ ⊥=c), (a ‖ ⊥≠c)} makes
    /// (a) certain even though neither guard is valid alone.
    #[test]
    fn certain_by_case_split() {
        let r = RelSym::new("CeCase");
        let mut ct = CInstance::new();
        let table = ct.table_mut(r, 1);
        table.push(CTuple::when(
            Tuple::from_names(&["a"]),
            Condition::eq(Value::null(1), Value::c("c")),
        ));
        table.push(CTuple::when(
            Tuple::from_names(&["a"]),
            Condition::neq(Value::null(1), Value::c("c")),
        ));
        let q = RaExpr::Rel(r);
        let certain = certain_answers_ra(&q, &ct);
        assert_eq!(certain.len(), 1);
        assert!(certain.contains(&Tuple::from_names(&["a"])));
    }

    /// Certain answers of a selection on a naive table: only rows whose
    /// selected column is the right CONSTANT are certain; null rows are
    /// possible only.
    #[test]
    fn selection_certain_vs_possible() {
        let r = RelSym::new("CeSel");
        let mut inst = Instance::new();
        inst.insert(r, Tuple::from_names(&["a", "x"]));
        inst.insert(r, Tuple::new(vec![Value::c("a"), Value::null(1)]));
        let ct = CInstance::from_naive(&inst);
        let q = RaExpr::Rel(r).select(RaPred::col_is(1, "x")).project([0]);
        let certain = certain_answers_ra(&q, &ct);
        assert_eq!(certain.len(), 1, "the ground row witnesses (a)");
        // Possible = certain here (a is the only output value).
        let possible = possible_answers_ra(&q, &ct);
        assert_eq!(possible, certain);
    }

    /// The global condition participates in certainty: with global ⊥=b,
    /// a selection keeping only b-rows makes the null row certain.
    #[test]
    fn global_condition_enables_certainty() {
        let r = RelSym::new("CeGlob");
        let mut ct = CInstance::new();
        ct.global = Condition::eq(Value::null(1), Value::c("b"));
        ct.table_mut(r, 1)
            .push(CTuple::always(Tuple::from_names(&["b"])));
        ct.table_mut(r, 1)
            .push(CTuple::always(Tuple::new(vec![Value::null(1)])));
        let q = RaExpr::Rel(r);
        let certain = certain_answers_ra(&q, &ct);
        // (b) is certain twice over; and ⊥1 = b globally, so the null row
        // adds nothing new.
        assert_eq!(certain.len(), 1);
        assert!(certain.contains(&Tuple::from_names(&["b"])));
    }

    /// Generic possible rows are flagged: R = {(⊥ ‖ ⊤)} has possible
    /// answers of every fresh value — not enumerable, but detectable.
    #[test]
    fn generic_possible_rows_flagged() {
        let r = RelSym::new("CeGen");
        let mut ct = CInstance::new();
        ct.table_mut(r, 1)
            .push(CTuple::always(Tuple::new(vec![Value::null(1)])));
        let q = RaExpr::Rel(r);
        assert!(has_generic_possible_rows(&q, &ct));
        assert!(certain_answers_ra(&q, &ct).is_empty());
    }

    /// Cross-validation against brute-force Rep enumeration on a query with
    /// every operator.
    #[test]
    fn agrees_with_brute_force() {
        let (r, s) = (RelSym::new("CeBf1"), RelSym::new("CeBf2"));
        let mut inst = Instance::new();
        inst.insert(r, Tuple::new(vec![Value::c("a"), Value::null(1)]));
        inst.insert(r, Tuple::new(vec![Value::null(1), Value::null(2)]));
        inst.insert(s, Tuple::new(vec![Value::c("a")]));
        inst.insert(s, Tuple::new(vec![Value::null(2)]));
        let ct = CInstance::from_naive(&inst);
        // π0(σ_{0=0}(R)) ∩ S ∖ π1(R)
        let q = RaExpr::Rel(r)
            .project([0])
            .intersect(RaExpr::Rel(s))
            .diff(RaExpr::Rel(r).project([1]));
        let fast = certain_answers_ra(&q, &ct);
        // Brute force: intersect ground evaluations over all Rep members.
        let mut brute: Option<BTreeSet<Tuple>> = None;
        for (ground, _) in ct.rep_members(&BTreeSet::new()) {
            let ans: BTreeSet<Tuple> = q.eval_ground(&ground).iter().cloned().collect();
            brute = Some(match brute {
                None => ans,
                Some(prev) => prev.intersection(&ans).cloned().collect(),
            });
        }
        let brute = brute.unwrap();
        let fast_set: BTreeSet<Tuple> = fast.iter().cloned().collect();
        // Brute-force intersection may retain fresh-constant tuples only if
        // they appear in EVERY member — impossible for fresh values, so the
        // sets agree on ground tuples outright.
        assert_eq!(fast_set, brute);
    }
}
