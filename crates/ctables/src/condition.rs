//! Conditions: boolean combinations of (in)equalities over `Const ∪ Null`.
//!
//! Conditions guard c-table tuples. The decision procedures
//! ([`Condition::is_valid`], [`Condition::is_satisfiable`]) are exact: by
//! genericity, a condition with nulls `⊥₁…⊥ₖ` holds under *every* valuation
//! iff it holds under every valuation into the constants it mentions plus
//! `k` fresh pairwise-distinct constants (a fresh value can only make
//! equalities false, and one fresh value per null realizes every pattern of
//! "equal to nothing mentioned").

use dx_relation::{ConstId, NullId, Valuation, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A condition over constants and nulls.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Condition {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Value equality (either side may be a null or a constant).
    Eq(Value, Value),
    /// Value disequality.
    Neq(Value, Value),
    /// Conjunction.
    And(Vec<Condition>),
    /// Disjunction.
    Or(Vec<Condition>),
    /// Negation.
    Not(Box<Condition>),
}

impl Condition {
    /// `a = b`, constant-folded.
    pub fn eq(a: Value, b: Value) -> Condition {
        match (a, b) {
            (Value::Const(x), Value::Const(y)) => {
                if x == y {
                    Condition::True
                } else {
                    Condition::False
                }
            }
            (a, b) if a == b => Condition::True,
            (a, b) => Condition::Eq(a.min(b), a.max(b)),
        }
    }

    /// `a ≠ b`, constant-folded.
    pub fn neq(a: Value, b: Value) -> Condition {
        match Condition::eq(a, b) {
            Condition::True => Condition::False,
            Condition::False => Condition::True,
            Condition::Eq(x, y) => Condition::Neq(x, y),
            _ => unreachable!("eq folds to True/False/Eq"),
        }
    }

    /// Conjunction with short-circuit folding and flattening.
    pub fn and(conds: impl IntoIterator<Item = Condition>) -> Condition {
        let mut out: Vec<Condition> = Vec::new();
        for c in conds {
            match c {
                Condition::True => {}
                Condition::False => return Condition::False,
                Condition::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        out.sort();
        out.dedup();
        match out.len() {
            0 => Condition::True,
            1 => out.pop().expect("len checked"),
            _ => Condition::And(out),
        }
    }

    /// Disjunction with short-circuit folding and flattening.
    pub fn or(conds: impl IntoIterator<Item = Condition>) -> Condition {
        let mut out: Vec<Condition> = Vec::new();
        for c in conds {
            match c {
                Condition::False => {}
                Condition::True => return Condition::True,
                Condition::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        out.sort();
        out.dedup();
        match out.len() {
            0 => Condition::False,
            1 => out.pop().expect("len checked"),
            _ => Condition::Or(out),
        }
    }

    /// Negation with folding (pushes through `Not`, `Eq`/`Neq`).
    pub fn negate(self) -> Condition {
        match self {
            Condition::True => Condition::False,
            Condition::False => Condition::True,
            Condition::Eq(a, b) => Condition::Neq(a, b),
            Condition::Neq(a, b) => Condition::Eq(a, b),
            Condition::Not(inner) => *inner,
            other => Condition::Not(Box::new(other)),
        }
    }

    /// The condition `t̄ = s̄` position-wise (arities must agree).
    pub fn tuples_equal(t: &dx_relation::Tuple, s: &dx_relation::Tuple) -> Condition {
        assert_eq!(t.arity(), s.arity(), "tuple arity mismatch in condition");
        Condition::and(t.iter().zip(s.iter()).map(|(a, b)| Condition::eq(a, b)))
    }

    /// Evaluate under a valuation that must cover all nulls of the
    /// condition.
    pub fn eval(&self, v: &Valuation) -> bool {
        let resolve = |val: Value| -> Value {
            match val {
                Value::Null(n) => v
                    .get(n)
                    .map(Value::Const)
                    .expect("valuation must cover all condition nulls"),
                c => c,
            }
        };
        match self {
            Condition::True => true,
            Condition::False => false,
            Condition::Eq(a, b) => resolve(*a) == resolve(*b),
            Condition::Neq(a, b) => resolve(*a) != resolve(*b),
            Condition::And(cs) => cs.iter().all(|c| c.eval(v)),
            Condition::Or(cs) => cs.iter().any(|c| c.eval(v)),
            Condition::Not(c) => !c.eval(v),
        }
    }

    /// All nulls mentioned.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        let mut out = BTreeSet::new();
        self.collect_nulls(&mut out);
        out
    }

    fn collect_nulls(&self, out: &mut BTreeSet<NullId>) {
        match self {
            Condition::True | Condition::False => {}
            Condition::Eq(a, b) | Condition::Neq(a, b) => {
                for v in [a, b] {
                    if let Value::Null(n) = v {
                        out.insert(*n);
                    }
                }
            }
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs {
                    c.collect_nulls(out);
                }
            }
            Condition::Not(c) => c.collect_nulls(out),
        }
    }

    /// All constants mentioned.
    pub fn constants(&self) -> BTreeSet<ConstId> {
        let mut out = BTreeSet::new();
        self.collect_consts(&mut out);
        out
    }

    fn collect_consts(&self, out: &mut BTreeSet<ConstId>) {
        match self {
            Condition::True | Condition::False => {}
            Condition::Eq(a, b) | Condition::Neq(a, b) => {
                for v in [a, b] {
                    if let Value::Const(c) = v {
                        out.insert(*c);
                    }
                }
            }
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs {
                    c.collect_consts(out);
                }
            }
            Condition::Not(c) => c.collect_consts(out),
        }
    }

    /// Is the condition true under **every** valuation of its nulls?
    /// Exact, by generic-palette enumeration (see module docs). Exponential
    /// in the number of nulls of the condition (validity of equality logic
    /// is coNP-complete).
    pub fn is_valid(&self, extra_consts: &BTreeSet<ConstId>) -> bool {
        !self.clone().negate().is_satisfiable(extra_consts)
    }

    /// Is the condition true under **some** valuation of its nulls? Exact,
    /// by generic-palette enumeration.
    pub fn is_satisfiable(&self, extra_consts: &BTreeSet<ConstId>) -> bool {
        let nulls: Vec<NullId> = self.nulls().into_iter().collect();
        let mut palette: Vec<ConstId> = self.constants().union(extra_consts).copied().collect();
        // One fresh constant per null realizes every "new value" pattern.
        for (i, n) in nulls.iter().enumerate() {
            palette.push(ConstId::new(&format!("⋄fresh{}_{}", i, n.0)));
        }
        if nulls.is_empty() {
            return self.eval(&Valuation::new());
        }
        let mut choice = vec![0usize; nulls.len()];
        loop {
            let mut v = Valuation::new();
            for (n, &c) in nulls.iter().zip(choice.iter()) {
                v.set(*n, palette[c]);
            }
            if self.eval(&v) {
                return true;
            }
            // Next assignment.
            let mut i = 0;
            loop {
                if i == nulls.len() {
                    return false;
                }
                choice[i] += 1;
                if choice[i] < palette.len() {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::True => write!(f, "⊤"),
            Condition::False => write!(f, "⊥f"),
            Condition::Eq(a, b) => write!(f, "{a}={b}"),
            Condition::Neq(a, b) => write!(f, "{a}≠{b}"),
            Condition::And(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Condition::Or(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Condition::Not(c) => write!(f, "¬{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> Value {
        Value::null(i)
    }
    fn c(s: &str) -> Value {
        Value::c(s)
    }
    fn no_extra() -> BTreeSet<ConstId> {
        BTreeSet::new()
    }

    #[test]
    fn constant_folding() {
        assert_eq!(Condition::eq(c("a"), c("a")), Condition::True);
        assert_eq!(Condition::eq(c("a"), c("b")), Condition::False);
        assert_eq!(Condition::neq(c("a"), c("b")), Condition::True);
        assert_eq!(Condition::eq(n(1), n(1)), Condition::True);
        assert_eq!(
            Condition::and([Condition::True, Condition::False]),
            Condition::False
        );
        assert_eq!(
            Condition::or([Condition::False, Condition::True]),
            Condition::True
        );
        assert_eq!(Condition::and([]), Condition::True);
        assert_eq!(Condition::or([]), Condition::False);
    }

    #[test]
    fn eval_under_valuation() {
        let cond = Condition::and([Condition::eq(n(1), c("a")), Condition::neq(n(2), c("a"))]);
        let mut v = Valuation::new();
        v.set(NullId(1), ConstId::new("a"));
        v.set(NullId(2), ConstId::new("b"));
        assert!(cond.eval(&v));
        let mut v2 = Valuation::new();
        v2.set(NullId(1), ConstId::new("a"));
        v2.set(NullId(2), ConstId::new("a"));
        assert!(!cond.eval(&v2));
    }

    #[test]
    fn validity_of_excluded_middle() {
        // ⊥1 = a ∨ ⊥1 ≠ a — valid.
        let cond = Condition::or([Condition::eq(n(1), c("a")), Condition::neq(n(1), c("a"))]);
        assert!(cond.is_valid(&no_extra()));
        // ⊥1 = a alone is satisfiable but not valid.
        let cond2 = Condition::eq(n(1), c("a"));
        assert!(cond2.is_satisfiable(&no_extra()));
        assert!(!cond2.is_valid(&no_extra()));
    }

    #[test]
    fn fresh_constants_matter() {
        // ⊥1 = a ∨ ⊥1 = b is NOT valid: ⊥1 may be a third value. The fresh
        // palette constant is what detects this.
        let cond = Condition::or([Condition::eq(n(1), c("a")), Condition::eq(n(1), c("b"))]);
        assert!(!cond.is_valid(&no_extra()));
    }

    #[test]
    fn transitivity_is_valid() {
        // (⊥1=⊥2 ∧ ⊥2=⊥3) → ⊥1=⊥3.
        let premise = Condition::and([Condition::eq(n(1), n(2)), Condition::eq(n(2), n(3))]);
        let cond = Condition::or([premise.negate(), Condition::eq(n(1), n(3))]);
        assert!(cond.is_valid(&no_extra()));
    }

    #[test]
    fn pigeonhole_three_nulls_two_consts_unsat() {
        // All of ⊥1,⊥2,⊥3 pairwise distinct AND each equal to a or b — unsat.
        let in_ab = |x: Value| Condition::or([Condition::eq(x, c("a")), Condition::eq(x, c("b"))]);
        let cond = Condition::and([
            Condition::neq(n(1), n(2)),
            Condition::neq(n(2), n(3)),
            Condition::neq(n(1), n(3)),
            in_ab(n(1)),
            in_ab(n(2)),
            in_ab(n(3)),
        ]);
        assert!(!cond.is_satisfiable(&no_extra()));
        // Dropping one membership constraint makes it satisfiable (fresh
        // value for ⊥3).
        let cond2 = Condition::and([
            Condition::neq(n(1), n(2)),
            Condition::neq(n(2), n(3)),
            Condition::neq(n(1), n(3)),
            in_ab(n(1)),
            in_ab(n(2)),
        ]);
        assert!(cond2.is_satisfiable(&no_extra()));
    }

    #[test]
    fn extra_constants_extend_palette() {
        // ⊥1 ≠ a is satisfiable even with a as the only mentioned constant
        // (fresh), and stays so with extras.
        let cond = Condition::neq(n(1), c("a"));
        assert!(cond.is_satisfiable(&no_extra()));
        let extra: BTreeSet<ConstId> = [ConstId::new("zz")].into();
        assert!(cond.is_satisfiable(&extra));
    }

    #[test]
    fn tuples_equal_condition() {
        use dx_relation::Tuple;
        let t = Tuple::new(vec![c("a"), n(1)]);
        let s = Tuple::new(vec![c("a"), c("b")]);
        let cond = Condition::tuples_equal(&t, &s);
        assert_eq!(cond, Condition::Eq(c("b"), n(1)));
        let s2 = Tuple::new(vec![c("x"), c("b")]);
        assert_eq!(Condition::tuples_equal(&t, &s2), Condition::False);
    }

    #[test]
    fn double_negation_folds() {
        let cond = Condition::eq(n(1), c("a"));
        assert_eq!(cond.clone().negate().negate(), cond);
    }
}
