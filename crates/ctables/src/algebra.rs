//! Positional relational algebra with Imieliński–Lipski conditional
//! evaluation.
//!
//! [`RaExpr`] is full relational algebra — selection, projection, product,
//! union, difference, intersection — over positional columns. Two evaluators
//! are provided:
//!
//! * [`RaExpr::eval_ground`] — ordinary evaluation on a ground [`Instance`]
//!   (used for cross-validation and by the tests);
//! * [`RaExpr::eval_conditional`] — evaluation on a [`CInstance`], producing
//!   a [`CTable`] whose guards record exactly when each tuple is present.
//!   This is the Imieliński–Lipski representation theorem in code: for every
//!   valuation `v` satisfying the global condition,
//!   `v(eval_conditional(T)) = eval_ground(v(T))`.
//!
//! The key case is **difference**: a row `(t, φ)` of `e₁` survives iff `φ`
//! holds and no row `(s, ψ)` of `e₂` is simultaneously present and equal to
//! `t`, so its guard becomes `φ ∧ ⋀ ¬(ψ ∧ t ≐ s)` — a genuinely conditional
//! guard even when both inputs are naive tables. Selection on nulls likewise
//! produces `t ≐ c`-style guards. This is why naive tables are not closed
//! under full RA and c-tables are.

use crate::condition::Condition;
use crate::ctable::{CInstance, CTable, CTuple};
use dx_relation::{ConstId, Instance, RelSym, Relation, Tuple, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A column reference or constant in a selection predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ColRef {
    /// The value of the `i`-th column (0-based).
    Col(usize),
    /// A constant.
    Const(ConstId),
}

impl ColRef {
    fn resolve(&self, t: &Tuple) -> Value {
        match self {
            ColRef::Col(i) => t.get(*i),
            ColRef::Const(c) => Value::Const(*c),
        }
    }

    fn max_col(&self) -> Option<usize> {
        match self {
            ColRef::Col(i) => Some(*i),
            ColRef::Const(_) => None,
        }
    }
}

/// A selection predicate: boolean combinations of column/constant
/// (in)equalities.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RaPred {
    /// Always true.
    True,
    /// Equality of two references.
    Eq(ColRef, ColRef),
    /// Conjunction.
    And(Vec<RaPred>),
    /// Disjunction.
    Or(Vec<RaPred>),
    /// Negation.
    Not(Box<RaPred>),
}

impl RaPred {
    /// `col(i) = col(j)`.
    pub fn cols_eq(i: usize, j: usize) -> RaPred {
        RaPred::Eq(ColRef::Col(i), ColRef::Col(j))
    }

    /// `col(i) = 'c'`.
    pub fn col_is(i: usize, c: &str) -> RaPred {
        RaPred::Eq(ColRef::Col(i), ColRef::Const(ConstId::new(c)))
    }

    /// `col(i) ≠ col(j)`.
    pub fn cols_neq(i: usize, j: usize) -> RaPred {
        RaPred::Not(Box::new(Self::cols_eq(i, j)))
    }

    /// Ground evaluation on a tuple (nulls as atomic values — the naive
    /// reading; only used on ground tuples in practice).
    fn eval_ground(&self, t: &Tuple) -> bool {
        match self {
            RaPred::True => true,
            RaPred::Eq(a, b) => a.resolve(t) == b.resolve(t),
            RaPred::And(ps) => ps.iter().all(|p| p.eval_ground(t)),
            RaPred::Or(ps) => ps.iter().any(|p| p.eval_ground(t)),
            RaPred::Not(p) => !p.eval_ground(t),
        }
    }

    /// Conditional reading on a tuple with nulls: the [`Condition`] under
    /// which the predicate holds.
    fn to_condition(&self, t: &Tuple) -> Condition {
        match self {
            RaPred::True => Condition::True,
            RaPred::Eq(a, b) => Condition::eq(a.resolve(t), b.resolve(t)),
            RaPred::And(ps) => Condition::and(ps.iter().map(|p| p.to_condition(t))),
            RaPred::Or(ps) => Condition::or(ps.iter().map(|p| p.to_condition(t))),
            RaPred::Not(p) => p.to_condition(t).negate(),
        }
    }

    fn max_col(&self) -> Option<usize> {
        match self {
            RaPred::True => None,
            RaPred::Eq(a, b) => a.max_col().max(b.max_col()),
            RaPred::And(ps) | RaPred::Or(ps) => ps.iter().filter_map(|p| p.max_col()).max(),
            RaPred::Not(p) => p.max_col(),
        }
    }
}

/// Errors raised when an algebra expression is ill-formed for a schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaError {
    /// A relation the expression mentions is absent.
    UnknownRelation(RelSym),
    /// Arity mismatch between the operands of a set operation.
    ArityMismatch {
        /// The operator.
        op: &'static str,
        /// Left arity.
        left: usize,
        /// Right arity.
        right: usize,
    },
    /// A column index out of range.
    ColumnOutOfRange {
        /// The operator.
        op: &'static str,
        /// The offending index.
        col: usize,
        /// The operand arity.
        arity: usize,
    },
}

impl fmt::Display for RaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            RaError::ArityMismatch { op, left, right } => {
                write!(f, "{op}: arity mismatch {left} vs {right}")
            }
            RaError::ColumnOutOfRange { op, col, arity } => {
                write!(f, "{op}: column {col} out of range for arity {arity}")
            }
        }
    }
}

impl std::error::Error for RaError {}

/// A relational-algebra expression (positional).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RaExpr {
    /// A base relation.
    Rel(RelSym),
    /// A singleton constant relation `{(c₁, …, cₙ)}`.
    Singleton(Vec<ConstId>),
    /// The empty relation of a fixed arity.
    Empty(usize),
    /// Selection `σ_pred`.
    Select(Box<RaExpr>, RaPred),
    /// Projection `π_cols` (columns may repeat or reorder).
    Project(Box<RaExpr>, Vec<usize>),
    /// Cartesian product.
    Product(Box<RaExpr>, Box<RaExpr>),
    /// Set union.
    Union(Box<RaExpr>, Box<RaExpr>),
    /// Set difference.
    Diff(Box<RaExpr>, Box<RaExpr>),
    /// Set intersection.
    Intersect(Box<RaExpr>, Box<RaExpr>),
}

impl RaExpr {
    /// A base relation by name.
    pub fn rel(name: &str) -> RaExpr {
        RaExpr::Rel(RelSym::new(name))
    }

    /// `σ_pred(self)`.
    pub fn select(self, pred: RaPred) -> RaExpr {
        RaExpr::Select(Box::new(self), pred)
    }

    /// `π_cols(self)`.
    pub fn project(self, cols: impl Into<Vec<usize>>) -> RaExpr {
        RaExpr::Project(Box::new(self), cols.into())
    }

    /// `self × other`.
    pub fn product(self, other: RaExpr) -> RaExpr {
        RaExpr::Product(Box::new(self), Box::new(other))
    }

    /// `self ∪ other`.
    pub fn union(self, other: RaExpr) -> RaExpr {
        RaExpr::Union(Box::new(self), Box::new(other))
    }

    /// `self ∖ other`.
    pub fn diff(self, other: RaExpr) -> RaExpr {
        RaExpr::Diff(Box::new(self), Box::new(other))
    }

    /// `self ∩ other`.
    pub fn intersect(self, other: RaExpr) -> RaExpr {
        RaExpr::Intersect(Box::new(self), Box::new(other))
    }

    /// The output arity given a function resolving base-relation arities.
    pub fn arity_with(&self, lookup: &impl Fn(RelSym) -> Option<usize>) -> Result<usize, RaError> {
        match self {
            RaExpr::Rel(r) => lookup(*r).ok_or(RaError::UnknownRelation(*r)),
            RaExpr::Singleton(cs) => Ok(cs.len()),
            RaExpr::Empty(a) => Ok(*a),
            RaExpr::Select(e, p) => {
                let a = e.arity_with(lookup)?;
                if let Some(c) = p.max_col() {
                    if c >= a {
                        return Err(RaError::ColumnOutOfRange {
                            op: "select",
                            col: c,
                            arity: a,
                        });
                    }
                }
                Ok(a)
            }
            RaExpr::Project(e, cols) => {
                let a = e.arity_with(lookup)?;
                for &c in cols {
                    if c >= a {
                        return Err(RaError::ColumnOutOfRange {
                            op: "project",
                            col: c,
                            arity: a,
                        });
                    }
                }
                Ok(cols.len())
            }
            RaExpr::Product(l, r) => Ok(l.arity_with(lookup)? + r.arity_with(lookup)?),
            RaExpr::Union(l, r) | RaExpr::Diff(l, r) | RaExpr::Intersect(l, r) => {
                let (la, ra) = (l.arity_with(lookup)?, r.arity_with(lookup)?);
                if la != ra {
                    return Err(RaError::ArityMismatch {
                        op: match self {
                            RaExpr::Union(_, _) => "union",
                            RaExpr::Diff(_, _) => "diff",
                            _ => "intersect",
                        },
                        left: la,
                        right: ra,
                    });
                }
                Ok(la)
            }
        }
    }

    /// Ordinary evaluation on a ground instance. Relations absent from the
    /// instance read as empty (their arity must then be inferable — use
    /// [`RaExpr::arity_with`] with a schema for strict checking).
    pub fn eval_ground(&self, inst: &Instance) -> Relation {
        match self {
            RaExpr::Rel(r) => inst
                .relation(*r)
                .cloned()
                .unwrap_or_else(|| Relation::new(0)),
            RaExpr::Singleton(cs) => {
                let mut rel = Relation::new(cs.len());
                rel.insert(Tuple::from_consts(cs));
                rel
            }
            RaExpr::Empty(a) => Relation::new(*a),
            RaExpr::Select(e, p) => {
                let base = e.eval_ground(inst);
                let mut out = Relation::new(base.arity());
                for t in base.iter() {
                    if p.eval_ground(t) {
                        out.insert(t.clone());
                    }
                }
                out
            }
            RaExpr::Project(e, cols) => {
                let base = e.eval_ground(inst);
                let mut out = Relation::new(cols.len());
                for t in base.iter() {
                    out.insert(Tuple::new(
                        cols.iter().map(|&c| t.get(c)).collect::<Vec<_>>(),
                    ));
                }
                out
            }
            RaExpr::Product(l, r) => {
                let (lt, rt) = (l.eval_ground(inst), r.eval_ground(inst));
                let mut out = Relation::new(lt.arity() + rt.arity());
                for a in lt.iter() {
                    for b in rt.iter() {
                        let mut vals: Vec<Value> = a.values().to_vec();
                        vals.extend_from_slice(b.values());
                        out.insert(Tuple::new(vals));
                    }
                }
                out
            }
            RaExpr::Union(l, r) => {
                let (lt, rt) = (l.eval_ground(inst), r.eval_ground(inst));
                let mut out = Relation::new(lt.arity().max(rt.arity()));
                for t in lt.iter().chain(rt.iter()) {
                    out.insert(t.clone());
                }
                out
            }
            RaExpr::Diff(l, r) => {
                let (lt, rt) = (l.eval_ground(inst), r.eval_ground(inst));
                let mut out = Relation::new(lt.arity());
                for t in lt.iter() {
                    if !rt.contains(t) {
                        out.insert(t.clone());
                    }
                }
                out
            }
            RaExpr::Intersect(l, r) => {
                let (lt, rt) = (l.eval_ground(inst), r.eval_ground(inst));
                let mut out = Relation::new(lt.arity());
                for t in lt.iter() {
                    if rt.contains(t) {
                        out.insert(t.clone());
                    }
                }
                out
            }
        }
    }

    /// Imieliński–Lipski conditional evaluation on a c-instance: the result
    /// c-table represents `{ eval_ground(v(T)) | v ⊨ global }`.
    pub fn eval_conditional(&self, cinst: &CInstance) -> CTable {
        match self {
            RaExpr::Rel(r) => cinst.table(*r).cloned().unwrap_or_else(|| CTable::new(0)),
            RaExpr::Singleton(cs) => {
                let mut t = CTable::new(cs.len());
                t.push(CTuple::always(Tuple::from_consts(cs)));
                t
            }
            RaExpr::Empty(a) => CTable::new(*a),
            RaExpr::Select(e, p) => {
                let base = e.eval_conditional(cinst);
                let mut out = CTable::new(base.arity());
                for row in base.rows() {
                    out.push(CTuple::when(
                        row.tuple.clone(),
                        Condition::and([row.cond.clone(), p.to_condition(&row.tuple)]),
                    ));
                }
                out
            }
            RaExpr::Project(e, cols) => {
                let base = e.eval_conditional(cinst);
                let mut out = CTable::new(cols.len());
                for row in base.rows() {
                    out.push(CTuple::when(
                        Tuple::new(cols.iter().map(|&c| row.tuple.get(c)).collect::<Vec<_>>()),
                        row.cond.clone(),
                    ));
                }
                out
            }
            RaExpr::Product(l, r) => {
                let (lt, rt) = (l.eval_conditional(cinst), r.eval_conditional(cinst));
                let mut out = CTable::new(lt.arity() + rt.arity());
                for a in lt.rows() {
                    for b in rt.rows() {
                        let mut vals: Vec<Value> = a.tuple.values().to_vec();
                        vals.extend_from_slice(b.tuple.values());
                        out.push(CTuple::when(
                            Tuple::new(vals),
                            Condition::and([a.cond.clone(), b.cond.clone()]),
                        ));
                    }
                }
                out
            }
            RaExpr::Union(l, r) => {
                let (lt, rt) = (l.eval_conditional(cinst), r.eval_conditional(cinst));
                let mut out = CTable::new(lt.arity().max(rt.arity()));
                for row in lt.rows().chain(rt.rows()) {
                    out.push(row.clone());
                }
                out
            }
            RaExpr::Diff(l, r) => {
                let (lt, rt) = (l.eval_conditional(cinst), r.eval_conditional(cinst));
                let mut out = CTable::new(lt.arity());
                for a in lt.rows() {
                    // a survives iff its guard holds and every b-row is
                    // either absent or differs from a.
                    let blockers = rt.rows().map(|b| {
                        Condition::and([
                            b.cond.clone(),
                            Condition::tuples_equal(&a.tuple, &b.tuple),
                        ])
                        .negate()
                    });
                    out.push(CTuple::when(
                        a.tuple.clone(),
                        Condition::and(std::iter::once(a.cond.clone()).chain(blockers)),
                    ));
                }
                out
            }
            RaExpr::Intersect(l, r) => {
                let (lt, rt) = (l.eval_conditional(cinst), r.eval_conditional(cinst));
                let mut out = CTable::new(lt.arity());
                for a in lt.rows() {
                    let supporters = Condition::or(rt.rows().map(|b| {
                        Condition::and([
                            b.cond.clone(),
                            Condition::tuples_equal(&a.tuple, &b.tuple),
                        ])
                    }));
                    out.push(CTuple::when(
                        a.tuple.clone(),
                        Condition::and([a.cond.clone(), supporters]),
                    ));
                }
                out
            }
        }
    }

    /// All constants mentioned by the expression (selection predicates and
    /// singletons).
    pub fn constants(&self) -> BTreeSet<ConstId> {
        fn pred_consts(p: &RaPred, out: &mut BTreeSet<ConstId>) {
            match p {
                RaPred::True => {}
                RaPred::Eq(a, b) => {
                    for r in [a, b] {
                        if let ColRef::Const(c) = r {
                            out.insert(*c);
                        }
                    }
                }
                RaPred::And(ps) | RaPred::Or(ps) => {
                    for p in ps {
                        pred_consts(p, out);
                    }
                }
                RaPred::Not(p) => pred_consts(p, out),
            }
        }
        let mut out = BTreeSet::new();
        let mut stack = vec![self];
        while let Some(e) = stack.pop() {
            match e {
                RaExpr::Rel(_) | RaExpr::Empty(_) => {}
                RaExpr::Singleton(cs) => out.extend(cs.iter().copied()),
                RaExpr::Select(inner, p) => {
                    pred_consts(p, &mut out);
                    stack.push(inner);
                }
                RaExpr::Project(inner, _) => stack.push(inner),
                RaExpr::Product(l, r)
                | RaExpr::Union(l, r)
                | RaExpr::Diff(l, r)
                | RaExpr::Intersect(l, r) => {
                    stack.push(l);
                    stack.push(r);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ground_edges() -> Instance {
        let mut i = Instance::new();
        i.insert_names("RaE", &["a", "b"]);
        i.insert_names("RaE", &["b", "c"]);
        i.insert_names("RaE", &["a", "c"]);
        i
    }

    #[test]
    fn ground_select_project() {
        let e = RaExpr::rel("RaE")
            .select(RaPred::col_is(0, "a"))
            .project([1]);
        let out = e.eval_ground(&ground_edges());
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Tuple::from_names(&["b"])));
        assert!(out.contains(&Tuple::from_names(&["c"])));
    }

    #[test]
    fn ground_product_join() {
        // Two-hop pairs: π_{0,3}(σ_{1=2}(E × E)).
        let e = RaExpr::rel("RaE")
            .product(RaExpr::rel("RaE"))
            .select(RaPred::cols_eq(1, 2))
            .project([0, 3]);
        let out = e.eval_ground(&ground_edges());
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::from_names(&["a", "c"])));
    }

    #[test]
    fn ground_set_ops() {
        let hop2 = RaExpr::rel("RaE")
            .product(RaExpr::rel("RaE"))
            .select(RaPred::cols_eq(1, 2))
            .project([0, 3]);
        // Direct edges that are ALSO two-hop reachable: {(a,c)}.
        let both = RaExpr::rel("RaE").clone().intersect(hop2.clone());
        assert_eq!(both.eval_ground(&ground_edges()).len(), 1);
        // Direct edges NOT two-hop reachable.
        let only_direct = RaExpr::rel("RaE").diff(hop2);
        assert_eq!(only_direct.eval_ground(&ground_edges()).len(), 2);
    }

    #[test]
    fn arity_checking() {
        let lookup = |r: RelSym| (r == RelSym::new("RaE")).then_some(2);
        assert_eq!(RaExpr::rel("RaE").arity_with(&lookup), Ok(2));
        assert_eq!(
            RaExpr::rel("RaE").project([0, 1, 1]).arity_with(&lookup),
            Ok(3)
        );
        assert!(matches!(
            RaExpr::rel("RaE").project([5]).arity_with(&lookup),
            Err(RaError::ColumnOutOfRange { .. })
        ));
        assert!(matches!(
            RaExpr::rel("RaE")
                .union(RaExpr::rel("RaE").project([0]))
                .arity_with(&lookup),
            Err(RaError::ArityMismatch { .. })
        ));
        assert!(matches!(
            RaExpr::rel("Missing").arity_with(&lookup),
            Err(RaError::UnknownRelation(_))
        ));
    }

    /// The representation theorem on a hand-sized example:
    /// `v(eval_conditional(T)) = eval_ground(v(T))` for every palette
    /// valuation.
    #[test]
    fn conditional_commutes_with_valuations() {
        let r = RelSym::new("RaC");
        let mut ct = CInstance::new();
        let table = ct.table_mut(r, 2);
        table.push(CTuple::always(Tuple::new(vec![
            Value::c("a"),
            Value::null(1),
        ])));
        table.push(CTuple::always(Tuple::new(vec![
            Value::null(1),
            Value::null(2),
        ])));
        // Q = σ_{0='a'}(R) ∖ π_{1,0}(R).
        let q = RaExpr::rel("RaC")
            .select(RaPred::col_is(0, "a"))
            .diff(RaExpr::rel("RaC").project([1, 0]));
        let cond_result = q.eval_conditional(&ct);
        for (ground, v) in ct.rep_members(&BTreeSet::new()) {
            let direct = q.eval_ground(&ground);
            let via_ctable: BTreeSet<Tuple> = cond_result.apply(&v).into_iter().collect();
            let direct_set: BTreeSet<Tuple> = direct.iter().cloned().collect();
            assert_eq!(via_ctable, direct_set, "valuation {:?}", v);
        }
    }

    /// Selection over a null produces a genuinely conditional row.
    #[test]
    fn selection_on_null_guards() {
        let r = RelSym::new("RaS");
        let mut ct = CInstance::new();
        ct.table_mut(r, 1)
            .push(CTuple::always(Tuple::new(vec![Value::null(7)])));
        let q = RaExpr::rel("RaS").select(RaPred::col_is(0, "a"));
        let out = q.eval_conditional(&ct);
        assert_eq!(out.len(), 1);
        let row = out.rows().next().unwrap();
        assert_eq!(row.cond, Condition::eq(Value::null(7), Value::c("a")));
    }

    #[test]
    fn difference_produces_blocker_guards() {
        // R = {(⊥1)}, S = {(a)}: R ∖ S keeps ⊥1 guarded by ⊥1 ≠ a.
        let (r, s) = (RelSym::new("RaD1"), RelSym::new("RaD2"));
        let mut ct = CInstance::new();
        ct.table_mut(r, 1)
            .push(CTuple::always(Tuple::new(vec![Value::null(1)])));
        ct.table_mut(s, 1)
            .push(CTuple::always(Tuple::new(vec![Value::c("a")])));
        let q = RaExpr::Rel(r).diff(RaExpr::Rel(s));
        let out = q.eval_conditional(&ct);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out.rows().next().unwrap().cond,
            Condition::neq(Value::c("a"), Value::null(1))
        );
    }
}
