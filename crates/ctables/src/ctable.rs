//! Conditional tables and instances.
//!
//! A **c-table** is a finite set of tuples over `Const ∪ Null`, each guarded
//! by a local [`Condition`]; a **c-instance** assigns a c-table to each
//! relation symbol and carries one global condition. Its semantics is
//!
//! ```text
//! Rep(T) = { v(T) | v a valuation with global(v) true },
//! v(T)   = { v(t) | (t, φ) ∈ T, φ(v) true }        (relation-wise)
//! ```
//!
//! Naive tables (the canonical solutions of data exchange) are the special
//! case where every condition is `⊤`.

use crate::condition::Condition;
use dx_relation::{ConstId, Instance, NullId, RelSym, Tuple, Valuation};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A conditional tuple: values guarded by a local condition.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CTuple {
    /// The tuple over `Const ∪ Null`.
    pub tuple: Tuple,
    /// The guard: the tuple is present in `v(T)` iff the guard holds
    /// under `v`.
    pub cond: Condition,
}

impl CTuple {
    /// A tuple with guard `⊤`.
    pub fn always(tuple: Tuple) -> Self {
        CTuple {
            tuple,
            cond: Condition::True,
        }
    }

    /// A guarded tuple.
    pub fn when(tuple: Tuple, cond: Condition) -> Self {
        CTuple { tuple, cond }
    }
}

impl fmt::Display for CTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ‖ {}", self.tuple, self.cond)
    }
}

/// A conditional table: a set of conditional tuples of one arity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CTable {
    arity: usize,
    rows: Vec<CTuple>,
}

impl CTable {
    /// An empty c-table of the given arity.
    pub fn new(arity: usize) -> Self {
        CTable {
            arity,
            rows: Vec::new(),
        }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Append a row; `False`-guarded rows are dropped eagerly, duplicate
    /// rows are kept (they are harmless and may carry different guards).
    pub fn push(&mut self, row: CTuple) {
        assert_eq!(row.tuple.arity(), self.arity, "row arity mismatch");
        if row.cond != Condition::False {
            self.rows.push(row);
        }
    }

    /// The rows.
    pub fn rows(&self) -> impl Iterator<Item = &CTuple> + '_ {
        self.rows.iter()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table row-free?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Apply a valuation: keep rows whose guard holds, ground their tuples.
    pub fn apply(&self, v: &Valuation) -> Vec<Tuple> {
        self.rows
            .iter()
            .filter(|r| r.cond.eval(v))
            .map(|r| {
                Tuple::new(
                    r.tuple
                        .iter()
                        .map(|val| v.apply_value(val))
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    /// All nulls in tuples and guards.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        let mut out = BTreeSet::new();
        for r in &self.rows {
            out.extend(r.tuple.nulls());
            out.extend(r.cond.nulls());
        }
        out
    }

    /// All constants in tuples and guards.
    pub fn constants(&self) -> BTreeSet<ConstId> {
        let mut out = BTreeSet::new();
        for r in &self.rows {
            out.extend(r.tuple.consts());
            out.extend(r.cond.constants());
        }
        out
    }
}

/// A conditional instance: c-tables per relation plus a global condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CInstance {
    tables: BTreeMap<RelSym, CTable>,
    /// The global condition: valuations violating it are excluded from
    /// `Rep`.
    pub global: Condition,
}

impl CInstance {
    /// An empty c-instance with global condition `⊤`.
    pub fn new() -> Self {
        CInstance {
            tables: BTreeMap::new(),
            global: Condition::True,
        }
    }

    /// Lift a naive table (instance with nulls, e.g. `CSol(S)`): every
    /// tuple guarded by `⊤`.
    pub fn from_naive(inst: &Instance) -> Self {
        let mut out = CInstance::new();
        for (r, rel) in inst.relations() {
            let table = out.table_mut(r, rel.arity());
            for t in rel.iter() {
                table.push(CTuple::always(t.clone()));
            }
        }
        out
    }

    /// Declare (or fetch) a table.
    pub fn table_mut(&mut self, rel: RelSym, arity: usize) -> &mut CTable {
        let t = self.tables.entry(rel).or_insert_with(|| CTable::new(arity));
        assert_eq!(t.arity(), arity, "arity mismatch for {rel}");
        t
    }

    /// The table for a relation, if declared.
    pub fn table(&self, rel: RelSym) -> Option<&CTable> {
        self.tables.get(&rel)
    }

    /// Iterate over (relation, table) pairs.
    pub fn tables(&self) -> impl Iterator<Item = (RelSym, &CTable)> + '_ {
        self.tables.iter().map(|(&r, t)| (r, t))
    }

    /// Apply a valuation (which must satisfy the global condition) to
    /// produce a ground member of `Rep`.
    pub fn apply(&self, v: &Valuation) -> Option<Instance> {
        if !self.global.eval(v) {
            return None;
        }
        let mut out = Instance::new();
        for (&r, table) in &self.tables {
            out.declare(r, table.arity());
            for t in table.apply(v) {
                out.insert(r, t);
            }
        }
        Some(out)
    }

    /// All nulls in tables and the global condition.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        let mut out: BTreeSet<NullId> = self.tables.values().flat_map(|t| t.nulls()).collect();
        out.extend(self.global.nulls());
        out
    }

    /// All constants in tables and the global condition.
    pub fn constants(&self) -> BTreeSet<ConstId> {
        let mut out: BTreeSet<ConstId> = self.tables.values().flat_map(|t| t.constants()).collect();
        out.extend(self.global.constants());
        out
    }

    /// Enumerate `Rep` members over a **generic palette**: the instance's
    /// own constants, the given extras, and one fresh constant per null.
    /// Every isomorphism type of a `Rep` member is realized (the standard
    /// genericity argument), so universally-quantified properties of `Rep`
    /// can be decided exactly by iterating this enumeration.
    pub fn rep_members<'a>(
        &'a self,
        extra_consts: &BTreeSet<ConstId>,
    ) -> impl Iterator<Item = (Instance, Valuation)> + 'a {
        let nulls: Vec<NullId> = self.nulls().into_iter().collect();
        let mut palette: Vec<ConstId> = self.constants().union(extra_consts).copied().collect();
        for (i, n) in nulls.iter().enumerate() {
            palette.push(ConstId::new(&format!("⋄rep{}_{}", i, n.0)));
        }
        let total = palette
            .len()
            .checked_pow(nulls.len() as u32)
            .expect("palette space too large to enumerate");
        (0..total).filter_map(move |mut code| {
            let mut v = Valuation::new();
            for n in &nulls {
                v.set(*n, palette[code % palette.len()]);
                code /= palette.len();
            }
            self.apply(&v).map(|i| (i, v))
        })
    }
}

impl Default for CInstance {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for CInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.global != Condition::True {
            writeln!(f, "global: {}", self.global)?;
        }
        for (r, table) in &self.tables {
            writeln!(f, "{r}:")?;
            for row in table.rows() {
                writeln!(f, "  {row}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_relation::Value;

    #[test]
    fn naive_lift_and_apply() {
        let r = RelSym::new("CtR");
        let mut inst = Instance::new();
        inst.insert(r, Tuple::new(vec![Value::c("a"), Value::null(1)]));
        let ct = CInstance::from_naive(&inst);
        assert_eq!(ct.table(r).unwrap().len(), 1);
        let mut v = Valuation::new();
        v.set(NullId(1), ConstId::new("b"));
        let ground = ct.apply(&v).unwrap();
        assert!(ground.contains(r, &Tuple::from_names(&["a", "b"])));
    }

    #[test]
    fn conditions_filter_rows() {
        let r = RelSym::new("CtR2");
        let mut ct = CInstance::new();
        let table = ct.table_mut(r, 1);
        table.push(CTuple::when(
            Tuple::new(vec![Value::c("yes")]),
            Condition::eq(Value::null(1), Value::c("a")),
        ));
        table.push(CTuple::when(
            Tuple::new(vec![Value::c("no")]),
            Condition::neq(Value::null(1), Value::c("a")),
        ));
        let mut v = Valuation::new();
        v.set(NullId(1), ConstId::new("a"));
        let g = ct.apply(&v).unwrap();
        assert!(g.contains(r, &Tuple::from_names(&["yes"])));
        assert!(!g.contains(r, &Tuple::from_names(&["no"])));
    }

    #[test]
    fn global_condition_excludes_valuations() {
        let r = RelSym::new("CtR3");
        let mut ct = CInstance::new();
        ct.global = Condition::neq(Value::null(1), Value::c("banned"));
        ct.table_mut(r, 1)
            .push(CTuple::always(Tuple::new(vec![Value::null(1)])));
        let mut v = Valuation::new();
        v.set(NullId(1), ConstId::new("banned"));
        assert!(ct.apply(&v).is_none());
        let mut v2 = Valuation::new();
        v2.set(NullId(1), ConstId::new("ok"));
        assert!(ct.apply(&v2).is_some());
    }

    #[test]
    fn false_rows_dropped() {
        let mut t = CTable::new(1);
        t.push(CTuple::when(
            Tuple::new(vec![Value::c("x")]),
            Condition::False,
        ));
        assert!(t.is_empty());
    }

    #[test]
    fn rep_members_cover_merge_and_split() {
        // {(⊥1), (⊥2)}: members where they merge (1 tuple) and split (2).
        let r = RelSym::new("CtR4");
        let mut ct = CInstance::new();
        let table = ct.table_mut(r, 1);
        table.push(CTuple::always(Tuple::new(vec![Value::null(1)])));
        table.push(CTuple::always(Tuple::new(vec![Value::null(2)])));
        let sizes: BTreeSet<usize> = ct
            .rep_members(&BTreeSet::new())
            .map(|(i, _)| i.tuple_count())
            .collect();
        assert_eq!(sizes, BTreeSet::from([1, 2]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut t = CTable::new(2);
        t.push(CTuple::always(Tuple::new(vec![Value::c("x")])));
    }
}
