//! # dx-ctables — conditional tables and exact relational-algebra certain
//! answers
//!
//! The paper's §2 observes that naive evaluation computes certain answers
//! `□Q(T)` only for positive queries, and that
//!
//! > "for full relational algebra queries one needs a rather complicated
//! > mechanism of **conditional tables** \[Imieliński–Lipski, JACM'84\] to
//! > represent certain answers."
//!
//! This crate supplies that mechanism as a substrate: [`Condition`]s
//! (boolean combinations of (in)equalities over constants and nulls),
//! [`CTable`]/[`CInstance`] (tuples guarded by conditions), the full
//! positional **relational algebra** ([`RaExpr`]: selection, projection,
//! product, union, difference, intersection, constant relations) with the
//! Imieliński–Lipski conditional evaluation, exact certain-answer
//! extraction by condition-validity checking over generic palettes, and
//! the **Codd-theorem translation** ([`translate::fo_to_ra`]) compiling
//! arbitrary first-order queries into that algebra under active-domain
//! semantics.
//!
//! Where it plugs into the reproduction: for an **all-closed** annotated
//! mapping, `Rep_A(CSol_A(S)) = Rep(CSol(S))` (Lemma 1), so
//! `certain_Σcl(Q, S) = □Q(CSol(S))` (Corollary 2) — and `CSol(S)` is a
//! naive table, a special c-table. Evaluating `Q` as relational algebra over
//! the c-table and extracting the certain tuples is therefore an exact,
//! search-free alternative to the coNP valuation search of `dx-core`; the
//! two engines cross-validate each other in the workspace integration
//! tests.

#![warn(missing_docs)]

pub mod algebra;
pub mod certain;
pub mod condition;
pub mod ctable;
pub mod translate;

pub use algebra::{ColRef, RaExpr, RaPred};
pub use certain::{
    certain_answers_from, certain_answers_ra, possible_answers_from, possible_answers_ra,
};
pub use condition::Condition;
pub use ctable::{CInstance, CTable, CTuple};
pub use translate::{fo_to_ra, TranslateError};
