//! Safe-range translation of first-order queries into relational algebra.
//!
//! The classic active-domain translation (Codd's theorem, constructive
//! direction): every FO formula `φ(x̄)` becomes an [`RaExpr`] computing
//! `{ t̄ over adom : φ(t̄) }`, where *adom* is the active domain of the
//! instance **plus the constants of the formula** — exactly the evaluation
//! domain of `dx-logic`'s active-domain evaluator, so the two agree on
//! every ground instance (property-tested in `tests/properties_ext.rs`).
//!
//! Together with the conditional evaluation of [`crate::algebra`], this
//! closes the loop the paper's §2 points at: *arbitrary* FO/RA queries over
//! tables with nulls get exact certain answers through c-tables, not just
//! hand-written algebra.
//!
//! Shape of the translation: `translate` returns `(expr, vars)` with one
//! output column per free variable (sorted order); connective cases align
//! columns by padding with the adom expression:
//!
//! * atoms — selections (constants, repeated variables) + projection;
//! * `∧` — natural join (product, equality selection, projection);
//! * `∨` — pad to the union of the variable sets, then union;
//! * `¬` — complement against `adom^k`;
//! * `∃` — projection; `∀x φ ≡ ¬∃x ¬φ`.

use crate::algebra::{RaExpr, RaPred};
use dx_logic::{Formula, Term};
use dx_relation::{ConstId, RelSym, Var};
use std::collections::BTreeSet;
use std::fmt;

/// Why a formula could not be translated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranslateError {
    /// Skolem/function terms have no RA counterpart.
    FunctionTerm(String),
    /// A relation used in the formula is missing from the schema given to
    /// [`fo_to_ra`].
    UnknownRelation(RelSym),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::FunctionTerm(t) => {
                write!(f, "function term {t} is not translatable to RA")
            }
            TranslateError::UnknownRelation(r) => write!(f, "relation {r} not in schema"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// The active-domain expression for a schema: the union of all column
/// projections of all relations, plus the formula's constants. Arity 1.
fn adom_expr(schema: &[(RelSym, usize)], consts: &BTreeSet<ConstId>) -> RaExpr {
    let mut parts: Vec<RaExpr> = Vec::new();
    for &(rel, arity) in schema {
        for col in 0..arity {
            parts.push(RaExpr::Rel(rel).project([col]));
        }
    }
    for &c in consts {
        parts.push(RaExpr::Singleton(vec![c]));
    }
    parts
        .into_iter()
        .reduce(|a, b| a.union(b))
        .unwrap_or(RaExpr::Empty(1))
}

/// Translate a first-order query `φ` with output variables `head` into a
/// relational-algebra expression over `schema` (relation, arity pairs).
///
/// The result has one column per `head` variable, in order. Head variables
/// that do not occur freely in `φ` range over the active domain (the
/// active-domain semantics' reading of a "free" output column). Function
/// terms are rejected.
pub fn fo_to_ra(
    formula: &Formula,
    head: &[Var],
    schema: &[(RelSym, usize)],
) -> Result<RaExpr, TranslateError> {
    // Schema sanity: every relation the formula uses must be known.
    let known: BTreeSet<RelSym> = schema.iter().map(|&(r, _)| r).collect();
    for (rel, _) in formula.relations() {
        if !known.contains(&rel) {
            return Err(TranslateError::UnknownRelation(rel));
        }
    }
    let adom = adom_expr(schema, &formula.constants());
    let (expr, vars) = translate(formula, &adom)?;
    // Align to the head: pad missing head variables with adom columns, then
    // project into head order.
    let mut padded = expr;
    let mut cols: Vec<Var> = vars;
    for &h in head {
        if !cols.contains(&h) {
            padded = padded.product(adom.clone());
            cols.push(h);
        }
    }
    let order: Vec<usize> = head
        .iter()
        .map(|h| cols.iter().position(|c| c == h).expect("just padded"))
        .collect();
    Ok(padded.project(order))
}

/// Core translation: returns the expression and its output variables (the
/// formula's free variables, sorted), one column per variable.
fn translate(f: &Formula, adom: &RaExpr) -> Result<(RaExpr, Vec<Var>), TranslateError> {
    match f {
        Formula::True => Ok((RaExpr::Singleton(vec![]), vec![])),
        Formula::False => Ok((RaExpr::Empty(0), vec![])),
        Formula::Atom(rel, args) => translate_atom(*rel, args),
        Formula::Eq(a, b) => translate_eq(a, b, adom),
        Formula::And(fs) => {
            let mut acc: Option<(RaExpr, Vec<Var>)> = None;
            for g in fs {
                let t = translate(g, adom)?;
                acc = Some(match acc {
                    None => t,
                    Some(prev) => join(prev, t),
                });
            }
            Ok(acc.unwrap_or((RaExpr::Singleton(vec![]), vec![])))
        }
        Formula::Or(fs) => {
            // Pad every disjunct to the union of the variable sets.
            let mut all_vars: BTreeSet<Var> = BTreeSet::new();
            for g in fs {
                all_vars.extend(g.free_vars());
            }
            let all_vars: Vec<Var> = all_vars.into_iter().collect();
            let mut acc: Option<RaExpr> = None;
            for g in fs {
                let t = translate(g, adom)?;
                let aligned = align(t, &all_vars, adom);
                acc = Some(match acc {
                    None => aligned,
                    Some(prev) => prev.union(aligned),
                });
            }
            Ok((acc.unwrap_or(RaExpr::Empty(all_vars.len())), all_vars))
        }
        Formula::Not(inner) => {
            let (e, vars) = translate(inner, adom)?;
            // Complement against adom^k.
            let mut universe = RaExpr::Singleton(vec![]);
            for _ in 0..vars.len() {
                universe = universe.product(adom.clone());
            }
            Ok((universe.diff(e), vars))
        }
        Formula::Exists(vs, inner) => {
            let (e, vars) = translate(inner, adom)?;
            let keep: Vec<usize> = vars
                .iter()
                .enumerate()
                .filter(|(_, v)| !vs.contains(v))
                .map(|(i, _)| i)
                .collect();
            let kept_vars: Vec<Var> = keep.iter().map(|&i| vars[i]).collect();
            Ok((e.project(keep), kept_vars))
        }
        Formula::Forall(vs, inner) => {
            // ∀x̄ φ ≡ ¬∃x̄ ¬φ.
            let rewritten =
                Formula::not(Formula::exists(vs.clone(), Formula::not((**inner).clone())));
            translate(&rewritten, adom)
        }
    }
}

/// Atom translation: base relation, constant/repeated-variable selections,
/// projection to one column per distinct variable (sorted).
fn translate_atom(rel: RelSym, args: &[Term]) -> Result<(RaExpr, Vec<Var>), TranslateError> {
    let mut expr = RaExpr::Rel(rel);
    let mut preds: Vec<RaPred> = Vec::new();
    let mut var_cols: Vec<(Var, usize)> = Vec::new();
    for (i, t) in args.iter().enumerate() {
        match t {
            Term::Const(c) => preds.push(RaPred::Eq(
                crate::algebra::ColRef::Col(i),
                crate::algebra::ColRef::Const(*c),
            )),
            Term::Var(v) => {
                if let Some(&(_, j)) = var_cols.iter().find(|(w, _)| w == v) {
                    preds.push(RaPred::cols_eq(j, i));
                } else {
                    var_cols.push((*v, i));
                }
            }
            Term::App(f, _) => {
                return Err(TranslateError::FunctionTerm(format!("{f}(…)")));
            }
        }
    }
    if !preds.is_empty() {
        expr = expr.select(RaPred::And(preds));
    }
    var_cols.sort_by_key(|&(v, _)| v);
    let cols: Vec<usize> = var_cols.iter().map(|&(_, c)| c).collect();
    let vars: Vec<Var> = var_cols.iter().map(|&(v, _)| v).collect();
    Ok((expr.project(cols), vars))
}

/// Equality translation over the active domain.
fn translate_eq(a: &Term, b: &Term, adom: &RaExpr) -> Result<(RaExpr, Vec<Var>), TranslateError> {
    let reject = |t: &Term| match t {
        Term::App(f, _) => Err(TranslateError::FunctionTerm(format!("{f}(…)"))),
        _ => Ok(()),
    };
    reject(a)?;
    reject(b)?;
    match (a, b) {
        (Term::Const(c1), Term::Const(c2)) => Ok(if c1 == c2 {
            (RaExpr::Singleton(vec![]), vec![])
        } else {
            (RaExpr::Empty(0), vec![])
        }),
        (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => Ok((
            adom.clone().select(RaPred::Eq(
                crate::algebra::ColRef::Col(0),
                crate::algebra::ColRef::Const(*c),
            )),
            vec![*v],
        )),
        (Term::Var(v), Term::Var(w)) => {
            if v == w {
                Ok((adom.clone(), vec![*v]))
            } else {
                let (lo, hi) = if v < w { (*v, *w) } else { (*w, *v) };
                Ok((
                    adom.clone()
                        .product(adom.clone())
                        .select(RaPred::cols_eq(0, 1)),
                    vec![lo, hi],
                ))
            }
        }
        (Term::App(_, _), _) | (_, Term::App(_, _)) => unreachable!("rejected above"),
    }
}

/// Natural join of two translated pieces on their shared variables; output
/// columns = sorted union of the variable sets.
fn join((le, lv): (RaExpr, Vec<Var>), (re, rv): (RaExpr, Vec<Var>)) -> (RaExpr, Vec<Var>) {
    let mut preds: Vec<RaPred> = Vec::new();
    for (j, w) in rv.iter().enumerate() {
        if let Some(i) = lv.iter().position(|v| v == w) {
            preds.push(RaPred::cols_eq(i, lv.len() + j));
        }
    }
    let mut expr = le.product(re);
    if !preds.is_empty() {
        expr = expr.select(RaPred::And(preds));
    }
    // Output columns: all of lv, then rv-only variables — then sort.
    let mut cols: Vec<(Var, usize)> = lv.iter().copied().zip(0..).collect();
    for (j, w) in rv.iter().enumerate() {
        if !lv.contains(w) {
            cols.push((*w, lv.len() + j));
        }
    }
    cols.sort_by_key(|&(v, _)| v);
    let proj: Vec<usize> = cols.iter().map(|&(_, c)| c).collect();
    let vars: Vec<Var> = cols.iter().map(|&(v, _)| v).collect();
    (expr.project(proj), vars)
}

/// Pad/reorder a translated piece to exactly `target` variables (missing
/// ones range over adom).
fn align((e, vars): (RaExpr, Vec<Var>), target: &[Var], adom: &RaExpr) -> RaExpr {
    let mut expr = e;
    let mut cols: Vec<Var> = vars;
    for &t in target {
        if !cols.contains(&t) {
            expr = expr.product(adom.clone());
            cols.push(t);
        }
    }
    let order: Vec<usize> = target
        .iter()
        .map(|t| cols.iter().position(|c| c == t).expect("padded"))
        .collect();
    expr.project(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_logic::parse_formula;
    use dx_relation::{Instance, Tuple};

    fn schema() -> Vec<(RelSym, usize)> {
        vec![(RelSym::new("TrE"), 2), (RelSym::new("TrN"), 1)]
    }

    fn instance() -> Instance {
        let mut i = Instance::new();
        i.insert_names("TrE", &["a", "b"]);
        i.insert_names("TrE", &["b", "c"]);
        i.insert_names("TrE", &["c", "c"]);
        i.insert_names("TrN", &["a"]);
        i.insert_names("TrN", &["d"]);
        i
    }

    /// Helper: RA translation agrees with the active-domain FO evaluator.
    fn check(src: &str, head: &[&str]) {
        let f = parse_formula(src).expect("parses");
        let head_vars: Vec<Var> = head.iter().map(|h| Var::new(h)).collect();
        let q = dx_logic::Query::new(head_vars.clone(), f.clone());
        let expected = q.answers(&instance());
        let ra = fo_to_ra(&f, &head_vars, &schema()).expect("translates");
        let got = ra.eval_ground(&instance());
        assert_eq!(got, expected, "query `{src}` heads {head:?}");
    }

    #[test]
    fn atoms_and_joins() {
        check("TrE(x, y)", &["x", "y"]);
        check("exists y. TrE(x, y) & TrE(y, z)", &["x", "z"]);
        check("TrE(x, x)", &["x"]);
        check("TrE(x, 'b')", &["x"]);
    }

    #[test]
    fn negation_and_difference() {
        check("TrN(x) & !exists y. TrE(x, y)", &["x"]);
        check("!TrN(x) & TrE(x, x)", &["x"]);
    }

    #[test]
    fn disjunction_with_mismatched_vars() {
        check("TrN(x) | (exists y. TrE(x, y))", &["x"]);
        check("TrE(x, y) | (TrN(x) & TrN(y))", &["x", "y"]);
    }

    #[test]
    fn quantifiers() {
        check("exists y. TrE(x, y)", &["x"]);
        check("forall y. (TrE(x, y) -> x = y)", &["x"]);
        check("exists x. TrE(x, x)", &[]);
    }

    #[test]
    fn equalities() {
        check("x = 'a' & TrN(x)", &["x"]);
        check("x = y & TrN(x)", &["x", "y"]);
        check("TrN(x) & x = x", &["x"]);
    }

    #[test]
    fn head_padding() {
        // y is not free: ranges over the active domain.
        check("TrN(x)", &["x", "y"]);
        // Boolean query (empty head).
        check("exists x y. TrE(x, y)", &[]);
    }

    #[test]
    fn constants_extend_adom() {
        // 'zzz' is not in the instance: x = 'zzz' must still be satisfiable
        // because formula constants join the evaluation domain.
        check("x = 'zzz'", &["x"]);
    }

    #[test]
    fn function_terms_rejected() {
        let f = parse_formula("x = f(y) & TrN(x) & TrN(y)").unwrap();
        let err = fo_to_ra(&f, &[Var::new("x"), Var::new("y")], &schema()).unwrap_err();
        assert!(matches!(err, TranslateError::FunctionTerm(_)));
    }

    #[test]
    fn unknown_relations_rejected() {
        let f = parse_formula("Ghost(x)").unwrap();
        let err = fo_to_ra(&f, &[Var::new("x")], &schema()).unwrap_err();
        assert!(matches!(err, TranslateError::UnknownRelation(_)));
    }

    #[test]
    fn empty_instance_and_empty_schema() {
        let f = parse_formula("!exists x. TrN(x)").unwrap();
        let ra = fo_to_ra(&f, &[], &schema()).unwrap();
        let empty = Instance::new();
        let out = ra.eval_ground(&empty);
        // Boolean TRUE = the singleton empty tuple.
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::new(Vec::<dx_relation::Value>::new())));
    }
}
