//! # oc-exchange — data exchange in open and closed worlds
//!
//! Umbrella crate re-exporting the full public API of the workspace, a Rust
//! reproduction of *“Data exchange and schema mappings in open and closed
//! worlds”* (Libkin & Sirangelo, PODS 2008 / JCSS 2011).
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the system
//! inventory. The layering is:
//!
//! * [`relation`] — values, tuples, instances, open/closed annotations,
//!   and hash indexes with stable tuple ids;
//! * [`logic`] — FO formulas, parsing and evaluation over instances with nulls;
//! * [`chase`] — annotated STDs, mappings, canonical solutions, homomorphisms,
//!   and the pluggable [`chase::ChaseStrategy`] contract (naive reference
//!   engine included);
//! * [`engine`] — the indexed, delta-driven chase engine (the fast
//!   [`chase::ChaseStrategy`] implementation);
//! * [`query`] — compiled, index-backed query evaluation: safe-range
//!   lowering of FO/RA queries to plans with hash/index joins, plus the
//!   conditional execution mode over c-tables;
//! * [`solver`] — `Rep_A` membership and bounded counterexample search;
//! * [`ctables`] — conditional tables (Imieliński–Lipski) with relational
//!   algebra and exact certain answers;
//! * [`core`] — the paper's results: mixed-world semantics, certain answers
//!   (both trichotomies), schema-mapping composition incl. SkSTDs, and the
//!   non-monotonic query-answering regimes (GCWA\* / approximation);
//! * [`workloads`] — generators and the hardness reductions from the proofs.
//! * [`text`] — the `.dx` scenario language: parser, validator, printer, and
//!   the seeded corpus generator behind the `dx` CLI;
//! * [`obs`] — the zero-cost-when-disabled metrics/tracing layer behind the
//!   `DX_OBS` switch (work-metric counters, RAII spans, `EXPLAIN` reports).

#![warn(missing_docs)]

pub use dx_chase as chase;
pub use dx_core as core;
pub use dx_ctables as ctables;
pub use dx_engine as engine;
pub use dx_logic as logic;
pub use dx_obs as obs;
pub use dx_query as query;
pub use dx_relation as relation;
pub use dx_solver as solver;
pub use dx_text as text;
pub use dx_workloads as workloads;

pub use dx_relation::{
    Ann, AnnInstance, AnnRelation, AnnTuple, Annotation, ConstId, FuncSym, Instance, NullGen,
    NullId, RelSym, Relation, Schema, Tuple, Valuation, Value, Var,
};
