//! Counter-invariant tests for the `dx-obs` metrics layer.
//!
//! The work-metric counters are only trustworthy if they track the
//! *algorithms*, not an instrumentation accident. Each test here pins a
//! counter to an independently observable quantity on randomized inputs:
//!
//! * **solver balance** — every delta the `Rep_A` valuation search applies
//!   is undone (`solver.dfs.deltas_applied == solver.dfs.deltas_undone`),
//!   including searches stopped early by a witness; likewise for the
//!   union-walk (`solver.union.*`), and `solver.dfs.leaves` equals the
//!   engine's own `SearchOutcome::leaves`;
//! * **chase delta** — on tgd-only dependencies, `engine.chase.tuples_inserted`
//!   equals the growth of the chased instance (and `merges` stays zero);
//! * **root rows** — `query.exec.rows_emitted` counts exactly the rows a
//!   compiled plan returns at its root, and those rows agree with the
//!   tree-walking evaluator;
//! * **disabled mode** — with the layer off, the same workloads leave the
//!   registry snapshot empty.
//!
//! The registry is process-global, so every test serializes on one lock and
//! scopes its measurement to a snapshot diff.

use oc_exchange::chase::chase_engine::DEFAULT_CHASE_LIMIT;
use oc_exchange::chase::{canonical_solution, canonical_solution_with_deps_via};
use oc_exchange::engine::IndexedChase;
use oc_exchange::logic::Query;
use oc_exchange::obs::MetricsSnapshot;
use oc_exchange::query::lower_formula;
use oc_exchange::relation::InstanceIndex;
use oc_exchange::solver::{
    for_each_union, minimal_rep_a_members, search_rep_a_indexed, SearchBudget,
};
use oc_exchange::{obs, Ann, AnnInstance, AnnTuple, Annotation, RelSym, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Mutex;

use dx_bench::chase_workloads::conference_case;
use dx_bench::query_workloads::{all_query_cases, gcwa_case};

/// One lock for the process-global registry: tests in this binary run on
/// parallel threads, and a concurrent workload would bleed into another
/// test's snapshot diff.
static LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with metrics enabled and return its result plus the counter diff
/// it produced. Leaves the layer disabled afterwards.
fn measured<T>(f: impl FnOnce() -> T) -> (T, MetricsSnapshot) {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(true);
    let before = obs::snapshot();
    let out = f();
    let diff = obs::snapshot().diff_since(&before);
    obs::set_enabled(false);
    (out, diff)
}

/// A random mixed-annotation instance over a binary and a unary relation
/// (the same family the solver differential tests use).
fn random_ann_instance(rng: &mut StdRng) -> AnnInstance {
    let rel_e = RelSym::new("ObE");
    let rel_v = RelSym::new("ObV");
    let consts = ["a", "b", "c"];
    let mut t = AnnInstance::new();
    let val = |rng: &mut StdRng| -> Value {
        if rng.gen_bool(0.4) {
            Value::null(rng.gen_range(1..4) as u32)
        } else {
            Value::c(consts[rng.gen_range(0..consts.len())])
        }
    };
    let ann = |rng: &mut StdRng| {
        if rng.gen_bool(0.5) {
            Ann::Open
        } else {
            Ann::Closed
        }
    };
    for _ in 0..rng.gen_range(1..4) {
        let tuple = Tuple::new(vec![val(rng), val(rng)]);
        t.insert(
            rel_e,
            AnnTuple::new(tuple, Annotation::new(vec![ann(rng), ann(rng)])),
        );
    }
    for _ in 0..rng.gen_range(0..3) {
        let tuple = Tuple::new(vec![val(rng)]);
        t.insert(rel_v, AnnTuple::new(tuple, Annotation::new(vec![ann(rng)])));
    }
    t
}

/// `solver.dfs.*`: applied and undone deltas balance on every search —
/// exhaustive sweeps and early witness stops alike — and the leaf counter
/// matches the engine's own accounting.
#[test]
fn solver_dfs_deltas_balance_randomized() {
    let mut rng = StdRng::seed_from_u64(0x0B5_D1F5);
    for case in 0..32 {
        let t = random_ann_instance(&mut rng);
        let budget = SearchBudget::bounded(1, 2);
        // Half the cases stop at the first leaf (witness found), half sweep
        // the whole space: the balance must hold either way, because the
        // DFS unwinds its stack even on early return.
        let stop_early = case % 2 == 0;
        let (outcome, diff) =
            measured(|| search_rep_a_indexed(&t, &BTreeSet::new(), &budget, &mut |_| stop_early));
        assert_eq!(
            diff.counter("solver.dfs.deltas_applied"),
            diff.counter("solver.dfs.deltas_undone"),
            "case {case}: unbalanced deltas on t = {t}"
        );
        assert_eq!(
            diff.counter("solver.dfs.leaves"),
            outcome.leaves,
            "case {case}: leaf counter disagrees with SearchOutcome"
        );
        assert!(
            diff.counter("solver.dfs.nodes") >= outcome.leaves,
            "case {case}: every leaf is a visited node"
        );
    }
}

/// `solver.union.*`: the union-walk's reference-counted deltas balance and
/// the visit counter matches `for_each_union`'s return value.
#[test]
fn union_walk_deltas_balance() {
    let case = gcwa_case(8);
    let csol = canonical_solution(&case.mapping, &case.source);
    let palette = oc_exchange::core::regimes::answer_palette(&case.source, &case.query);
    let (minimal, _) = minimal_rep_a_members(&csol.instance, &palette, None);
    assert!(!minimal.is_empty(), "gcwa workload has minimal members");
    let (unions, diff) = measured(|| for_each_union(&minimal, 2, &mut |_| false));
    assert!(unions > 0, "walk visits unions");
    assert_eq!(
        diff.counter("solver.union.unions_visited"),
        unions,
        "visit counter disagrees with for_each_union"
    );
    assert_eq!(
        diff.counter("solver.union.deltas_applied"),
        diff.counter("solver.union.deltas_undone"),
        "unbalanced private deltas across the union walk"
    );
}

/// `engine.chase.tuples_inserted`: on tgd-only dependencies the counter
/// equals the instance growth the chase produced, and no merges happen.
#[test]
fn chase_insert_counter_matches_instance_delta() {
    let mut rng = StdRng::seed_from_u64(0x0B5_C4A5E);
    for _ in 0..4 {
        let n = rng.gen_range(2..12);
        let case = conference_case(n);
        // Keep only the tgds: egd merges retract tuples, which is exactly
        // the case this invariant excludes.
        let tgds_only: Vec<_> = case
            .deps
            .iter()
            .filter(|d| matches!(d, oc_exchange::chase::target_deps::TargetDep::Tgd(_)))
            .cloned()
            .collect();
        assert!(!tgds_only.is_empty(), "conference case has a tgd");
        let base = canonical_solution_with_deps_via(
            &IndexedChase,
            &case.mapping,
            &[],
            &case.source,
            DEFAULT_CHASE_LIMIT,
        );
        let (out, diff) = measured(|| {
            canonical_solution_with_deps_via(
                &IndexedChase,
                &case.mapping,
                &tgds_only,
                &case.source,
                DEFAULT_CHASE_LIMIT,
            )
        });
        assert_eq!(
            diff.counter("engine.chase.tuples_inserted"),
            (out.instance.tuple_count() - base.instance.tuple_count()) as u64,
            "n = {n}: insert counter disagrees with the chased-instance growth"
        );
        assert_eq!(
            diff.counter("engine.chase.merges"),
            0,
            "n = {n}: tgd-only chase must not merge"
        );
        assert!(
            diff.counter("engine.chase.triggers_discovered")
                >= diff.counter("engine.chase.triggers_fired"),
            "n = {n}: fired triggers were discovered first"
        );
    }
}

/// `query.exec.rows_emitted`: the counter is exactly the root row count of
/// each compiled execution, and those rows agree with the tree-walking
/// evaluator on the same instance.
#[test]
fn compiled_root_rows_match_counter_and_tree_walker() {
    for case in all_query_cases(16) {
        let target = canonical_solution(&case.mapping, &case.source).rel_part();
        let plan = match lower_formula(&case.query.formula) {
            Ok(plan) => plan,
            Err(_) => continue, // non-safe-range workloads have no plan
        };
        let idx = InstanceIndex::build(&target);
        let (rows, diff) = measured(|| oc_exchange::query::exec::exec(&plan, &idx));
        assert_eq!(
            diff.counter("query.exec.rows_emitted"),
            rows.rows.len() as u64,
            "{}: rows_emitted must count root rows only",
            case.workload
        );
        let tree: BTreeSet<Tuple> = reorder_to_head(&case.query, &rows);
        let oracle: BTreeSet<Tuple> = case.query.answers(&target).iter().cloned().collect();
        assert_eq!(tree, oracle, "{}: compiled vs tree rows", case.workload);
    }
}

/// Project the executed rows onto the query head order (plans emit their
/// own schema order).
fn reorder_to_head(query: &Query, rows: &oc_exchange::query::exec::Rows) -> BTreeSet<Tuple> {
    let positions: Vec<usize> = query
        .head
        .iter()
        .map(|v| {
            rows.vars
                .iter()
                .position(|s| s == v)
                .expect("head var in plan schema")
        })
        .collect();
    rows.rows
        .iter()
        .map(|t| Tuple::new(positions.iter().map(|&i| t[i]).collect::<Vec<_>>()))
        .collect()
}

/// With the layer disabled, the same workloads record nothing: the
/// snapshot stays empty end to end.
#[test]
fn disabled_mode_records_nothing() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(false);
    let case = conference_case(4);
    let out = canonical_solution_with_deps_via(
        &IndexedChase,
        &case.mapping,
        &case.deps,
        &case.source,
        DEFAULT_CHASE_LIMIT,
    );
    let qcase = gcwa_case(4);
    let csol = canonical_solution(&qcase.mapping, &qcase.source);
    let palette = oc_exchange::core::regimes::answer_palette(&qcase.source, &qcase.query);
    search_rep_a_indexed(
        &csol.instance,
        &palette,
        &SearchBudget::bounded(1, 2),
        &mut |_| false,
    );
    assert!(out.instance.tuple_count() > 0, "chase produced tuples");
    assert!(
        obs::snapshot().is_empty(),
        "disabled layer must not register counters"
    );
}
