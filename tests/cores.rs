//! Integration tests for cores of canonical solutions (the FKP \[12\]
//! "getting to the core" machinery) against the paper's semantics: positive
//! certain answers are invariant under taking cores, and the annotated core
//! is itself a `Σα`-solution.

use oc_exchange::chase::core::{ann_core_of, core_of, find_ann_hom, hom_equivalent};
use oc_exchange::chase::{canonical_solution, solutions, Mapping};
use oc_exchange::logic::Query;
use oc_exchange::workloads::random_gen;
use oc_exchange::{Instance, Schema};

/// Positive-query certain answers (Prop 3: naive evaluation) agree between
/// the canonical solution and its core: the two are homomorphically
/// equivalent, and UCQ answers without nulls are hom-invariant.
#[test]
fn positive_certain_answers_invariant_under_core() {
    let m = Mapping::parse("IcTgt(x:cl, z:op) <- IcSrc(x, y); IcLink(x:cl, y:cl) <- IcSrc(x, y)")
        .unwrap();
    let mut s = Instance::new();
    s.insert_names("IcSrc", &["a", "p"]);
    s.insert_names("IcSrc", &["a", "q"]);
    s.insert_names("IcSrc", &["b", "p"]);
    let csol = canonical_solution(&m, &s);
    let core = ann_core_of(&csol.instance);
    assert!(core.core.tuple_count() < csol.instance.tuple_count());

    // A CQ joining the two target relations.
    let q = Query::parse(&["x"], "(exists z. IcTgt(x, z)) & (exists y. IcLink(x, y))").unwrap();
    let on_csol = q.naive_certain_answers(&csol.instance.rel_part());
    let on_core = q.naive_certain_answers(&core.core.rel_part());
    assert_eq!(on_csol, on_core);
    assert!(!on_csol.is_empty());
}

/// The annotated core of `CSol_A(S)` is a `Σα`-solution for every sampled
/// random mapping/source pair (Proposition 1 both ways).
#[test]
fn ann_core_is_solution_randomized() {
    let schema = Schema::from_pairs([("CrA", 2), ("CrB", 1)]);
    for seed in 0..40u64 {
        let mut rng = random_gen::rng(seed);
        let m = random_gen::random_mapping(&schema, 1, 0.5, &mut rng);
        let s = random_gen::random_instance(&schema, 3, 3, &mut rng);
        let csol = canonical_solution(&m, &s);
        let core = ann_core_of(&csol.instance);
        assert!(
            solutions::is_solution(&m, &s, &core.core).is_some(),
            "seed {seed}: annotated core must be a Σα-solution"
        );
        // And it stays hom-equivalent to the canonical solution.
        assert!(find_ann_hom(&csol.instance, &core.core).is_some());
        assert!(find_ann_hom(&core.core, &csol.instance).is_some());
    }
}

/// FKP core can be strictly smaller than the annotated (Null→Null) core when
/// the source supplies ground support for invented nulls.
#[test]
fn fkp_core_sharper_than_annotated_core() {
    // Copy the edge AND invent a null companion: (a,b) supports ⊥ ↦ b.
    let m = Mapping::parse("CfE(x:cl, y:cl) <- CfS(x, y); CfE(x:cl, z:cl) <- CfS(x, y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("CfS", &["a", "b"]);
    let csol = canonical_solution(&m, &s);
    let ground = csol.instance.rel_part();
    let fkp = core_of(&ground);
    let ann = ann_core_of(&csol.instance);
    assert_eq!(fkp.core.tuple_count(), 1, "⊥ collapses onto constant b");
    assert_eq!(ann.core.tuple_count(), 2, "null→null maps cannot reach b");
    assert!(hom_equivalent(&ground, &fkp.core));
}

/// Cores never change the ground part of an instance.
#[test]
fn core_preserves_ground_tuples() {
    let m = Mapping::parse("CgT(x:cl, y:cl) <- CgS(x, y); CgP(x:cl, z:op) <- CgS(x, y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("CgS", &["a", "b"]);
    s.insert_names("CgS", &["c", "d"]);
    let csol = canonical_solution(&m, &s);
    let core = ann_core_of(&csol.instance);
    let ground_before: Vec<_> = csol
        .instance
        .rel_part()
        .tuples(oc_exchange::RelSym::new("CgT"))
        .cloned()
        .collect();
    let ground_after: Vec<_> = core
        .core
        .rel_part()
        .tuples(oc_exchange::RelSym::new("CgT"))
        .cloned()
        .collect();
    assert_eq!(ground_before, ground_after);
}
