//! Integration tests for the §6 target-constraint pipeline: exchange, then
//! chase, then query.

use oc_exchange::chase::{
    canonical_solution_with_deps, chase_engine, is_weakly_acyclic, ChaseOutcome, Mapping, TargetDep,
};
use oc_exchange::core::certain;
use oc_exchange::logic::Query;
use oc_exchange::{Instance, RelSym, Tuple};

/// Exchange-then-chase: a mapping copying employees plus a tgd inventing
/// departments and an egd making departments unique per employee.
#[test]
fn pipeline_exchange_chase_query() {
    let m = Mapping::parse("Emp(e:cl) <- Hire(e, y)").unwrap();
    let deps =
        TargetDep::parse_many("Dept(e:cl, d:op) <- Emp(e); d1 = d2 <- Dept(e, d1) & Dept(e, d2)")
            .unwrap();
    assert!(is_weakly_acyclic(&deps));
    let mut s = Instance::new();
    s.insert_names("Hire", &["ada", "2001"]);
    s.insert_names("Hire", &["bob", "2002"]);
    let out = canonical_solution_with_deps(&m, &deps, &s, 1000);
    assert_eq!(out.outcome, ChaseOutcome::Satisfied);
    assert!(chase_engine::satisfies_deps(&out.instance, &deps));
    // Each employee got exactly one department null.
    assert_eq!(out.instance.relation(RelSym::new("Dept")).unwrap().len(), 2);

    // Positive certain answers on the chased instance.
    let q = Query::parse(&["e"], "exists d. Dept(e, d)").unwrap();
    let ans = certain::certain_positive_with_deps(&m, &deps, &s, &q, 1000).expect("chase succeeds");
    assert_eq!(ans.len(), 2);
    assert!(ans.contains(&Tuple::from_names(&["ada"])));
}

/// The chase propagates source data through constraint-derived joins.
#[test]
fn transitive_like_tgd() {
    let m = Mapping::parse("G(x:cl, y:cl) <- E(x, y)").unwrap();
    // Symmetric closure as a target constraint.
    let deps = TargetDep::parse_many("G(y:cl, x:cl) <- G(x, y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("E", &["a", "b"]);
    s.insert_names("E", &["b", "c"]);
    let out = canonical_solution_with_deps(&m, &deps, &s, 1000);
    assert_eq!(out.outcome, ChaseOutcome::Satisfied);
    let g = out.instance.rel_part();
    assert_eq!(g.relation(RelSym::new("G")).unwrap().len(), 4);
    assert!(g.contains(RelSym::new("G"), &Tuple::from_names(&["c", "b"])));
}

/// Egd failure: key constraints clashing on source constants mean no
/// solution.
#[test]
fn egd_failure_on_source_data() {
    let m = Mapping::parse("R(x:cl, y:cl) <- E(x, y)").unwrap();
    let deps = TargetDep::parse_many("y1 = y2 <- R(x, y1) & R(x, y2)").unwrap();
    let mut s = Instance::new();
    s.insert_names("E", &["k", "v1"]);
    s.insert_names("E", &["k", "v2"]); // two constants for one key
    let out = canonical_solution_with_deps(&m, &deps, &s, 1000);
    assert!(matches!(out.outcome, ChaseOutcome::Failed { .. }));
    let q = Query::parse(&["x"], "exists y. R(x, y)").unwrap();
    assert!(certain::certain_positive_with_deps(&m, &deps, &s, &q, 1000).is_none());
}

/// Egds unify nulls coming from *different STD firings* — the closed-world
/// one-value-per-key behaviour extended to constraints.
#[test]
fn egd_unifies_exchange_nulls() {
    // Two rules both invent a value for the same key.
    let m = Mapping::parse("R(x:cl, z:cl) <- E(x); R(x:cl, w:cl) <- F(x)").unwrap();
    let deps = TargetDep::parse_many("y1 = y2 <- R(x, y1) & R(x, y2)").unwrap();
    let mut s = Instance::new();
    s.insert_names("E", &["k"]);
    s.insert_names("F", &["k"]);
    let out = canonical_solution_with_deps(&m, &deps, &s, 1000);
    assert_eq!(out.outcome, ChaseOutcome::Satisfied);
    // The two nulls merged into one tuple.
    assert_eq!(out.instance.relation(RelSym::new("R")).unwrap().len(), 1);
}

/// Weak acyclicity protects the pipeline: a cyclic set is flagged before
/// chasing, and the step limit catches it if chased anyway.
#[test]
fn cyclic_deps_detected_and_limited() {
    let deps = TargetDep::parse_many("G(y:cl, z:op) <- G(x, y)").unwrap();
    assert!(!is_weakly_acyclic(&deps));
    let m = Mapping::parse("G(x:cl, y:cl) <- E(x, y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("E", &["a", "b"]);
    let out = canonical_solution_with_deps(&m, &deps, &s, 30);
    assert_eq!(out.outcome, ChaseOutcome::StepLimit);
}

/// Facts parser round-trips with the pipeline (usability check).
#[test]
fn facts_parser_feeds_the_pipeline() {
    let s = oc_exchange::logic::parse_facts("E(a, b). E(b, c).").unwrap();
    let m = Mapping::parse("G(x:cl, y:cl) <- E(x, y)").unwrap();
    let csol = oc_exchange::chase::canonical_solution(&m, &s);
    assert_eq!(csol.rel_part().tuple_count(), 2);
}
