//! Corpus-scale differential testing of the `.dx` scenario pipeline.
//!
//! The seeded generator (`dx_text::gen`) produces graded scenarios — grade 0
//! is tiny and all-closed, grade 3 mixes open/closed annotations, egds,
//! negation, and larger instances. Each scenario is raced end to end by
//! `dx_bench::corpus::race_scenario`:
//!
//! * parse → print → parse round-trip (canonical text is a fixpoint),
//! * NaiveChase vs IndexedChase on the annotated chase (outcome + result),
//! * compiled query evaluation vs the tree-walking oracle for certain /
//!   possible answers, and the GCWA\*/approximation bracket
//!   (`lower ⊆ gcwa* ⊆ upper`) over brute-force `Rep_A` enumeration.
//!
//! `run_corpus` panics on the first disagreement, so the per-grade tests
//! below assert only the aggregate counters; 4 grades × 50 seeds = 200
//! scenarios. The rest of the file pins the paper's §1 conference scenario
//! (`examples/conference.dx`) against its hand-built twin
//! (`dx_workloads::conference`), and covers the parser's failure-mode
//! diagnostics and the generator's byte-level determinism.

use oc_exchange::chase::chase_engine::{ChaseOutcome, DEFAULT_CHASE_LIMIT};
use oc_exchange::chase::core::ann_hom_equivalent;
use oc_exchange::chase::{canonical_solution_with_deps_via, NaiveChase};
use oc_exchange::core::certain::certain_answers;
use oc_exchange::engine::IndexedChase;
use oc_exchange::solver::Completeness;
use oc_exchange::text::{gen, gen_text, Grade, Scenario};
use oc_exchange::workloads::conference;

use dx_bench::corpus::run_corpus;

// ---------------------------------------------------------------------------
// The 200-scenario differential corpus (one test per grade so the four
// sweeps run on separate cargo-test threads).
// ---------------------------------------------------------------------------

const SEEDS_PER_GRADE: u64 = 50;

fn corpus_grade(level: u8) {
    let stats = run_corpus(0..SEEDS_PER_GRADE, &[Grade::new(level)]);
    assert_eq!(stats.scenarios, SEEDS_PER_GRADE as usize);
    assert_eq!(stats.per_grade[level as usize], SEEDS_PER_GRADE as usize);
    // Every scenario chased to a raced, agreeing outcome.
    assert_eq!(
        stats.chase_satisfied + stats.chase_failed,
        SEEDS_PER_GRADE as usize
    );
    // Each scenario carries queries, and the brute oracles did real work.
    assert!(stats.queries >= stats.scenarios);
    assert!(stats.text_bytes > 0);
}

#[test]
fn corpus_grade_0_differential() {
    corpus_grade(0);
}

#[test]
fn corpus_grade_1_differential() {
    corpus_grade(1);
}

#[test]
fn corpus_grade_2_differential() {
    corpus_grade(2);
}

#[test]
fn corpus_grade_3_differential() {
    corpus_grade(3);
}

// ---------------------------------------------------------------------------
// Pinned golden file: the paper's §1 conference scenario.
// ---------------------------------------------------------------------------

fn load_conference() -> (String, Scenario) {
    let text = std::fs::read_to_string("examples/conference.dx")
        .expect("examples/conference.dx is checked in");
    let sc = Scenario::parse(&text)
        .unwrap_or_else(|e| panic!("examples/conference.dx: {}", e.render(&text)));
    (text, sc)
}

/// The `.dx` file is semantically identical to the hand-built rust twin:
/// same annotated mapping, same source instance.
#[test]
fn conference_dx_matches_rust_twin() {
    let (_, sc) = load_conference();
    assert_eq!(sc.name, "conference");
    assert_eq!(sc.mapping, conference::mapping());
    assert_eq!(sc.source, conference::source(4, 2));
    assert!(sc.constraints.is_empty());
}

/// Both engines chase the pinned scenario to the same annotated solution
/// (up to hom-equivalence), matching the twin's chase.
#[test]
fn conference_dx_chases_like_twin() {
    let (_, sc) = load_conference();
    let from_dx = canonical_solution_with_deps_via(
        &IndexedChase,
        &sc.mapping,
        &sc.constraints,
        &sc.source,
        DEFAULT_CHASE_LIMIT,
    );
    let twin = canonical_solution_with_deps_via(
        &NaiveChase,
        &conference::mapping(),
        &[],
        &conference::source(4, 2),
        DEFAULT_CHASE_LIMIT,
    );
    assert_eq!(from_dx.outcome, ChaseOutcome::Satisfied);
    assert_eq!(twin.outcome, ChaseOutcome::Satisfied);
    assert!(
        ann_hom_equivalent(&from_dx.instance, &twin.instance),
        "dx-file chase and twin chase are not hom-equivalent"
    );
}

/// Certain answers computed from the `.dx` queries equal the answers for the
/// twin's hand-built queries — exact in all three regimes.
#[test]
fn conference_dx_answers_like_twin() {
    let (_, sc) = load_conference();
    let twin_mapping = conference::mapping();
    let twin_source = conference::source(4, 2);
    let pairs = [
        ("one_author", conference::one_author_query()),
        ("reviewed", conference::reviewed_query()),
        (
            "submitted_and_reviewed",
            conference::submitted_and_reviewed(),
        ),
    ];
    for (name, twin_query) in pairs {
        let dx_query = sc
            .query(name)
            .unwrap_or_else(|| panic!("conference.dx declares query `{name}`"));
        let (dx_rel, dx_comp) = certain_answers(&sc.mapping, &sc.source, dx_query, None);
        let (twin_rel, twin_comp) = certain_answers(&twin_mapping, &twin_source, &twin_query, None);
        assert_eq!(dx_comp, Completeness::Exact, "{name} from .dx");
        assert_eq!(twin_comp, Completeness::Exact, "{name} twin");
        assert_eq!(
            dx_rel, twin_rel,
            "{name}: .dx and twin certain answers differ"
        );
    }
}

/// The checked-in file is already in canonical form: printing the parsed
/// scenario and re-parsing is a fixpoint.
#[test]
fn conference_dx_print_parse_fixpoint() {
    let (_, sc) = load_conference();
    let printed = sc.to_text();
    let reparsed = Scenario::parse(&printed)
        .unwrap_or_else(|e| panic!("printed conference.dx reparses: {}", e.render(&printed)));
    assert_eq!(reparsed.to_text(), printed);
    assert_eq!(reparsed.mapping, sc.mapping);
    assert_eq!(reparsed.source, sc.source);
}

// ---------------------------------------------------------------------------
// Round-trip property: canonical text is a parse/print fixpoint across the
// whole grading range.
// ---------------------------------------------------------------------------

#[test]
fn generated_text_round_trips_every_grade() {
    for grade in Grade::ALL {
        for seed in 0..16 {
            let text = gen_text(seed, grade);
            let sc = Scenario::parse(&text)
                .unwrap_or_else(|e| panic!("gen({seed}, {grade:?}) parses: {}", e.render(&text)));
            assert_eq!(
                sc.to_text(),
                text,
                "print∘parse is not a fixpoint for seed {seed} grade {grade:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Parser failure modes: each diagnostic carries a span and a message naming
// the actual problem.
// ---------------------------------------------------------------------------

fn parse_err(src: &str) -> oc_exchange::text::TextError {
    Scenario::parse(src).expect_err("scenario must be rejected")
}

#[test]
fn diagnostic_unknown_relation() {
    let err = parse_err(
        r#"scenario "bad" {
  source { S/1; }
  target { T/1; }
  mapping { T(x:cl) <- Missing(x); }
}
"#,
    );
    assert!(
        err.msg
            .contains("unknown relation `Missing` (not declared in the source schema)"),
        "got: {}",
        err.msg
    );
    // The rendered diagnostic points at the offending line.
    let rendered = err.render(
        "scenario \"bad\" {\n  source { S/1; }\n  target { T/1; }\n  mapping { T(x:cl) <- Missing(x); }\n}\n",
    );
    assert!(rendered.contains("error at 4:"), "got: {rendered}");
    assert!(rendered.contains('^'), "got: {rendered}");
}

#[test]
fn diagnostic_arity_mismatch() {
    let err = parse_err(
        r#"scenario "bad" {
  source { S/2; }
  target { T/1; }
  mapping { T(x:cl) <- S(x); }
}
"#,
    );
    assert!(
        err.msg
            .contains("arity mismatch: `S` is declared with arity 2 but used with 1 arguments"),
        "got: {}",
        err.msg
    );
}

#[test]
fn diagnostic_unsafe_tgd() {
    let err = parse_err(
        r#"scenario "bad" {
  source { S/1; }
  target { T/1; }
  mapping { T(x:cl) <- !S(x); }
}
"#,
    );
    assert!(
        err.msg
            .contains("unsafe tgd: variable `x` is not bound by a positive body atom"),
        "got: {}",
        err.msg
    );
}

#[test]
fn diagnostic_duplicate_annotation() {
    let err = parse_err(
        r#"scenario "bad" {
  source { S/1; }
  target { T/1; }
  mapping { T(x:cl:op) <- S(x); }
}
"#,
    );
    assert!(err.msg.contains("duplicate annotation"), "got: {}", err.msg);
}

// ---------------------------------------------------------------------------
// Generator determinism: same (seed, grade) is byte-identical, also when the
// ambient worker pool is widened (the generator must not depend on the
// thread configuration).
// ---------------------------------------------------------------------------

#[test]
fn generator_is_deterministic_across_thread_widths() {
    let baseline: Vec<String> = Grade::ALL
        .iter()
        .flat_map(|&g| (0..8).map(move |s| gen_text(s, g)))
        .collect();

    // Re-generate: byte-identical.
    let again: Vec<String> = Grade::ALL
        .iter()
        .flat_map(|&g| (0..8).map(move |s| gen_text(s, g)))
        .collect();
    assert_eq!(baseline, again);

    // Widen the ambient pool (the programmatic face of DX_THREADS=4) and
    // re-generate once more; restore the override even on panic.
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            rayon::set_threads(0);
        }
    }
    let _restore = Restore;
    rayon::set_threads(4);
    let wide: Vec<String> = Grade::ALL
        .iter()
        .flat_map(|&g| (0..8).map(move |s| gen_text(s, g)))
        .collect();
    assert_eq!(baseline, wide, "gen output depends on the thread width");

    // The structured form agrees with its own printing under the wide pool.
    let sc = gen(7, Grade::new(3));
    assert_eq!(sc.to_text(), gen_text(7, Grade::new(3)));
}
