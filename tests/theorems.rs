//! Machine checks of the paper's theorems on bounded universes.
//!
//! Infinite quantifications ("for all solutions", "for all instances") are
//! replaced by exhaustive enumeration over small controlled universes or by
//! sampled witnesses whose verification is exact.

use oc_exchange::chase::{canonical_solution, Mapping};
use oc_exchange::core::{certain, compose, compose_alg, non_closure, semantics, skstd};
use oc_exchange::logic::eval::FuncTable;
use oc_exchange::logic::Query;
use oc_exchange::solver::Completeness;
use oc_exchange::workloads::{coloring, tripartite};
use oc_exchange::{FuncSym, Instance, Tuple, Value};

/// Enumerate all targets over one binary relation `rel` with values from
/// `consts`, up to `max_tuples` tuples.
fn enumerate_binary_targets(rel: &str, consts: &[&str], max_tuples: usize) -> Vec<Instance> {
    let mut pairs = Vec::new();
    for a in consts {
        for b in consts {
            pairs.push((*a, *b));
        }
    }
    let mut out = vec![Instance::new()];
    // All subsets of `pairs` of size ≤ max_tuples.
    fn go(
        rel: &str,
        pairs: &[(&str, &str)],
        start: usize,
        left: usize,
        cur: &mut Instance,
        out: &mut Vec<Instance>,
    ) {
        if left == 0 || start == pairs.len() {
            return;
        }
        for i in start..pairs.len() {
            let mut next = cur.clone();
            next.insert_names(rel, &[pairs[i].0, pairs[i].1]);
            out.push(next.clone());
            go(rel, pairs, i + 1, left - 1, &mut next, out);
        }
    }
    let mut cur = Instance::new();
    go(rel, &pairs, 0, max_tuples, &mut cur, &mut out);
    out
}

/// Theorem 1(1,2): the all-closed/all-open annotations recover the CWA/OWA
/// semantics — checked by exhaustive enumeration of targets.
#[test]
fn theorem1_extremes() {
    let m = Mapping::parse("R(x:cl, z:op) <- E(x, y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("E", &["a", "b"]);
    let op = m.all_open();
    for t in enumerate_binary_targets("R", &["a", "u", "w"], 2) {
        // OWA semantics: membership iff (S,T) |= Σ.
        let via_owa = oc_exchange::chase::is_owa_solution(&op, &s, &t);
        let via_repa = semantics::is_member_via_repa(&op, &s, &t);
        assert_eq!(via_owa, via_repa, "Lemma 1 / Theorem 1(2) on {t}");
    }
}

/// Theorem 1(3): α ⪯ α′ implies ⟦S⟧_Σα ⊆ ⟦S⟧_Σα′, exhaustively over a small
/// universe, for a chain of 4 annotations.
#[test]
fn theorem1_annotation_chain() {
    let chain = [
        "R(x:cl, z:cl) <- E(x, y)",
        "R(x:cl, z:op) <- E(x, y)",
        "R(x:op, z:op) <- E(x, y)",
    ];
    let maps: Vec<Mapping> = chain.iter().map(|r| Mapping::parse(r).unwrap()).collect();
    for w in maps.windows(2) {
        assert_eq!(w[0].annotation_le(&w[1]), Some(true));
    }
    let mut s = Instance::new();
    s.insert_names("E", &["a", "b"]);
    for t in enumerate_binary_targets("R", &["a", "u", "w"], 2) {
        let mut prev: Option<bool> = None;
        for m in &maps {
            let cur = semantics::is_member(m, &s, &t);
            if let Some(p) = prev {
                assert!(!p || cur, "semantics must grow along ⪯ on {t}");
            }
            prev = Some(cur);
        }
    }
}

/// Theorem 2: tripartite matching ⇔ membership; and the all-open membership
/// is PTIME-checkable, agreeing with the general path.
#[test]
fn theorem2_reduction_and_paths() {
    for seed in 0..6 {
        let inst = tripartite::TripartiteInstance::random(3, 6, seed);
        assert_eq!(
            inst.solve_brute_force().is_some(),
            tripartite::solve_via_membership(&inst),
            "seed {seed}"
        );
    }
}

/// Corollary 1: all-closed mappings keep membership NP-hard — the all-closed
/// variant of the tripartite reduction still decides matching for planted
/// instances.
#[test]
fn corollary1_all_closed_variant() {
    // NOTE: with all-closed annotations the C-relation copies must match
    // exactly, so membership becomes "T = CSol image" — the reduction's
    // planted instances still decide correctly because target C equals C₀.
    let inst = tripartite::TripartiteInstance::planted(3, 1, 11);
    let m = tripartite::mapping().all_closed();
    let s = tripartite::source(&inst);
    let t = tripartite::target(&inst);
    // All-closed: the n chosen triples must merge into existing C₀ tuples
    // AND cover B/G/H; a planted instance admits this.
    assert!(semantics::is_member(&m, &s, &t));
}

/// Proposition 2 / Proposition 3: for positive queries the certain answers
/// agree across all annotations, and equal naive evaluation on CSol.
#[test]
fn proposition3_positive_queries() {
    let variants = [
        "Sub(x:cl, z:cl) <- P(x, y)",
        "Sub(x:cl, z:op) <- P(x, y)",
        "Sub(x:op, z:op) <- P(x, y)",
    ];
    let q = Query::parse(&["x"], "exists z. Sub(x, z)").unwrap();
    let mut s = Instance::new();
    s.insert_names("P", &["p1", "a"]);
    s.insert_names("P", &["p2", "b"]);
    let mut answers = Vec::new();
    for rules in variants {
        let m = Mapping::parse(rules).unwrap();
        let (rel, comp) = certain::certain_answers(&m, &s, &q, None);
        assert_eq!(comp, Completeness::Exact);
        // Naive evaluation on the canonical solution gives the same set.
        let csol = canonical_solution(&m, &s).rel_part();
        assert_eq!(rel, q.naive_certain_answers(&csol), "Prop 3 for {rules}");
        answers.push(rel);
    }
    assert!(answers.windows(2).all(|w| w[0] == w[1]), "Prop 2 agreement");
}

/// Theorem 3(1): the all-closed decision is exact, and witnesses are
/// verifiable counterexamples.
#[test]
fn theorem3_closed_world_counterexamples_verify() {
    let m = Mapping::parse("R(x:cl, z:cl) <- E(x, y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("E", &["a", "1"]);
    s.insert_names("E", &["b", "2"]);
    // "the two R-values differ" — not certain: a valuation may merge them.
    let q = Query::boolean(
        oc_exchange::logic::parse_formula("forall y1 y2. (R('a', y1) & R('b', y2) -> y1 != y2)")
            .unwrap(),
    );
    let empty = Tuple::new(Vec::<Value>::new());
    let out = certain::certain_contains(&m, &s, &q, &empty, None);
    assert!(!out.certain);
    assert_eq!(out.completeness, Completeness::Exact);
    let cex = out.counterexample.unwrap();
    // The counterexample is a genuine member and falsifies the query.
    let csol = canonical_solution(&m, &s);
    assert!(oc_exchange::solver::repa::rep_a_membership(&csol.instance, &cex).is_some());
    assert!(!q.holds_boolean(&cex));
}

/// Theorem 3(2) flavor: with #op = 1, certain answers of FO queries can
/// differ from the CWA answers (replication refutes universal facts).
#[test]
fn theorem3_open_vs_closed_difference() {
    let open = Mapping::parse("R(x:cl, z:op) <- E(x)").unwrap();
    let closed = open.all_closed();
    let mut s = Instance::new();
    s.insert_names("E", &["a"]);
    // "R is a function of its first attribute".
    let q = Query::boolean(
        oc_exchange::logic::parse_formula("forall x y1 y2. (R(x, y1) & R(x, y2) -> y1 = y2)")
            .unwrap(),
    );
    let empty = Tuple::new(Vec::<Value>::new());
    assert!(certain::certain_contains(&closed, &s, &q, &empty, None).certain);
    assert!(!certain::certain_contains(&open, &s, &q, &empty, None).certain);
}

/// Proposition 5: ∀*∃* queries — exact for every annotation, including open
/// ones.
#[test]
fn proposition5_forall_exists_exact() {
    let m = Mapping::parse("R(x:cl, z:op) <- E(x, y); U(x:op) <- E(x, y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("E", &["a", "b"]);
    // ∀x∃z: everything in U has an R-edge — certain (U's x comes from E).
    let q = Query::boolean(
        oc_exchange::logic::parse_formula("forall x. (U(x) -> exists z. R(x, z))").unwrap(),
    );
    let empty = Tuple::new(Vec::<Value>::new());
    let out = certain::certain_contains(&m, &s, &q, &empty, None);
    assert_eq!(out.regime, certain::Regime::UniversalExistential);
    // U is open in its only position: arbitrary elements may appear in U,
    // without R-tuples — NOT certain.
    assert!(!out.certain);
    // The closed version: U = {a} exactly, R(a, z) exists — certain.
    let m2 = Mapping::parse("R(x:cl, z:op) <- E(x, y); U(x:cl) <- E(x, y)").unwrap();
    let out2 = certain::certain_contains(&m2, &s, &q, &empty, None);
    assert!(out2.certain);
    assert_eq!(out2.completeness, Completeness::Exact);
}

/// Theorem 4 + Table 1: the 3-colorability reduction decides correctly, and
/// the all-closed Σ side reports exact completeness.
#[test]
fn theorem4_coloring_reduction() {
    assert!(coloring::solve_via_composition(&coloring::Graph::cycle(4)));
    assert!(!coloring::solve_via_composition(
        &coloring::Graph::complete(4)
    ));
    let out = compose::comp_membership(
        &coloring::sigma(),
        &coloring::delta(),
        &coloring::source(&coloring::Graph::complete(4)),
        &coloring::target(),
        None,
    );
    assert_eq!(out.completeness, Completeness::Exact);
    assert_eq!(out.path, compose::CompPath::ClosedIntermediate);
}

/// Lemma 3 / Corollary 4: for monotone Δ with open annotation, Σ's
/// annotation does not matter.
#[test]
fn lemma3_sigma_annotation_irrelevant() {
    let delta = Mapping::parse("F(x:op, y:op) <- M(x, y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("E", &["a", "b"]);
    let mut w = Instance::new();
    w.insert_names("F", &["a", "c"]);
    for sigma_rules in [
        "M(x:cl, z:cl) <- E(x, y)",
        "M(x:cl, z:op) <- E(x, y)",
        "M(x:op, z:op) <- E(x, y)",
    ] {
        let sigma = Mapping::parse(sigma_rules).unwrap();
        let out = compose::comp_membership(&sigma, &delta, &s, &w, None);
        assert!(
            out.member,
            "Σα ∘ Δop is annotation-independent ({sigma_rules})"
        );
        assert_eq!(out.path, compose::CompPath::MonotoneOpen);
    }
}

/// Proposition 6 / Claim 6: the non-closure gadget behaves exactly as the
/// paper states.
#[test]
fn proposition6_gadget() {
    for n in 1..=4 {
        let (rect, dist) = non_closure::demonstrate(n);
        assert!(rect, "rectangles are members (n={n})");
        if n >= 2 {
            assert!(!dist, "distinct columns are not (n={n})");
        }
    }
}

/// Lemma 4: STD → SkSTD translation preserves membership on sampled
/// targets for a mixed-annotation mapping.
#[test]
fn lemma4_translation_equivalence() {
    let plain = Mapping::parse("R(x:cl, z:op) <- E(x, y); U(w:cl) <- V(w)").unwrap();
    let sk = skstd::SkMapping::from_mapping(&plain);
    let mut s = Instance::new();
    s.insert_names("E", &["a", "b"]);
    s.insert_names("V", &["u1"]);
    for t in [
        {
            let mut t = Instance::new();
            t.insert_names("R", &["a", "k"]);
            t.insert_names("U", &["u1"]);
            t
        },
        {
            let mut t = Instance::new();
            t.insert_names("R", &["a", "k1"]);
            t.insert_names("R", &["a", "k2"]);
            t.insert_names("U", &["u1"]);
            t
        },
        {
            let mut t = Instance::new();
            t.insert_names("R", &["a", "k"]);
            t // missing U
        },
        {
            let mut t = Instance::new();
            t.insert_names("R", &["wrong", "k"]);
            t.insert_names("U", &["u1"]);
            t
        },
    ] {
        assert_eq!(
            semantics::is_member(&plain, &s, &t),
            sk.membership(&s, &t).is_some(),
            "Lemma 4 disagreement on {t}"
        );
    }
}

/// Theorem 5 / Claim 7(b): the composed mapping's solutions factor through
/// the intermediate schema, across a grid of function tables.
#[test]
fn theorem5_claim7_table_grid() {
    let sigma = skstd::SkMapping::parse("M(x:cl, f(x):cl) <- E(x)").unwrap();
    let delta = skstd::SkMapping::parse("F(x:cl, g(y):cl) <- M(x, y)").unwrap();
    let comp = compose_alg::compose_skstd(&sigma, &delta).unwrap();
    assert_eq!(
        compose_alg::closure_class(&sigma, &delta),
        Some(compose_alg::ClosureClass::AllClosedFo)
    );

    let mut s = Instance::new();
    s.insert_names("E", &["a"]);
    s.insert_names("E", &["b"]);

    let fsym = FuncSym::new("f");
    let gsym = FuncSym::new("g");
    let vals = ["m1", "m2"];
    let outs = ["w1", "w2"];
    for fa in vals {
        for fb in vals {
            let mut ft = FuncTable::new();
            ft.define(fsym, vec![Value::c("a")], Value::c(fa));
            ft.define(fsym, vec![Value::c("b")], Value::c(fb));
            let j = sigma.sol(&s, &ft).rel_part();
            for g1 in outs {
                for g2 in outs {
                    let mut gt = FuncTable::new();
                    gt.define(gsym, vec![Value::c(fa)], Value::c(g1));
                    gt.define(gsym, vec![Value::c(fb)], Value::c(g2));
                    let expected = delta.sol(&j, &gt);
                    // H′ = F′ ∪ G′ modulo renames.
                    let mut h = FuncTable::new();
                    for ((sym, args), val) in ft.iter().map(|(k, v)| (k.clone(), *v)) {
                        let renamed = *comp.sigma_func_renames.get(&sym).unwrap_or(&sym);
                        h.define(renamed, args, val);
                    }
                    for ((sym, args), val) in gt.iter().map(|(k, v)| (k.clone(), *v)) {
                        h.define(sym, args, val);
                    }
                    let got = comp.mapping.sol(&s, &h);
                    assert_eq!(got, expected, "Claim 7(b) fa={fa} fb={fb} g=({g1},{g2})");
                }
            }
        }
    }
}

/// Theorem 5(1): CQ all-open composition — the composed mapping agrees with
/// the two-hop semantic composition on sampled targets.
#[test]
fn theorem5_cq_semantic_agreement() {
    let sigma = skstd::SkMapping::parse("M(x:op, f(x):op) <- E(x)").unwrap();
    let delta = skstd::SkMapping::parse("F(x:op, g(y):op) <- M(x, y)").unwrap();
    let comp = compose_alg::compose_skstd(&sigma, &delta).unwrap();
    assert!(comp.cq_normalized);

    let mut s = Instance::new();
    s.insert_names("E", &["a"]);

    // Direction check on a grid of tables: member via Δ∘Σ iff member via Γ
    // under the corresponding H′.
    let fsym = FuncSym::new("f");
    let gsym = FuncSym::new("g");
    for fv in ["m1", "m2"] {
        for gv in ["w1", "w2"] {
            let mut ft = FuncTable::new();
            ft.define(fsym, vec![Value::c("a")], Value::c(fv));
            let j = sigma.sol(&s, &ft).rel_part();
            let mut gt = FuncTable::new();
            gt.define(gsym, vec![Value::c(fv)], Value::c(gv));
            let mut h = FuncTable::new();
            h.define(fsym, vec![Value::c("a")], Value::c(fv));
            h.define(gsym, vec![Value::c(fv)], Value::c(gv));
            // All-open: T member iff T ⊇ Sol; test the minimal member and a
            // non-member.
            let sol_two_hop = delta.sol(&j, &gt).rel_part();
            assert!(
                comp.mapping.in_semantics_with(&s, &sol_two_hop, &h),
                "minimal two-hop solution must be a Γ-member (f={fv}, g={gv})"
            );
            let empty = Instance::new();
            assert!(
                !comp.mapping.in_semantics_with(&s, &empty, &h),
                "the empty target is not a member"
            );
        }
    }
}

/// Proposition 7: the all-open SkSTD semantics coincides with the
/// second-order reading, on a sampled grid of tables and targets.
#[test]
fn proposition7_second_order_semantics() {
    let m = skstd::SkMapping::parse("T(f(x):op, x:op) <- E(x)").unwrap();
    let mut s = Instance::new();
    s.insert_names("E", &["a"]);
    let fsym = FuncSym::new("f");
    for fv in ["v1", "v2"] {
        let mut ft = FuncTable::new();
        ft.define(fsym, vec![Value::c("a")], Value::c(fv));
        for t in [
            {
                let mut t = Instance::new();
                t.insert_names("T", &[fv, "a"]);
                t
            },
            {
                let mut t = Instance::new();
                t.insert_names("T", &[fv, "a"]);
                t.insert_names("T", &["junk", "junk"]);
                t
            },
            Instance::new(),
        ] {
            assert_eq!(
                m.in_semantics_with(&s, &t, &ft),
                skstd::satisfies_second_order_with(&m, &s, &t, &ft),
                "Prop 7 disagreement on {t} with f(a)={fv}"
            );
        }
    }
}
