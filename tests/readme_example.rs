//! The README "Streaming updates" example, verbatim — keeps the snippet
//! in the README honest (the same code also lives as the
//! `IncrementalExchange` doctest in `dx-engine`, with crate-local paths).

#[test]
fn readme_streaming_example_runs() {
    use oc_exchange::chase::Mapping;
    use oc_exchange::engine::IncrementalExchange;
    use oc_exchange::relation::{Instance, Update};

    let mapping = Mapping::parse("R(x:cl, z:op) <- E(x, y)").unwrap();
    let mut source = Instance::new();
    source.insert_names("E", &["a", "b"]);

    let mut inc = IncrementalExchange::new(mapping, Vec::new(), source);
    assert_eq!(inc.csol().tuple_count(), 1);

    let report = inc.update(
        &Update::new()
            .insert_names("E", &["b", "c"])
            .retract_names("E", &["a", "b"]),
    );
    assert_eq!(report.witnesses_born, 1);
    assert_eq!(report.witnesses_died, 1);
    assert_eq!(report.nulls_collected, 1);
    assert_eq!(inc.csol().tuple_count(), 1);
}
