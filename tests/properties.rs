//! Property-based tests (proptest) over randomized mappings, instances and
//! formulas.

use oc_exchange::chase::{canonical_solution, Mapping};
use oc_exchange::core::{certain, semantics};
use oc_exchange::logic::{parse_formula, Query};
use oc_exchange::solver::repa::rep_a_membership;
use oc_exchange::workloads::random_gen;
use oc_exchange::{Instance, Schema, Tuple, Value, Var};
use proptest::prelude::*;

fn schema_ab() -> Schema {
    Schema::from_pairs([("A", 2), ("B", 1)])
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, failure_persistence: None, ..ProptestConfig::default()
    })]

    /// Sampled members of ⟦S⟧_Σα really are members (soundness of the
    /// sampler AND of the membership decision).
    #[test]
    fn sampled_members_verify(seed in 0u64..500) {
        let mut rng = random_gen::rng(seed);
        let m = random_gen::random_mapping(&schema_ab(), 1, 0.5, &mut rng);
        let s = random_gen::random_instance(&schema_ab(), 3, 3, &mut rng);
        let t = random_gen::sample_member(&m, &s, 4, 2, &mut rng);
        prop_assert!(semantics::is_member(&m, &s, &t));
    }

    /// The canonical solution's relational part under ANY total valuation is
    /// a member (Theorem 1(4), one direction).
    #[test]
    fn valuation_images_are_members(seed in 0u64..500) {
        let mut rng = random_gen::rng(seed);
        let m = random_gen::random_mapping(&schema_ab(), 1, 1.0, &mut rng);
        let s = random_gen::random_instance(&schema_ab(), 3, 3, &mut rng);
        let csol = canonical_solution(&m, &s);
        let mut v = oc_exchange::Valuation::new();
        for n in csol.instance.nulls() {
            use rand::Rng;
            v.set(n, oc_exchange::ConstId::new(&format!("k{}", rng.gen_range(0..4))));
        }
        let t = csol.instance.apply(&v).rel_part();
        prop_assert!(semantics::is_member(&m, &s, &t));
    }

    /// Annotation monotonicity (Theorem 1(3)) on sampled targets: a member
    /// under a random annotation stays a member when everything opens up.
    #[test]
    fn opening_annotations_grows_semantics(seed in 0u64..500) {
        let mut rng = random_gen::rng(seed);
        let m = random_gen::random_mapping(&schema_ab(), 1, 0.7, &mut rng);
        let s = random_gen::random_instance(&schema_ab(), 2, 3, &mut rng);
        let t = random_gen::sample_member(&m, &s, 4, 1, &mut rng);
        prop_assert!(semantics::is_member(&m, &s, &t));
        prop_assert!(
            semantics::is_member(&m.all_open(), &s, &t),
            "all-open semantics must contain every Σα member"
        );
    }

    /// CWA members are members under every annotation of the same rules.
    #[test]
    fn cwa_members_are_universal(seed in 0u64..500) {
        let mut rng = random_gen::rng(seed);
        let base = random_gen::random_mapping(&schema_ab(), 1, 0.0, &mut rng);
        let s = random_gen::random_instance(&schema_ab(), 2, 3, &mut rng);
        let cl = base.all_closed();
        let t = random_gen::sample_member(&cl, &s, 4, 0, &mut rng);
        prop_assert!(semantics::is_member(&cl, &s, &t));
        let mid = random_gen::randomly_annotated(&base, 0.5, &mut rng);
        prop_assert!(semantics::is_member(&mid, &s, &t));
    }

    /// Rep_A membership agrees with the definitional check on the witness:
    /// when a valuation is returned, it satisfies both Rep_A conditions.
    #[test]
    fn repa_witnesses_satisfy_both_conditions(seed in 0u64..500) {
        let mut rng = random_gen::rng(seed);
        let m = random_gen::random_mapping(&schema_ab(), 1, 0.5, &mut rng);
        let s = random_gen::random_instance(&schema_ab(), 3, 3, &mut rng);
        let t = random_gen::sample_member(&m, &s, 4, 2, &mut rng);
        let csol = canonical_solution(&m, &s);
        let v = rep_a_membership(&csol.instance, &t);
        prop_assert!(v.is_some());
        let v = v.unwrap();
        let valued = csol.instance.apply(&v);
        prop_assert!(valued.rel_part().is_subinstance_of(&t));
        prop_assert!(valued.covers_instance(&t));
    }

    /// Positive queries: certain answers are monotone in the source
    /// (adding source tuples can only add certain answers).
    #[test]
    fn positive_certain_answers_monotone_in_source(seed in 0u64..500) {
        let mut rng = random_gen::rng(seed);
        let m = Mapping::parse("T1(x:cl, z:op) <- A(x, y)").unwrap();
        let q = Query::parse(&["x"], "exists z. T1(x, z)").unwrap();
        let schema = Schema::from_pairs([("A", 2)]);
        let small = random_gen::random_instance(&schema, 2, 3, &mut rng);
        let extra = random_gen::random_instance(&schema, 2, 3, &mut rng);
        let big = small.union(&extra);
        let (ans_small, _) = certain::certain_answers(&m, &small, &q, None);
        let (ans_big, _) = certain::certain_answers(&m, &big, &q, None);
        prop_assert!(ans_small.is_subset(&ans_big));
    }

    /// Formula display/parse round trip on randomly assembled formulas.
    #[test]
    fn formula_roundtrip(seed in 0u64..2000) {
        let mut rng = random_gen::rng(seed);
        let f = random_formula(&mut rng, 3);
        let printed = f.to_string();
        let reparsed = parse_formula(&printed);
        prop_assert!(reparsed.is_ok(), "failed to reparse {printed}");
        prop_assert_eq!(reparsed.unwrap(), f);
    }

    /// Naive certain answers never contain nulls and are a subset of the
    /// naive answers.
    #[test]
    fn naive_certain_subset(seed in 0u64..500) {
        let mut rng = random_gen::rng(seed);
        let m = random_gen::random_mapping(&schema_ab(), 1, 0.5, &mut rng);
        let s = random_gen::random_instance(&schema_ab(), 3, 3, &mut rng);
        let csol = canonical_solution(&m, &s).rel_part();
        // Query over whichever target relation exists.
        let first = csol.relations().next().map(|(rel, r)| (rel, r.arity()));
        if let Some((rel, arity)) = first {
            let vars: Vec<Var> = (0..arity).map(|i| Var::indexed("q", i)).collect();
            let q = Query::new(
                vars.clone(),
                oc_exchange::logic::Formula::Atom(
                    rel,
                    vars.iter().map(|&v| oc_exchange::logic::Term::Var(v)).collect(),
                ),
            );
            let certain = q.naive_certain_answers(&csol);
            let all = q.answers(&csol);
            prop_assert!(certain.is_subset(&all));
            prop_assert!(certain.iter().all(|t| t.is_ground()));
        }
    }
}

/// A small random formula generator for round-trip tests (kept inside the
/// test crate; generator-grade randomness only).
fn random_formula(rng: &mut rand::rngs::StdRng, depth: usize) -> oc_exchange::logic::Formula {
    use oc_exchange::logic::{Formula, Term};
    use rand::Rng;
    let vars = ["x", "y", "z"];
    let rels = ["Ra", "Rb"];
    if depth == 0 || rng.gen_bool(0.4) {
        // Leaf: atom or (in)equality.
        return match rng.gen_range(0..3) {
            0 => Formula::atom(
                rels[rng.gen_range(0..rels.len())],
                vec![
                    Term::var(vars[rng.gen_range(0..vars.len())]),
                    Term::var(vars[rng.gen_range(0..vars.len())]),
                ],
            ),
            1 => Formula::eq(
                Term::var(vars[rng.gen_range(0..vars.len())]),
                Term::cst("c"),
            ),
            _ => Formula::neq(
                Term::var(vars[rng.gen_range(0..vars.len())]),
                Term::var(vars[rng.gen_range(0..vars.len())]),
            ),
        };
    }
    match rng.gen_range(0..5) {
        0 => oc_exchange::logic::Formula::and([
            random_formula(rng, depth - 1),
            random_formula(rng, depth - 1),
        ]),
        1 => oc_exchange::logic::Formula::or([
            random_formula(rng, depth - 1),
            random_formula(rng, depth - 1),
        ]),
        2 => oc_exchange::logic::Formula::not(random_formula(rng, depth - 1)),
        3 => oc_exchange::logic::Formula::exists(
            vec![Var::new(vars[rng.gen_range(0..vars.len())])],
            random_formula(rng, depth - 1),
        ),
        _ => oc_exchange::logic::Formula::forall(
            vec![Var::new(vars[rng.gen_range(0..vars.len())])],
            random_formula(rng, depth - 1),
        ),
    }
}

/// Deterministic cross-check: rep_a_membership and the enumerator agree on
/// a fixed family (every enumerated instance passes membership).
#[test]
fn enumerator_and_membership_agree() {
    use oc_exchange::solver::{enumerate_rep_a, SearchBudget};
    let m = Mapping::parse("R(x:cl, z:op) <- E(x)").unwrap();
    let mut s = Instance::new();
    s.insert_names("E", &["a"]);
    let csol = canonical_solution(&m, &s);
    let mut all_ok = true;
    let mut count = 0u32;
    enumerate_rep_a(
        &csol.instance,
        &Default::default(),
        &SearchBudget::bounded(1, 2),
        &mut |i| {
            count += 1;
            if rep_a_membership(&csol.instance, i).is_none() {
                all_ok = false;
            }
            false
        },
    );
    assert!(count > 5, "enumeration should produce several instances");
    assert!(all_ok, "every enumerated instance must pass membership");
}

/// Boolean certain answers produce verifiable counterexamples whenever they
/// answer `false` in an exact regime.
#[test]
fn counterexamples_always_verify() {
    let m = Mapping::parse("R(x:cl, z:cl) <- E(x, y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("E", &["a", "b"]);
    s.insert_names("E", &["c", "d"]);
    let queries = [
        "forall y1 y2. (R('a', y1) & R('c', y2) -> y1 != y2)",
        "exists y. R('a', y) & R('c', y)",
        "forall x y. (R(x, y) -> x = 'a')",
    ];
    for src in queries {
        let q = Query::boolean(parse_formula(src).unwrap());
        let out = certain::certain_contains(&m, &s, &q, &Tuple::new(Vec::<Value>::new()), None);
        if !out.certain {
            match out.counterexample {
                Some(cex) => {
                    assert!(!q.holds_boolean(&cex), "counterexample must falsify {src}");
                    let csol = canonical_solution(&m, &s);
                    assert!(
                        rep_a_membership(&csol.instance, &cex).is_some(),
                        "counterexample must be a Rep_A member for {src}"
                    );
                }
                // The naive path (positive queries) decides without
                // materializing a counterexample.
                None => assert_eq!(out.regime, certain::Regime::NaivePositive),
            }
        }
    }
}

/// Annotation statistics drive regime selection as documented.
#[test]
fn regime_selection_matrix() {
    let cases = [
        (
            "R(x:cl, z:cl) <- E(x)",
            "exists z. R('a', z)",
            certain::Regime::NaivePositive,
        ),
        (
            "R(x:cl, z:cl) <- E(x)",
            "exists z w. R('a', z) & R('a', w) & z != w",
            certain::Regime::Monotone,
        ),
        (
            "R(x:cl, z:op) <- E(x)",
            "forall x y. (R(x, y) -> exists w. R(y, w))",
            certain::Regime::UniversalExistential,
        ),
        (
            "R(x:cl, z:cl) <- E(x)",
            "exists x. forall y. (R(x, y) | !R(x, y)) & !exists w. R(w, x)",
            certain::Regime::ClosedWorld,
        ),
        (
            "R(x:cl, z:op) <- E(x)",
            "exists x. (forall y. !R(y, x)) & exists u. R(x, u)",
            certain::Regime::OpenBounded,
        ),
    ];
    let mut s = Instance::new();
    s.insert_names("E", &["a"]);
    for (rules, query, regime) in cases {
        let m = Mapping::parse(rules).unwrap();
        let q = Query::boolean(parse_formula(query).unwrap());
        let out = certain::certain_contains(&m, &s, &q, &Tuple::new(Vec::<Value>::new()), None);
        assert_eq!(out.regime, regime, "rules={rules} query={query}");
    }
}
