//! Differential testing of the compiled query-evaluation subsystem.
//!
//! `dx_logic::eval` (the tree-walking active-domain evaluator) is the
//! reference oracle; `dx-query` (safe-range lowering to relational-algebra
//! plans, greedy index joins) is the fast implementation. The harness
//! asserts **exact result equality** — not mere equivalence — on:
//!
//! * randomized safe-range formulas (conjunctions, constants, repeated
//!   variables, equalities/inequalities, safe negation, existentials,
//!   same-schema disjunctions) over randomized instances *with nulls*
//!   (the naive semantics treats them as atomic values);
//! * the workload queries of the bench suite, incl. certain-answer
//!   null-discard post-filtering;
//! * canonical solutions: `canonical_solution_via(PlannedBodyEval)` must
//!   reproduce the reference construction *identically* (instances, null
//!   justifications, witness tables) on random annotated mappings;
//! * the conditional execution mode: plan-backed `□Q`/`◇Q` against the
//!   `RaExpr` interpreter route and brute-force `Rep` enumeration;
//! * the end-to-end `_via` pipelines (`certain_contains_via`,
//!   `comp_membership_via`, `in_semantics_via`) across chase strategies.

use oc_exchange::chase::{
    canonical_solution, canonical_solution_via, Mapping, NaiveBodyEval, NaiveChase,
};
use oc_exchange::core as dxcore;
use oc_exchange::ctables::{certain_answers_ra, possible_answers_ra, CInstance, RaExpr, RaPred};
use oc_exchange::engine::IndexedChase;
use oc_exchange::logic::{Formula, Query, Term};
use oc_exchange::query::{CompiledQuery, CompiledRa, PlannedBodyEval, QueryEval};
use oc_exchange::workloads::random_gen;
use oc_exchange::{Instance, RelSym, Schema, Tuple, Value, Var};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;

// ---------------------------------------------------------------- generators

/// A random instance over the differential schema, with nulls mixed in
/// (nulls are atomic values under the naive semantics — the oracle and the
/// plans must agree on them exactly).
fn random_instance_with_nulls(rng: &mut StdRng) -> Instance {
    let mut inst = Instance::new();
    let n_r = rng.gen_range(0..12);
    let n_s = rng.gen_range(0..8);
    let n_t = rng.gen_range(0..10);
    let value = |rng: &mut StdRng| -> Value {
        if rng.gen_bool(0.2) {
            Value::null(rng.gen_range(0..4) as u32)
        } else {
            Value::Const(oc_exchange::ConstId::new(&format!(
                "c{}",
                rng.gen_range(0..6)
            )))
        }
    };
    for _ in 0..n_r {
        let t = Tuple::new(vec![value(rng), value(rng)]);
        inst.insert(RelSym::new("QdR"), t);
    }
    for _ in 0..n_s {
        inst.insert(RelSym::new("QdS"), Tuple::new(vec![value(rng)]));
    }
    for _ in 0..n_t {
        let t = Tuple::new(vec![value(rng), value(rng)]);
        inst.insert(RelSym::new("QdT"), t);
    }
    inst
}

fn var(i: usize) -> Var {
    Var::new(&format!("qv{i}"))
}

/// A random *safe-range* formula: a conjunctive core of 1–3 atoms over a
/// small variable pool (with occasional constants and repeated variables),
/// plus optional equality binds, inequality filters, safe negations
/// (negated atoms and negated existentials over covered variables), and an
/// optional same-schema disjunction. By construction every formula lowers
/// to a plan — asserted by the harness, so generator drift is caught.
fn random_safe_formula(rng: &mut StdRng) -> Formula {
    let rels = [("QdR", 2usize), ("QdS", 1), ("QdT", 2)];
    let pool = 4usize;
    let term = |rng: &mut StdRng| -> Term {
        if rng.gen_bool(0.2) {
            Term::cst(&format!("c{}", rng.gen_range(0..6)))
        } else {
            Term::Var(var(rng.gen_range(0..pool)))
        }
    };
    let atom = |rng: &mut StdRng| -> Formula {
        let (name, arity) = rels[rng.gen_range(0..rels.len())];
        Formula::atom(name, (0..arity).map(|_| term(rng)).collect())
    };
    let mut conjuncts: Vec<Formula> = Vec::new();
    let n_atoms = rng.gen_range(1..4);
    for _ in 0..n_atoms {
        conjuncts.push(atom(rng));
    }
    let covered: BTreeSet<Var> = conjuncts.iter().flat_map(|f| f.free_vars()).collect();
    let covered: Vec<Var> = covered.into_iter().collect();
    // Optional equality bind / alias / inequality over covered variables.
    if !covered.is_empty() && rng.gen_bool(0.4) {
        let v = covered[rng.gen_range(0..covered.len())];
        match rng.gen_range(0..3) {
            0 => conjuncts.push(Formula::eq(
                Term::Var(v),
                Term::cst(&format!("c{}", rng.gen_range(0..6))),
            )),
            1 => {
                // Alias a fresh variable to a covered one.
                conjuncts.push(Formula::eq(Term::Var(Var::new("qalias")), Term::Var(v)));
            }
            _ => {
                let w = covered[rng.gen_range(0..covered.len())];
                conjuncts.push(Formula::neq(Term::Var(v), Term::Var(w)));
            }
        }
    }
    // Optional safe negation.
    if !covered.is_empty() && rng.gen_bool(0.5) {
        let v = covered[rng.gen_range(0..covered.len())];
        if rng.gen_bool(0.5) {
            conjuncts.push(Formula::not(Formula::atom("QdS", vec![Term::Var(v)])));
        } else {
            conjuncts.push(Formula::not(Formula::exists(
                vec![Var::new("qneg")],
                Formula::atom("QdT", vec![Term::Var(v), Term::var("qneg")]),
            )));
        }
    }
    // Optional *correlated* negation (PR 5's seeded anti-join fragment): the
    // negated existential constrains its local witness against an
    // outer-bound variable — an (in)equality filter, an optional extra
    // nested negation, and an optional equality against a constant.
    if !covered.is_empty() && rng.gen_bool(0.5) {
        let v = covered[rng.gen_range(0..covered.len())];
        let w = covered[rng.gen_range(0..covered.len())];
        let witness = Var::new("qcorr");
        let mut body = vec![Formula::atom("QdT", vec![Term::Var(v), Term::Var(witness)])];
        body.push(if rng.gen_bool(0.5) {
            Formula::neq(Term::Var(witness), Term::Var(w))
        } else {
            Formula::eq(Term::Var(witness), Term::Var(w))
        });
        if rng.gen_bool(0.3) {
            body.push(Formula::not(Formula::atom("QdS", vec![Term::Var(witness)])));
        }
        if rng.gen_bool(0.3) {
            // A doubly-nested correlated scan: the outer variable occurs
            // inside the inner negation's atom.
            body.push(Formula::not(Formula::atom(
                "QdR",
                vec![Term::Var(w), Term::Var(witness)],
            )));
        }
        conjuncts.push(Formula::not(Formula::exists(
            vec![witness],
            Formula::and(body),
        )));
    }
    let core = Formula::and(conjuncts);
    // Optional disjunction with an identically ranged second branch.
    let with_or = if rng.gen_bool(0.25) {
        let fv: Vec<Var> = core.free_vars().into_iter().collect();
        if fv.len() == 2 {
            Formula::or([
                core.clone(),
                Formula::atom("QdR", fv.iter().map(|&v| Term::Var(v)).collect()),
            ])
        } else {
            core
        }
    } else {
        core
    };
    // Existentially close a random subset of the free variables.
    let fv: Vec<Var> = with_or.free_vars().into_iter().collect();
    let close: Vec<Var> = fv.into_iter().filter(|_| rng.gen_bool(0.4)).collect();
    Formula::exists(close, with_or)
}

// ------------------------------------------------------------- property tests

proptest! {
    #![proptest_config(ProptestConfig { cases: 120, failure_persistence: None, ..ProptestConfig::default() })]

    /// Plan execution ≡ tree-walking evaluation on randomized safe
    /// formulas and instances with nulls: answer sets, certain-answer
    /// null-discard post-filters, and per-tuple membership checks.
    #[test]
    fn compiled_matches_oracle_on_random_safe_formulas(seed in 0u64..120) {
        let mut rng = random_gen::rng(seed);
        let inst = random_instance_with_nulls(&mut rng);
        let f = random_safe_formula(&mut rng);
        let head: Vec<Var> = f.free_vars().into_iter().collect();
        let query = Query::new(head.clone(), f);
        let ev = QueryEval::new(&query);
        prop_assert!(
            ev.is_compiled(),
            "generator must produce safe-range formulas: {}",
            query
        );
        let oracle = query.answers(&inst);
        let compiled = ev.answers(&inst);
        prop_assert_eq!(&oracle, &compiled, "query {}", &query);
        prop_assert_eq!(
            query.naive_certain_answers(&inst),
            ev.naive_certain_answers(&inst),
            "null discard on {}",
            &query
        );
        // Membership: every oracle answer holds; perturbed tuples agree.
        for t in oracle.iter().take(5) {
            prop_assert!(ev.holds_on(&inst, t));
        }
        if !head.is_empty() {
            let probe = Tuple::new(vec![Value::c("zz-missing"); head.len()]);
            prop_assert_eq!(query.holds_on(&inst, &probe), ev.holds_on(&inst, &probe));
            let null_probe = Tuple::new(vec![Value::null(0); head.len()]);
            prop_assert_eq!(
                query.holds_on(&inst, &null_probe),
                ev.holds_on(&inst, &null_probe)
            );
        }
    }

    /// `canonical_solution_via(PlannedBodyEval)` reproduces the reference
    /// construction identically on random annotated mappings — instances,
    /// null justifications and witness tables all equal, so every
    /// downstream pipeline is engine independent.
    #[test]
    fn planned_body_eval_reproduces_canonical_solutions(seed in 0u64..60) {
        let mut rng = random_gen::rng(seed);
        let schema = Schema::from_pairs([("QcA", 2), ("QcB", 1), ("QcC", 3)]);
        let source = random_gen::random_instance(&schema, 6, 5, &mut rng);
        let mapping = random_gen::random_mapping(&schema, 2, 0.5, &mut rng);
        let naive = canonical_solution_via(&NaiveBodyEval, &mapping, &source);
        let planned = canonical_solution_via(&PlannedBodyEval, &mapping, &source);
        prop_assert_eq!(naive.instance, planned.instance);
        prop_assert_eq!(naive.null_origin, planned.null_origin);
        prop_assert_eq!(naive.witnesses, planned.witnesses);
    }

    /// Conditional (c-table) plan execution against the `RaExpr`
    /// interpreter route: identical certain and possible answers on random
    /// naive tables.
    #[test]
    fn conditional_mode_matches_interpreter(seed in 0u64..80) {
        let mut rng = random_gen::rng(seed);
        // Small instances keep condition-validity checks (exponential in
        // nulls) fast.
        let mut inst = Instance::new();
        for _ in 0..rng.gen_range(1..5) {
            let value = |rng: &mut StdRng| -> Value {
                if rng.gen_bool(0.35) {
                    Value::null(rng.gen_range(0..3) as u32)
                } else {
                    Value::Const(oc_exchange::ConstId::new(&format!(
                        "d{}",
                        rng.gen_range(0..3)
                    )))
                }
            };
            let t = Tuple::new(vec![value(&mut rng), value(&mut rng)]);
            inst.insert(RelSym::new("QxR"), t);
        }
        for _ in 0..rng.gen_range(1..4) {
            let v = if rng.gen_bool(0.35) {
                Value::null(rng.gen_range(0..3) as u32)
            } else {
                Value::Const(oc_exchange::ConstId::new(&format!("d{}", rng.gen_range(0..3))))
            };
            inst.insert(RelSym::new("QxS"), Tuple::new(vec![v]));
        }
        let ct = CInstance::from_naive(&inst);
        let queries = [
            RaExpr::rel("QxR").select(RaPred::col_is(0, "d0")).project([1]),
            RaExpr::rel("QxR").project([0]).diff(RaExpr::rel("QxS")),
            RaExpr::rel("QxR").project([1]).intersect(RaExpr::rel("QxS")),
            RaExpr::rel("QxR")
                .product(RaExpr::rel("QxR"))
                .select(RaPred::cols_eq(1, 2))
                .project([0, 3]),
            RaExpr::rel("QxR")
                .project([0])
                .union(RaExpr::rel("QxS"))
                .diff(RaExpr::rel("QxR").project([1])),
            RaExpr::rel("QxR").select(RaPred::cols_neq(0, 1)).project([0, 0]),
        ];
        let arity = |r: RelSym| inst.relation(r).map(|rel| rel.arity());
        for q in &queries {
            let compiled = CompiledRa::compile(q, &arity).expect("battery compiles");
            prop_assert_eq!(
                compiled.certain_answers(&ct),
                certain_answers_ra(q, &ct),
                "certain answers on {:?}",
                q
            );
            prop_assert_eq!(
                compiled.possible_answers(&ct),
                possible_answers_ra(q, &ct),
                "possible answers on {:?}",
                q
            );
        }
    }
}

// ------------------------------------------------------------ targeted tests

/// The FO conditional route against brute-force `Rep` enumeration: for a
/// safe-range query with negation, `certain_answers_conditional` must be
/// exactly the intersection of the ground answers over all `Rep` members.
#[test]
fn fo_conditional_certain_matches_brute_force() {
    for seed in 0..20u64 {
        let mut rng = random_gen::rng(seed);
        let mut inst = Instance::new();
        for _ in 0..rng.gen_range(1..4) {
            let a = if rng.gen_bool(0.4) {
                Value::null(rng.gen_range(0..2) as u32)
            } else {
                Value::c(&format!("e{}", rng.gen_range(0..3)))
            };
            let b = if rng.gen_bool(0.4) {
                Value::null(rng.gen_range(0..2) as u32)
            } else {
                Value::c(&format!("e{}", rng.gen_range(0..3)))
            };
            inst.insert(RelSym::new("QfR"), Tuple::new(vec![a, b]));
            inst.insert(RelSym::new("QfS"), Tuple::new(vec![b]));
        }
        let ct = CInstance::from_naive(&inst);
        let q = Query::parse(&["x"], "(exists y. QfR(x, y)) & !QfS(x)").unwrap();
        let compiled = CompiledQuery::compile(&q).expect("safe-range");
        let fast = compiled.certain_answers_conditional(&ct);
        let mut brute: Option<BTreeSet<Tuple>> = None;
        for (ground, _) in ct.rep_members(&BTreeSet::new()) {
            let ans: BTreeSet<Tuple> = q.answers(&ground).iter().cloned().collect();
            brute = Some(match brute {
                None => ans,
                Some(prev) => prev.intersection(&ans).cloned().collect(),
            });
        }
        let brute = brute.unwrap();
        let fast_set: BTreeSet<Tuple> = fast.iter().cloned().collect();
        assert_eq!(fast_set, brute, "seed {seed}");
    }
}

/// The `_via` pipelines are strategy independent: certain answers,
/// composition and membership verdicts agree between `NaiveChase` and
/// `IndexedChase` (whose body evaluation runs on compiled plans).
#[test]
fn via_pipelines_agree_across_strategies() {
    let mapping = Mapping::parse(
        "QvSub(x:cl, z:op) <- QvP(x, y); \
         QvRev(x:cl, r:cl) <- QvP(x, y) & !exists a. QvA(x, a)",
    )
    .unwrap();
    let mut source = Instance::new();
    for i in 0..6 {
        source.insert_names("QvP", &[&format!("p{i}"), &format!("t{i}")]);
        if i % 2 == 0 {
            source.insert_names("QvA", &[&format!("p{i}"), "rev"]);
        }
    }
    // Positive and non-positive queries.
    let positive = Query::parse(&["x"], "exists z. QvSub(x, z)").unwrap();
    let universal = Query::boolean(
        oc_exchange::logic::parse_formula(
            "forall p a1 a2. (QvSub(p, a1) & QvSub(p, a2) -> a1 = a2)",
        )
        .unwrap(),
    );
    let empty = Tuple::new(Vec::<Value>::new());
    for q in [&positive, &universal] {
        for tuple in [&Tuple::from_names(&["p1"]), &empty] {
            if tuple.arity() != q.arity() {
                continue;
            }
            let naive =
                dxcore::certain_contains_via(&NaiveChase, &mapping, &source, q, tuple, None);
            let indexed =
                dxcore::certain_contains_via(&IndexedChase, &mapping, &source, q, tuple, None);
            assert_eq!(naive.certain, indexed.certain, "{q} on {tuple}");
            assert_eq!(naive.regime, indexed.regime);
        }
    }
    // certain_answers across strategies and against the default pipeline.
    let (rel_naive, _) =
        dxcore::certain_answers_via(&NaiveChase, &mapping, &source, &positive, None);
    let (rel_indexed, _) =
        dxcore::certain_answers_via(&IndexedChase, &mapping, &source, &positive, None);
    let (rel_default, _) = dxcore::certain_answers(&mapping, &source, &positive, None);
    assert_eq!(rel_naive, rel_indexed);
    assert_eq!(rel_naive, rel_default);
    assert_eq!(rel_naive.len(), 6, "every paper certainly has a submission");

    // Membership.
    let csol = canonical_solution(&mapping, &source);
    let member = {
        let mut rng = random_gen::rng(7);
        random_gen::sample_member(&mapping, &source, 4, 1, &mut rng)
    };
    assert_eq!(
        dxcore::is_member_via(&NaiveChase, &mapping, &source, &member),
        dxcore::is_member_via(&IndexedChase, &mapping, &source, &member),
    );
    assert!(dxcore::is_member_via(
        &IndexedChase,
        &mapping,
        &source,
        &member
    ));
    drop(csol);

    // Composition.
    let sigma = Mapping::parse("QvM(x:cl, z:op) <- QvE(x)").unwrap();
    let delta = Mapping::parse("QvF(x:cl, y:cl) <- QvM(x, y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("QvE", &["a"]);
    let mut w = Instance::new();
    w.insert_names("QvF", &["a", "v1"]);
    w.insert_names("QvF", &["a", "v2"]);
    let out_naive = dxcore::comp_membership_via(&NaiveChase, &sigma, &delta, &s, &w, None);
    let out_indexed = dxcore::comp_membership_via(&IndexedChase, &sigma, &delta, &s, &w, None);
    assert_eq!(out_naive.member, out_indexed.member);
    assert_eq!(out_naive.path, out_indexed.path);
    assert!(out_indexed.member);
}

/// The workload queries of the bench suite, differentially, at several
/// sizes — including the certain-answer null-discard filter over canonical
/// solutions with nulls.
#[test]
fn workload_queries_differential() {
    use oc_exchange::workloads::conference;
    for n in [4usize, 9, 17] {
        let mapping = conference::mapping();
        let source = conference::source(n, 2);
        let csol = canonical_solution(&mapping, &source).rel_part();
        for q in [
            conference::reviewed_query(),
            conference::submitted_and_reviewed(),
        ] {
            let ev = QueryEval::new(&q);
            assert!(ev.is_compiled(), "{q}");
            assert_eq!(q.answers(&csol), ev.answers(&csol), "{q} n={n}");
            assert_eq!(
                q.naive_certain_answers(&csol),
                ev.naive_certain_answers(&csol),
                "{q} n={n}"
            );
        }
    }
}

/// Deterministic regressions for PR 3's lowering broadenings, previously
/// exercised only through randomized search: the De Morgan expansion of
/// negated disjunctions and the mixed-variable-set disjunction filters.
/// The §1 one-author implication query — whose `∀`-matrix rewrites to
/// `¬(¬(ψ₁ ∧ ψ₂) ∨ a1 = a2)`-shaped conjuncts — is pinned explicitly.
#[test]
fn demorgan_and_disjunction_lowering_regressions() {
    // The §1 query: "every paper has at most one author". Must lower.
    let one_author = Query::boolean(
        oc_exchange::logic::parse_formula(
            "forall p a1 a2. (Dm1Sub(p, a1) & Dm1Sub(p, a2) -> a1 = a2)",
        )
        .unwrap(),
    );
    let ev = QueryEval::new(&one_author);
    assert!(
        ev.is_compiled(),
        "the §1 implication shape must lower to a plan (PR 3 De Morgan broadening)"
    );
    // Unique authors (incl. a null author, an atomic value) → true.
    let mut unique = Instance::new();
    unique.insert_names("Dm1Sub", &["p1", "alice"]);
    unique.insert(
        RelSym::new("Dm1Sub"),
        Tuple::new(vec![Value::c("p2"), Value::null(7)]),
    );
    assert!(ev.holds_boolean(&unique));
    assert_eq!(ev.holds_boolean(&unique), one_author.holds_boolean(&unique));
    // A two-author paper → false; and a null vs constant author on the
    // same paper also counts as two distinct values.
    let mut double = unique.clone();
    double.insert_names("Dm1Sub", &["p1", "bob"]);
    assert!(!ev.holds_boolean(&double));
    assert_eq!(ev.holds_boolean(&double), one_author.holds_boolean(&double));
    let mut null_clash = Instance::new();
    null_clash.insert_names("Dm1Sub", &["p3", "carol"]);
    null_clash.insert(
        RelSym::new("Dm1Sub"),
        Tuple::new(vec![Value::c("p3"), Value::null(1)]),
    );
    assert!(!ev.holds_boolean(&null_clash));
    assert_eq!(
        ev.holds_boolean(&null_clash),
        one_author.holds_boolean(&null_clash)
    );

    // A deterministic instance with nulls for the disjunction shapes.
    let mut inst = Instance::new();
    inst.insert_names("QdS", &["c0"]);
    inst.insert_names("QdS", &["c1"]);
    inst.insert_names("QdS", &["c2"]);
    inst.insert_names("QdR", &["c0", "c5"]);
    inst.insert_names("QdR", &["c2", "c2"]);
    inst.insert(
        RelSym::new("QdR"),
        Tuple::new(vec![Value::c("c1"), Value::null(0)]),
    );
    inst.insert_names("QdT", &["c1", "c1"]);
    inst.insert(
        RelSym::new("QdT"),
        Tuple::new(vec![Value::null(0), Value::null(0)]),
    );

    // Mixed-variable-set disjunction as a filter: the disjuncts range
    // different variable sets ({x, via ∃y} vs {x}), so the disjunction
    // lowers to a semi-join/select filter union, not a Plan::Union.
    let filter_or = Query::parse(&["x"], "QdS(x) & ((exists y. QdR(x, y)) | QdT(x, x))").unwrap();
    // Negated mixed disjunction: De Morgan expands ¬(ψ₁ ∨ ψ₂) into the
    // anti-join/filter conjuncts ¬ψ₁ ∧ ¬ψ₂.
    let neg_or = Query::parse(&["x"], "QdS(x) & !((exists y. QdR(x, y)) | QdT(x, x))").unwrap();
    // Disjunction filter under an inequality guard.
    let guarded = Query::parse(
        &["x"],
        "exists y. QdR(x, y) & (QdS(x) | !(x = y)) & !QdT(x, x)",
    )
    .unwrap();
    let expectations: [(&Query, &[&str]); 3] = [
        (&filter_or, &["c0", "c1", "c2"]),
        (&neg_or, &[]),
        (&guarded, &["c0", "c2"]),
    ];
    for (q, expected) in expectations {
        let ev = QueryEval::new(q);
        assert!(
            ev.is_compiled(),
            "{q} must lower (PR 3 disjunction filters)"
        );
        assert_eq!(ev.answers(&inst), q.answers(&inst), "oracle agreement: {q}");
        let want =
            oc_exchange::Relation::from_tuples(1, expected.iter().map(|n| Tuple::from_names(&[n])));
        assert_eq!(ev.answers(&inst), want, "pinned answers of {q}");
    }
}

/// The pinned §1 implication query in its **correlated** form —
/// `Q(p) = ∃a Sub(p, a) ∧ ∀b (Sub(p, b) → a = b)`, "papers with exactly one
/// author" — must now *compile* (PR 5's seeded anti-join lowering) instead
/// of falling back to the tree walker, and agree with the oracle on
/// instances mixing ground and null authors.
#[test]
fn correlated_one_author_query_compiles_and_agrees() {
    let q = Query::parse(
        &["p"],
        "exists a. CoSub(p, a) & (forall b. (CoSub(p, b) -> a = b))",
    )
    .unwrap();
    let ev = QueryEval::new(&q);
    assert!(
        ev.is_compiled(),
        "the correlated §1 shape must lower to a seeded anti-join: {:?}",
        ev.lower_error()
    );
    let plan = format!("{}", ev.compiled().unwrap().plan());
    assert!(
        plan.contains("seeded-antijoin"),
        "plan must carry the seeded node:\n{plan}"
    );
    let mut inst = Instance::new();
    inst.insert_names("CoSub", &["p1", "alice"]);
    inst.insert_names("CoSub", &["p2", "bob"]);
    inst.insert_names("CoSub", &["p2", "carol"]);
    inst.insert(
        RelSym::new("CoSub"),
        Tuple::new(vec![Value::c("p3"), Value::null(1)]),
    );
    inst.insert(
        RelSym::new("CoSub"),
        Tuple::new(vec![Value::c("p4"), Value::null(2)]),
    );
    inst.insert_names("CoSub", &["p4", "dave"]);
    assert_eq!(ev.answers(&inst), q.answers(&inst));
    assert_eq!(
        ev.naive_certain_answers(&inst),
        q.naive_certain_answers(&inst)
    );
    assert!(ev.holds_on(&inst, &Tuple::from_names(&["p1"])));
    assert!(!ev.holds_on(&inst, &Tuple::from_names(&["p2"])));
    // p3's single null author counts as exactly one value (naive semantics);
    // p4 mixes a null and a ground author — two values.
    assert!(ev.holds_on(&inst, &Tuple::from_names(&["p3"])));
    assert!(!ev.holds_on(&inst, &Tuple::from_names(&["p4"])));
}

/// Conditional (c-table) execution of the correlated fragment against
/// brute-force `Rep` enumeration: certain answers of the one-author query
/// over randomized null-carrying tables must equal the intersection of the
/// ground answers across all members.
#[test]
fn correlated_conditional_certain_matches_brute_force() {
    for seed in 0..20u64 {
        let mut rng = random_gen::rng(900 + seed);
        let mut inst = Instance::new();
        for _ in 0..rng.gen_range(1..4) {
            let p = if rng.gen_bool(0.3) {
                Value::null(rng.gen_range(0..2) as u32)
            } else {
                Value::c(&format!("cp{}", rng.gen_range(0..2)))
            };
            let a = if rng.gen_bool(0.5) {
                Value::null(rng.gen_range(0..2) as u32)
            } else {
                Value::c(&format!("ca{}", rng.gen_range(0..2)))
            };
            inst.insert(RelSym::new("CcSub"), Tuple::new(vec![p, a]));
        }
        let ct = CInstance::from_naive(&inst);
        let q = Query::parse(
            &["x"],
            "exists a. CcSub(x, a) & (forall b. (CcSub(x, b) -> a = b))",
        )
        .unwrap();
        let compiled = CompiledQuery::compile(&q).expect("correlated fragment compiles");
        let fast: BTreeSet<Tuple> = compiled
            .certain_answers_conditional(&ct)
            .iter()
            .cloned()
            .collect();
        let mut brute: Option<BTreeSet<Tuple>> = None;
        for (ground, _) in ct.rep_members(&BTreeSet::new()) {
            let ans: BTreeSet<Tuple> = q.answers(&ground).iter().cloned().collect();
            brute = Some(match brute {
                None => ans,
                Some(prev) => prev.intersection(&ans).cloned().collect(),
            });
        }
        assert_eq!(fast, brute.unwrap(), "seed {seed} on {inst}");
    }
}

/// Non-safe-range queries fall back to the oracle and still answer
/// correctly through every routed pipeline entry point.
#[test]
fn fallback_paths_stay_correct() {
    let q = Query::parse(&["x"], "x = x").unwrap();
    let ev = QueryEval::new(&q);
    assert!(!ev.is_compiled());
    let mut inst = Instance::new();
    inst.insert_names("QbR", &["a", "b"]);
    assert_eq!(ev.answers(&inst), q.answers(&inst));
    // A domain-dependent body: the planned body eval falls back to the
    // reference walker inside canonical_solution_via.
    let m = Mapping::parse("QbT(x:cl) <- QbU(x) & !exists y. QbU(y) & !(x = y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("QbU", &["only"]);
    let naive = canonical_solution(&m, &s);
    let planned = canonical_solution_via(&PlannedBodyEval, &m, &s);
    assert_eq!(naive.instance, planned.instance);
}
