//! Differential testing of the non-monotonic query-answering regimes
//! (`dx_core::regimes`) against brute-force `Rep_A` enumeration.
//!
//! For randomized scenarios — mixed open/closed annotations, sources with
//! nulls in the canonical solution, queries with negation — the harness:
//!
//! * enumerates **every** member of `Rep_A(CSol_A(S))` within a shared
//!   budget (the oracle's solution space);
//! * recomputes the ⊆-minimal members by pairwise comparison over the full
//!   member set and checks they equal the solver's image-based
//!   [`minimal_rep_a_members`] enumeration (the theory behind the GCWA\*
//!   fast path: members with extras are never minimal);
//! * materializes every union of minimal solutions (up to the size cap)
//!   with plain [`Instance::union`] and evaluates queries by the
//!   tree-walking oracle — asserting [`gcwa_star_answers`] (compiled plans
//!   over one refcounted delta index) agrees exactly;
//! * asserts the approximation regime **brackets** the exact certain
//!   answers: `lower ⊆ exact ⊆ upper`, with `upper == exact` whenever the
//!   sampler reports an exhaustively covered space.

use oc_exchange::chase::Mapping;
use oc_exchange::core::regimes::{
    approx_certain_answers, gcwa_star_answers, gcwa_star_contains, RegimeBudget,
};
use oc_exchange::core::{certain_answers, certain_contains};
use oc_exchange::logic::Query;
use oc_exchange::solver::{
    minimal_rep_a_members, rep_a_membership, search_rep_a, Completeness, SearchBudget,
};
use oc_exchange::workloads::random_gen;
use oc_exchange::{ConstId, Instance, Tuple, Value};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;

/// The differential schema: a copied binary relation and a null-producing
/// unary rule, with annotations randomized per scenario.
fn random_scenario(rng: &mut StdRng) -> (Mapping, Instance) {
    let base = Mapping::parse("RdT(x:cl, y:cl) <- RdR(x, y); SdT(x:cl, z:cl) <- RdS(x)")
        .expect("mapping parses");
    let mapping = random_gen::randomly_annotated(&base, 0.5, rng);
    let mut source = Instance::new();
    for _ in 0..rng.gen_range(0..4) {
        let a = format!("k{}", rng.gen_range(0..2));
        let b = format!("k{}", rng.gen_range(0..2));
        source.insert_names("RdR", &[&a, &b]);
    }
    // ≤ 2 null-producing rows keep the valuation space (and the oracle's
    // member enumeration) small enough for exhaustive comparison.
    for _ in 0..rng.gen_range(0..3) {
        source.insert_names("RdS", &[&format!("k{}", rng.gen_range(0..2))]);
    }
    (mapping, source)
}

/// The query battery: negation in every non-positive entry, exercising
/// anti-joins, universals, disjunction-with-negation shapes and — last —
/// the *correlated* §1 implication, which PR 5's seeded anti-join lowering
/// compiles to a plan (asserted below), so the regime engines evaluate it
/// on the incremental index inside `for_each_union`/member sweeps instead
/// of tree-walking.
fn battery() -> Vec<Query> {
    vec![
        Query::parse(&["x"], "(exists y. RdT(x, y)) & !(exists w. SdT(x, w))").unwrap(),
        Query::boolean(
            oc_exchange::logic::parse_formula(
                "forall p a1 a2. (SdT(p, a1) & SdT(p, a2) -> a1 = a2)",
            )
            .unwrap(),
        ),
        Query::parse(&["x"], "exists y. RdT(x, y) & (RdT(y, x) | !SdT(y, y))").unwrap(),
        Query::boolean(
            oc_exchange::logic::parse_formula("exists x y. RdT(x, y) & !RdT(y, x)").unwrap(),
        ),
        Query::parse(
            &["p"],
            "exists a. SdT(p, a) & (forall b. (SdT(p, b) -> a = b))",
        )
        .unwrap(),
    ]
}

/// Every battery entry with correlated negation runs on a compiled plan
/// inside the regimes (the seeded anti-join fragment).
#[test]
fn correlated_battery_entry_compiles() {
    let q = battery().pop().unwrap();
    let ev = oc_exchange::query::QueryEval::new(&q);
    assert!(
        ev.is_compiled(),
        "correlated §1 entry must run on a plan inside the union walks: {:?}",
        ev.lower_error()
    );
}

/// Candidate answer tuples over `(adom(S) ∪ constants(Q))^arity` — the
/// palette the regime engines quantify over.
fn candidates(source: &Instance, query: &Query) -> Vec<Tuple> {
    let mut consts: BTreeSet<ConstId> = source.adom_consts();
    consts.extend(query.formula.constants());
    let consts: Vec<ConstId> = consts.into_iter().collect();
    let arity = query.arity();
    if arity == 0 {
        return vec![Tuple::new(Vec::<Value>::new())];
    }
    let mut out = Vec::new();
    let mut idx = vec![0usize; arity];
    if consts.is_empty() {
        return out;
    }
    loop {
        out.push(Tuple::from_consts(
            &idx.iter().map(|&i| consts[i]).collect::<Vec<_>>(),
        ));
        let mut carry = 0;
        loop {
            if carry == arity {
                return out;
            }
            idx[carry] += 1;
            if idx[carry] < consts.len() {
                break;
            }
            idx[carry] = 0;
            carry += 1;
        }
    }
}

/// Enumerate (deduplicated) members of `Rep_A(CSol_A(S))` within `budget`.
fn enumerate_members(
    mapping: &Mapping,
    source: &Instance,
    palette: &BTreeSet<ConstId>,
    budget: &SearchBudget,
) -> (Vec<Instance>, Completeness) {
    let csol = oc_exchange::chase::canonical_solution(mapping, source);
    let mut members: BTreeSet<Instance> = BTreeSet::new();
    let outcome = search_rep_a(&csol.instance, palette, budget, &mut |inst| {
        members.insert(inst.clone());
        false
    });
    (members.into_iter().collect(), outcome.completeness)
}

/// The shared sampling/oracle budget: one replication constant, one extra
/// tuple — small enough to enumerate exhaustively, wide enough that open
/// annotations genuinely enlarge the space.
fn oracle_budget() -> SearchBudget {
    SearchBudget {
        max_leaves: None,
        ..SearchBudget::bounded(1, 1)
    }
}

/// GCWA\* against the brute-force union-of-minimal-solutions oracle, and
/// the minimal-solution theory check (minimal over *all* members ==
/// minimal over valuation images).
#[test]
fn gcwa_star_matches_brute_force_oracle() {
    let cap = 3usize;
    for seed in 0..30u64 {
        let mut rng = random_gen::rng(seed);
        let (mapping, source) = random_scenario(&mut rng);
        let csol = oc_exchange::chase::canonical_solution(&mapping, &source);
        for (qi, query) in battery().into_iter().enumerate() {
            let mut palette: BTreeSet<ConstId> = source.adom_consts();
            palette.extend(query.formula.constants());

            // Oracle: all members, minimal by pairwise comparison.
            let (members, _) = enumerate_members(&mapping, &source, &palette, &oracle_budget());
            let brute_minimal: Vec<&Instance> = members
                .iter()
                .filter(|m| !members.iter().any(|n| n != *m && n.is_subinstance_of(m)))
                .collect();
            // The solver's image-based enumeration agrees with brute force.
            let (fast_minimal, comp) = minimal_rep_a_members(&csol.instance, &palette, None);
            assert_eq!(comp, Completeness::Exact);
            let brute_set: BTreeSet<&Instance> = brute_minimal.iter().copied().collect();
            let fast_set: BTreeSet<&Instance> = fast_minimal.iter().collect();
            assert_eq!(
                brute_set, fast_set,
                "seed {seed} q{qi}: minimal members must agree\nmapping:\n{mapping}"
            );
            // Spot-check membership of minimal solutions.
            for m in fast_minimal.iter().take(3) {
                assert!(
                    rep_a_membership(&csol.instance, m).is_some(),
                    "seed {seed}: minimal member not in Rep_A: {m}"
                );
            }

            // Oracle answers: survive every materialized union of ≤ cap
            // minimal solutions (tree-walking evaluation).
            let mut unions: Vec<Instance> = Vec::new();
            subsets_up_to(&fast_minimal, cap, &mut unions);
            let oracle: BTreeSet<Tuple> = candidates(&source, &query)
                .into_iter()
                .filter(|t| unions.iter().all(|u| query.holds_on(u, t)))
                .collect();

            let budget = RegimeBudget {
                max_union_size: cap,
                max_minimal_solutions: usize::MAX,
                max_leaves: None,
            };
            let out = gcwa_star_answers(&mapping, &source, &query, &budget);
            let got: BTreeSet<Tuple> = out.answers.iter().cloned().collect();
            assert_eq!(
                got, oracle,
                "seed {seed} q{qi}: GCWA* answers disagree with the oracle\nmapping:\n{mapping}\nS={source}"
            );
            assert_eq!(out.minimal_solutions, fast_minimal.len());

            // Per-tuple decisions agree with the answer set, and negative
            // ones carry a genuine falsifying union.
            for t in candidates(&source, &query).into_iter().take(3) {
                let dec = gcwa_star_contains(&mapping, &source, &query, &t, &budget);
                assert_eq!(
                    dec.certain,
                    out.answers.contains(&t),
                    "seed {seed} q{qi} {t}"
                );
                if let Some(cex) = dec.counterexample {
                    assert!(!query.holds_on(&cex, &t), "counterexample must falsify");
                }
            }
        }
    }
}

/// All unions of nonempty subsets of size ≤ `cap`, materialized.
fn subsets_up_to(members: &[Instance], cap: usize, out: &mut Vec<Instance>) {
    fn rec(
        members: &[Instance],
        start: usize,
        left: usize,
        acc: &Instance,
        out: &mut Vec<Instance>,
    ) {
        for i in start..members.len() {
            let u = acc.union(&members[i]);
            out.push(u.clone());
            if left > 1 {
                rec(members, i + 1, left - 1, &u, out);
            }
        }
    }
    rec(members, 0, cap.max(1), &Instance::new(), out);
}

/// GCWA\* coincides with the certain answers on positive queries, for any
/// annotation (both collapse to Proposition 3's naive evaluation).
#[test]
fn gcwa_star_equals_certain_on_positive_queries() {
    let q = Query::parse(&["x"], "exists w. SdT(x, w)").unwrap();
    for seed in 0..15u64 {
        let mut rng = random_gen::rng(1000 + seed);
        let (mapping, source) = random_scenario(&mut rng);
        let out = gcwa_star_answers(&mapping, &source, &q, &RegimeBudget::default());
        let (cert, _) = certain_answers(&mapping, &source, &q, None);
        assert_eq!(out.answers, cert, "seed {seed}\nmapping:\n{mapping}");
    }
}

/// The approximation regime brackets the exact certain answers over the
/// budget-restricted member space: `lower ⊆ exact ⊆ upper`, closing to
/// equality when the space was covered exhaustively. `lower` is
/// additionally checked sound against the search-based
/// [`certain_contains`] (the true semantics).
#[test]
fn approx_brackets_brute_force_certain_answers() {
    let budget = oracle_budget();
    for seed in 0..30u64 {
        let mut rng = random_gen::rng(5000 + seed);
        let (mapping, source) = random_scenario(&mut rng);
        for (qi, query) in battery().into_iter().enumerate() {
            let mut palette: BTreeSet<ConstId> = source.adom_consts();
            palette.extend(query.formula.constants());
            let (members, _) = enumerate_members(&mapping, &source, &palette, &budget);
            let exact: BTreeSet<Tuple> = candidates(&source, &query)
                .into_iter()
                .filter(|t| members.iter().all(|m| query.holds_on(m, t)))
                .collect();

            let out = approx_certain_answers(&mapping, &source, &query, Some(&budget));
            let lower: BTreeSet<Tuple> = out.lower.iter().cloned().collect();
            let upper: BTreeSet<Tuple> = out.upper.iter().cloned().collect();
            assert!(
                lower.is_subset(&exact),
                "seed {seed} q{qi}: lower ⊄ exact\nlower={lower:?}\nexact={exact:?}\nmapping:\n{mapping}\nS={source}"
            );
            assert!(
                exact.is_subset(&upper),
                "seed {seed} q{qi}: exact ⊄ upper\nexact={exact:?}\nupper={upper:?}\nmapping:\n{mapping}\nS={source}"
            );
            if out.completeness == Completeness::Exact {
                assert_eq!(
                    upper, exact,
                    "seed {seed} q{qi}: exhaustive sampling must close the upper bound"
                );
            }
            if out.tight {
                assert_eq!(lower, upper);
            }
            // Soundness of `lower` against the true (search-based)
            // semantics, tuple by tuple.
            for t in lower.iter().take(3) {
                assert!(
                    certain_contains(&mapping, &source, &query, t, Some(&budget)).certain,
                    "seed {seed} q{qi}: lower contains a non-certain tuple {t}"
                );
            }
        }
    }
}
