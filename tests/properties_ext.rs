//! Property-based tests for the extension stack: conditional tables,
//! cores, stratified Datalog, the Codd fast path, and the existential-Δ
//! composition regime. Each property pits an engine against either a
//! brute-force reference or an independent second engine.

use oc_exchange::chase::core::{ann_core_of, core_of, find_ann_hom, hom_equivalent};
use oc_exchange::chase::{canonical_solution, Mapping};
use oc_exchange::core::{compose, semantics};
use oc_exchange::ctables::{certain_answers_ra, CInstance, RaExpr, RaPred};
use oc_exchange::logic::datalog::DatalogQuery;
use oc_exchange::solver::repa::{codd_rep_membership, is_codd, rep_a_membership_with};
use oc_exchange::workloads::random_gen;
use oc_exchange::{Instance, RelSym, Schema, Tuple, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;

/// A small random FO formula over binary `Ra`/`Rb` (shared shape with the
/// round-trip generator in `tests/properties.rs`).
fn random_formula(rng: &mut StdRng, depth: usize) -> oc_exchange::logic::Formula {
    use oc_exchange::logic::{Formula, Term};
    let vars = ["x", "y", "z"];
    let rels = ["Ra", "Rb"];
    if depth == 0 || rng.gen_bool(0.4) {
        return match rng.gen_range(0..3) {
            0 => Formula::atom(
                rels[rng.gen_range(0..rels.len())],
                vec![
                    Term::var(vars[rng.gen_range(0..vars.len())]),
                    Term::var(vars[rng.gen_range(0..vars.len())]),
                ],
            ),
            1 => Formula::eq(
                Term::var(vars[rng.gen_range(0..vars.len())]),
                Term::cst("c"),
            ),
            _ => Formula::neq(
                Term::var(vars[rng.gen_range(0..vars.len())]),
                Term::var(vars[rng.gen_range(0..vars.len())]),
            ),
        };
    }
    match rng.gen_range(0..5) {
        0 => oc_exchange::logic::Formula::and([
            random_formula(rng, depth - 1),
            random_formula(rng, depth - 1),
        ]),
        1 => oc_exchange::logic::Formula::or([
            random_formula(rng, depth - 1),
            random_formula(rng, depth - 1),
        ]),
        2 => oc_exchange::logic::Formula::not(random_formula(rng, depth - 1)),
        3 => oc_exchange::logic::Formula::exists(
            vec![oc_exchange::Var::new(vars[rng.gen_range(0..vars.len())])],
            random_formula(rng, depth - 1),
        ),
        _ => oc_exchange::logic::Formula::forall(
            vec![oc_exchange::Var::new(vars[rng.gen_range(0..vars.len())])],
            random_formula(rng, depth - 1),
        ),
    }
}

/// Random naive table over one binary and one unary relation, with nulls.
fn random_naive(rng: &mut StdRng, max_nulls: u32) -> Instance {
    let mut inst = Instance::new();
    let consts = ["a", "b", "c"];
    let mut null_count = 0u32;
    let mut value = |rng: &mut StdRng| -> Value {
        if null_count < max_nulls && rng.gen_bool(0.4) {
            null_count += 1;
            Value::null(null_count)
        } else {
            Value::c(consts[rng.gen_range(0..consts.len())])
        }
    };
    for _ in 0..rng.gen_range(1..4) {
        let v1 = value(rng);
        let v2 = value(rng);
        inst.insert(RelSym::new("PrA"), Tuple::new(vec![v1, v2]));
    }
    for _ in 0..rng.gen_range(0..3) {
        let v = value(rng);
        inst.insert(RelSym::new("PrB"), Tuple::new(vec![v]));
    }
    inst
}

/// Random RA expression with tracked arity over PrA/2 and PrB/1.
fn random_ra(rng: &mut StdRng, depth: usize) -> (RaExpr, usize) {
    if depth == 0 || rng.gen_bool(0.35) {
        return if rng.gen_bool(0.6) {
            (RaExpr::rel("PrA"), 2)
        } else {
            (RaExpr::rel("PrB"), 1)
        };
    }
    match rng.gen_range(0..6) {
        0 => {
            let (e, a) = random_ra(rng, depth - 1);
            let pred = if a >= 2 && rng.gen_bool(0.5) {
                RaPred::cols_eq(0, 1)
            } else {
                RaPred::col_is(rng.gen_range(0..a), ["a", "b", "zz"][rng.gen_range(0..3)])
            };
            (e.select(pred), a)
        }
        1 => {
            let (e, a) = random_ra(rng, depth - 1);
            let cols: Vec<usize> = if a == 2 && rng.gen_bool(0.5) {
                vec![1, 0]
            } else {
                vec![rng.gen_range(0..a)]
            };
            let n = cols.len();
            (e.project(cols), n)
        }
        2 => {
            // Product capped at arity 3 to keep brute force cheap.
            let (l, la) = random_ra(rng, 0);
            let (r, ra) = if la == 2 {
                (RaExpr::rel("PrB"), 1)
            } else {
                random_ra(rng, 0)
            };
            (l.product(r), la + ra)
        }
        3 | 4 => {
            let (l, la) = random_ra(rng, depth - 1);
            let (r, _) = same_arity(rng, la);
            if rng.gen_bool(0.5) {
                (l.union(r), la)
            } else {
                (l.diff(r), la)
            }
        }
        _ => {
            let (l, la) = random_ra(rng, depth - 1);
            let (r, _) = same_arity(rng, la);
            (l.intersect(r), la)
        }
    }
}

/// A base-ish expression of exactly the requested arity.
fn same_arity(rng: &mut StdRng, arity: usize) -> (RaExpr, usize) {
    match arity {
        1 => {
            if rng.gen_bool(0.5) {
                (RaExpr::rel("PrB"), 1)
            } else {
                (RaExpr::rel("PrA").project([rng.gen_range(0..2)]), 1)
            }
        }
        2 => (RaExpr::rel("PrA"), 2),
        3 => (RaExpr::rel("PrA").product(RaExpr::rel("PrB")), 3),
        n => (
            {
                let mut e = RaExpr::rel("PrB");
                for _ in 1..n {
                    e = e.product(RaExpr::rel("PrB"));
                }
                e
            },
            n,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32, failure_persistence: None, ..ProptestConfig::default()
    })]

    /// Imieliński–Lipski representation theorem on random tables and
    /// queries: conditional evaluation commutes with valuations.
    #[test]
    fn conditional_eval_commutes(seed in 0u64..400) {
        let mut rng = random_gen::rng(seed);
        let naive = random_naive(&mut rng, 3);
        let ct = CInstance::from_naive(&naive);
        let (q, _) = random_ra(&mut rng, 2);
        let cond = q.eval_conditional(&ct);
        for (ground, v) in ct.rep_members(&BTreeSet::new()) {
            let direct: BTreeSet<Tuple> = q.eval_ground(&ground).iter().cloned().collect();
            let via: BTreeSet<Tuple> = cond.apply(&v).into_iter().collect();
            prop_assert_eq!(&via, &direct, "query {:?} valuation {:?}", q, v);
        }
    }

    /// Certain answers via condition validity equal the brute-force
    /// intersection over all palette Rep members.
    #[test]
    fn ctable_certain_equals_brute_force(seed in 0u64..400) {
        let mut rng = random_gen::rng(seed);
        let naive = random_naive(&mut rng, 3);
        let ct = CInstance::from_naive(&naive);
        let (q, _) = random_ra(&mut rng, 2);
        let fast: BTreeSet<Tuple> =
            certain_answers_ra(&q, &ct).iter().cloned().collect();
        let mut brute: Option<BTreeSet<Tuple>> = None;
        for (ground, _) in ct.rep_members(&q.constants().into_iter().collect()) {
            let ans: BTreeSet<Tuple> = q.eval_ground(&ground).iter().cloned().collect();
            brute = Some(match brute {
                None => ans,
                Some(prev) => prev.intersection(&ans).cloned().collect(),
            });
        }
        prop_assert_eq!(fast, brute.unwrap(), "query {:?} on {}", q, naive);
    }

    /// Cores: homomorphically equivalent to the input, idempotent, and
    /// never larger.
    #[test]
    fn core_properties(seed in 0u64..400) {
        let mut rng = random_gen::rng(seed);
        let inst = random_naive(&mut rng, 4);
        let res = core_of(&inst);
        prop_assert!(res.core.tuple_count() <= inst.tuple_count());
        prop_assert!(hom_equivalent(&inst, &res.core));
        let again = core_of(&res.core);
        prop_assert_eq!(&again.core, &res.core, "idempotence");
        prop_assert_eq!(again.steps, 0usize);
    }

    /// Annotated cores of canonical solutions stay within the solution
    /// space and are reachable by homomorphism from CSol_A.
    #[test]
    fn ann_core_within_solution_space(seed in 0u64..300) {
        let mut rng = random_gen::rng(seed);
        let schema = Schema::from_pairs([("PrA", 2), ("PrB", 1)]);
        let m = random_gen::random_mapping(&schema, 1, 0.5, &mut rng);
        let s = random_gen::random_instance(&schema, 3, 3, &mut rng);
        let csol = canonical_solution(&m, &s);
        let core = ann_core_of(&csol.instance);
        prop_assert!(find_ann_hom(&csol.instance, &core.core).is_some());
        prop_assert!(find_ann_hom(&core.core, &csol.instance).is_some());
    }

    /// Datalog transitive closure equals a Floyd–Warshall reference on
    /// random ground graphs.
    #[test]
    fn datalog_tc_equals_warshall(seed in 0u64..400) {
        let mut rng = random_gen::rng(seed);
        let n = rng.gen_range(2usize..6);
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut s = Instance::new();
        for i in 0..n {
            for j in 0..n {
                if rng.gen_bool(0.3) {
                    edges.push((i, j));
                    s.insert_nums("PrE", &[i as i64, j as i64]);
                }
            }
        }
        let q = DatalogQuery::parse(
            "PrPath",
            "PrPath(x, y) <- PrE(x, y); PrPath(x, z) <- PrPath(x, y) & PrE(y, z)",
        ).unwrap();
        let got = q.answers(&s);
        // Reference closure.
        let mut reach = vec![vec![false; n]; n];
        for &(i, j) in &edges {
            reach[i][j] = true;
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    reach[i][j] |= reach[i][k] && reach[k][j];
                }
            }
        }
        let mut expect = BTreeSet::new();
        for (i, row) in reach.iter().enumerate() {
            for (j, &r) in row.iter().enumerate() {
                if r {
                    expect.insert(Tuple::from_nums(&[i as i64, j as i64]));
                }
            }
        }
        let got_set: BTreeSet<Tuple> = got.iter().cloned().collect();
        prop_assert_eq!(got_set, expect);
    }

    /// The Codd matching route agrees with the generic backtracking on
    /// random Codd tables and random ground targets.
    #[test]
    fn codd_route_agrees_with_generic(seed in 0u64..600) {
        let mut rng = random_gen::rng(seed);
        let t = random_naive(&mut rng, u32::MAX); // distinct nulls by construction
        prop_assume!(is_codd(&t));
        let r = {
            let mut r = Instance::new();
            let consts = ["a", "b", "c"];
            for _ in 0..rng.gen_range(1..4) {
                r.insert_names(
                    "PrA",
                    &[consts[rng.gen_range(0..3)], consts[rng.gen_range(0..3)]],
                );
            }
            for _ in 0..rng.gen_range(0..3) {
                r.insert_names("PrB", &[consts[rng.gen_range(0..3)]]);
            }
            r
        };
        let mut ann = oc_exchange::AnnInstance::new();
        for (rel, rl) in t.relations() {
            for tuple in rl.iter() {
                ann.insert(rel, oc_exchange::AnnTuple::new(
                    tuple.clone(),
                    oc_exchange::Annotation::all_closed(tuple.arity()),
                ));
            }
        }
        let generic = rep_a_membership_with(&ann, &r, true).is_some();
        let codd = codd_rep_membership(&t, &r).is_some();
        prop_assert_eq!(generic, codd, "t = {}, r = {}", t, r);
    }

    /// Codd's theorem, constructive direction: the FO→RA translation
    /// agrees with the active-domain FO evaluator on random formulas and
    /// random ground instances.
    #[test]
    fn fo_to_ra_matches_evaluator(seed in 0u64..600) {
        use oc_exchange::ctables::fo_to_ra;
        let mut rng = random_gen::rng(seed);
        let f = random_formula(&mut rng, 2);
        let head: Vec<oc_exchange::Var> = f.free_vars().into_iter().collect();
        let q = oc_exchange::logic::Query::new(head.clone(), f.clone());
        // Random ground instance over the generator's Ra/Rb vocabulary.
        let mut inst = Instance::new();
        let consts = ["a", "b", "c"];
        for _ in 0..rng.gen_range(0..5) {
            inst.insert_names(
                "Ra",
                &[consts[rng.gen_range(0..3)], consts[rng.gen_range(0..3)]],
            );
        }
        for _ in 0..rng.gen_range(0..4) {
            inst.insert_names(
                "Rb",
                &[consts[rng.gen_range(0..3)], consts[rng.gen_range(0..3)]],
            );
        }
        let schema = [
            (RelSym::new("Ra"), 2usize),
            (RelSym::new("Rb"), 2usize),
        ];
        let ra = fo_to_ra(&f, &head, &schema).expect("no function terms generated");
        prop_assert_eq!(ra.eval_ground(&inst), q.answers(&inst), "formula {}", f);
    }

    /// End-to-end cross-validation of the two exact CWA engines on random
    /// mappings with an FO query routed through the Codd-theorem
    /// translation.
    #[test]
    fn cwa_fo_ctable_route_agrees_with_search(seed in 0u64..120) {
        use oc_exchange::core::ctable_bridge::certain_answers_cwa_fo;
        let mut rng = random_gen::rng(seed);
        let p_rules = [
            "PrP(x:cl) <- PrS(x, y)",
            "PrP(y:cl) <- PrS(x, y)",
            "PrP(z:cl) <- PrS(x, y)",
        ];
        let q_rules = [
            "PrQ(x:cl) <- PrS(x, y)",
            "PrQ(z:cl) <- PrS(x, y)",
        ];
        let rules = format!(
            "{}; {}",
            p_rules[rng.gen_range(0..p_rules.len())],
            q_rules[rng.gen_range(0..q_rules.len())],
        );
        let m = Mapping::parse(&rules).unwrap();
        let s = random_gen::random_instance(
            &Schema::from_pairs([("PrS", 2)]), 2, 3, &mut rng);
        let q = oc_exchange::logic::Query::parse(&["x"], "PrP(x) & !PrQ(x)").unwrap();
        let via_ctable = certain_answers_cwa_fo(&m, &s, &q).expect("translates");
        let (via_search, comp) =
            oc_exchange::core::certain::certain_answers(&m, &s, &q, None);
        prop_assert_eq!(comp, oc_exchange::solver::Completeness::Exact);
        prop_assert_eq!(via_ctable, via_search, "rules `{}`", rules);
    }

    /// Existential-Δ composition is complete: whenever we SAMPLE a genuine
    /// member (J from ⟦S⟧_Σα, then W from ⟦J⟧_Δ), the exact existential
    /// path confirms it.
    #[test]
    fn existential_composition_confirms_sampled_members(seed in 0u64..150) {
        let mut rng = random_gen::rng(seed);
        let sigma = Mapping::parse(
            "PrM(x:cl, z:op) <- PrS(x, y); PrK(y:cl) <- PrS(x, y)",
        ).unwrap();
        let delta = Mapping::parse(
            "PrF(x:cl) <- PrM(x, y) & !PrK(y)",
        ).unwrap();
        let src_schema = Schema::from_pairs([("PrS", 2)]);
        let s = random_gen::random_instance(&src_schema, 2, 3, &mut rng);
        let j = random_gen::sample_member(&sigma, &s, 3, 1, &mut rng);
        prop_assume!(semantics::is_member(&sigma, &s, &j));
        let w = random_gen::sample_member(&delta, &j, 3, 0, &mut rng);
        prop_assume!(semantics::is_member(&delta, &j, &w));
        let out = compose::comp_membership(&sigma, &delta, &s, &w, None);
        prop_assert_eq!(out.path, compose::CompPath::ExistentialDelta);
        prop_assert!(out.member, "sampled member rejected: S={} J={} W={}", s, j, w);
    }
}
