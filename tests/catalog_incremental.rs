//! Differential testing of the plan catalog and the incremental `Rep_A`
//! solver.
//!
//! Two properties are asserted, both as **exact equality**, not mere
//! equivalence:
//!
//! 1. **Catalog transparency** — every `_via` pipeline drawing compiled
//!    plans from the shared [`PlanCatalog`] returns bit-identical results
//!    to a fresh, uncached compile (and to the tree-walking oracle where
//!    one exists), on first use and on cache hits alike;
//! 2. **Incremental-store soundness** — the valuation search's single
//!    delta-maintained index agrees with a rebuild-per-candidate oracle at
//!    *every leaf* of randomized searches over mixed open/closed
//!    annotations: same per-leaf verdicts, same leaf counts, same
//!    outcomes, and every leaf instance is a genuine `Rep_A(T)` member.

use oc_exchange::chase::{canonical_solution, Mapping, NaiveChase};
use oc_exchange::core as dxcore;
use oc_exchange::ctables::{RaExpr, RaPred};
use oc_exchange::engine::IndexedChase;
use oc_exchange::logic::Query;
use oc_exchange::query::{PlanCatalog, QueryEval};
use oc_exchange::relation::InstanceIndex;
use oc_exchange::solver::{rep_a_membership, search_rep_a, search_rep_a_indexed, SearchBudget};
use oc_exchange::{
    Ann, AnnInstance, AnnTuple, Annotation, ConstId, Instance, RelSym, Tuple, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn conference_source() -> Instance {
    // Two papers ⇒ two canonical-solution nulls: the refutation regimes
    // exhaust their valuation spaces in tens of leaves, not millions (the
    // coNP search is exponential in the null count by design).
    let mut s = Instance::new();
    for i in 0..2 {
        s.insert_names("CiPapers", &[&format!("p{i}"), &format!("t{i}")]);
    }
    s
}

/// Catalog-backed pipeline results are bit-identical to fresh compiles and
/// stable across repeated (cached) runs, for every `_via` pipeline and
/// chase strategy.
#[test]
fn cached_plans_bit_identical_across_via_pipelines() {
    let mapping =
        Mapping::parse("CiSub(x:cl, z:cl) <- CiPapers(x, y); CiAll(x:cl) <- CiPapers(x, y)")
            .unwrap();
    let source = conference_source();
    let queries = [
        Query::parse(&["x"], "exists z. CiSub(x, z)").unwrap(),
        Query::parse(&["x"], "CiAll(x) & !(exists z. CiSub(x, z) & z = 'ghost')").unwrap(),
        Query::boolean(
            oc_exchange::logic::parse_formula(
                "forall p a1 a2. (CiSub(p, a1) & CiSub(p, a2) -> a1 = a2)",
            )
            .unwrap(),
        ),
    ];
    let strategies: [&dyn oc_exchange::chase::ChaseStrategy; 2] = [&NaiveChase, &IndexedChase];
    for query in &queries {
        // The uncached oracle: a private QueryEval compiled fresh here.
        let fresh = QueryEval::new(query);
        let csol = canonical_solution(&mapping, &source).rel_part();
        let oracle_answers = fresh.naive_certain_answers(&csol);
        let mut runs = Vec::new();
        for _ in 0..2 {
            for strategy in strategies {
                let (rel, comp) =
                    dxcore::certain::certain_answers_via(strategy, &mapping, &source, query, None);
                assert_eq!(comp, oc_exchange::solver::Completeness::Exact);
                runs.push(rel);
            }
        }
        // All runs identical (first compile == cache hits, naive == indexed).
        for r in &runs[1..] {
            assert_eq!(r, &runs[0], "{query:?}");
        }
        // Positive queries additionally match the fresh-compile evaluation.
        if oc_exchange::logic::classify::is_positive(&query.formula) {
            assert_eq!(runs[0], oracle_answers, "{query:?}");
        }
    }

    // The c-table CWA routes: catalog-backed, repeat-stable, and equal to
    // the interpreting fallback.
    let ra = RaExpr::rel("CiSub")
        .select(RaPred::col_is(1, "t0"))
        .project([0]);
    let a1 = dxcore::ctable_bridge::certain_answers_cwa_ra(&mapping, &source, &ra);
    let a2 = dxcore::ctable_bridge::certain_answers_cwa_ra(&mapping, &source, &ra);
    assert_eq!(a1, a2);
    let cinst = dxcore::ctable_bridge::csol_as_ctable(&mapping, &source);
    assert_eq!(
        a1,
        oc_exchange::ctables::certain_answers_ra(&ra, &cinst),
        "plan route equals interpreter route"
    );
    let fo = Query::parse(&["x"], "exists z. CiSub(x, z) & !CiAll(x)").unwrap();
    let f1 = dxcore::ctable_bridge::certain_answers_cwa_fo(&mapping, &source, &fo).unwrap();
    let f2 = dxcore::ctable_bridge::certain_answers_cwa_fo(&mapping, &source, &fo).unwrap();
    assert_eq!(f1, f2);

    // The shared catalog actually served these pipelines: repeated runs
    // produced hits.
    let stats = PlanCatalog::shared().stats();
    assert!(stats.entries > 0, "pipelines populate the shared catalog");
    assert!(stats.hits > 0, "repeat runs are answered from the cache");
}

/// The legacy closure API and the indexed API are the same search: same
/// leaves, same outcome, on a mixed-annotation instance.
#[test]
fn closure_and_indexed_apis_are_one_search() {
    let rel = RelSym::new("CiMix");
    let mut t = AnnInstance::new();
    t.insert(
        rel,
        AnnTuple::new(
            Tuple::new(vec![Value::c("a"), Value::null(1)]),
            Annotation::new(vec![Ann::Closed, Ann::Open]),
        ),
    );
    t.insert(
        rel,
        AnnTuple::new(
            Tuple::new(vec![Value::null(1), Value::null(2)]),
            Annotation::all_closed(2),
        ),
    );
    let budget = SearchBudget::bounded(1, 2);
    let via_closure = search_rep_a(&t, &BTreeSet::new(), &budget, &mut |i| i.tuple_count() >= 4);
    let via_leaf = search_rep_a_indexed(&t, &BTreeSet::new(), &budget, &mut |leaf| {
        leaf.instance().tuple_count() >= 4
    });
    assert_eq!(via_closure.leaves, via_leaf.leaves);
    assert_eq!(via_closure.completeness, via_leaf.completeness);
    assert_eq!(via_closure.witness, via_leaf.witness);
}

/// Randomized open/closed annotated instances: at every leaf, a compiled
/// plan probing the incremental index must agree with (a) the same plan on
/// a freshly built snapshot index of the leaf instance (the
/// rebuild-per-candidate oracle) and (b) the tree-walking evaluator; and
/// the leaf instance itself must be a genuine `Rep_A(T)` member.
#[test]
fn incremental_search_agrees_with_rebuild_oracle_randomized() {
    let mut rng = StdRng::seed_from_u64(0xC1AB5);
    let rel_e = RelSym::new("CiE");
    let rel_v = RelSym::new("CiV");
    // A fixed pool of safe-range boolean queries over the search schema.
    let queries: Vec<Query> = [
        "exists x y. CiE(x, y) & CiV(y)",
        "exists x. CiV(x) & !(exists y. CiE(x, y))",
        "exists x y. CiE(x, y) & (CiV(x) | CiE(y, x))",
        "forall x y. (CiE(x, y) -> x = y)",
    ]
    .iter()
    .map(|src| Query::boolean(oc_exchange::logic::parse_formula(src).unwrap()))
    .collect();
    let consts = ["a", "b", "c"];
    let empty = Tuple::new(Vec::<Value>::new());

    for case in 0..48 {
        // Random annotated instance: 1–3 binary CiE tuples, 0–2 unary CiV
        // tuples, values from a small const pool + nulls ⊥1..⊥3 (repeats
        // likely), random per-position open/closed annotations, sometimes
        // an all-open empty marker.
        let mut t = AnnInstance::new();
        let val = |rng: &mut StdRng| -> Value {
            if rng.gen_bool(0.4) {
                Value::null(rng.gen_range(1..4) as u32)
            } else {
                Value::c(consts[rng.gen_range(0..consts.len())])
            }
        };
        for _ in 0..rng.gen_range(1..4) {
            let tuple = Tuple::new(vec![val(&mut rng), val(&mut rng)]);
            let ann = Annotation::new(vec![
                if rng.gen_bool(0.5) {
                    Ann::Open
                } else {
                    Ann::Closed
                },
                if rng.gen_bool(0.5) {
                    Ann::Open
                } else {
                    Ann::Closed
                },
            ]);
            t.insert(rel_e, AnnTuple::new(tuple, ann));
        }
        for _ in 0..rng.gen_range(0..3) {
            let tuple = Tuple::new(vec![val(&mut rng)]);
            let ann = Annotation::new(vec![if rng.gen_bool(0.5) {
                Ann::Open
            } else {
                Ann::Closed
            }]);
            t.insert(rel_v, AnnTuple::new(tuple, ann));
        }
        if rng.gen_bool(0.25) {
            t.insert_empty_mark(rel_v, Annotation::all_open(1));
        }

        let query = &queries[case % queries.len()];
        let ev = PlanCatalog::shared().eval(query);
        assert!(ev.is_compiled(), "query pool is safe-range");
        let budget = SearchBudget::bounded(1, 2);
        let q_consts: BTreeSet<ConstId> = query.formula.constants().into_iter().collect();

        // Combined run: assert per-leaf agreement of all three evaluation
        // routes (the expensive oracles on a leaf *prefix* — the
        // outcome-level comparison below still covers every leaf), decide
        // by the incremental verdict.
        let mut full_checks = 0usize;
        let incremental = search_rep_a_indexed(&t, &q_consts, &budget, &mut |leaf| {
            let on_delta = ev.holds_on_indexed(leaf.index(), leaf.instance(), &empty);
            if full_checks < 24 {
                full_checks += 1;
                let on_snapshot = ev
                    .compiled()
                    .expect("compiled")
                    .holds_on_store(&InstanceIndex::build(leaf.instance()), &empty);
                let on_tree = query.holds_on(leaf.instance(), &empty);
                assert_eq!(on_delta, on_snapshot, "case {case}: delta vs snapshot");
                assert_eq!(on_delta, on_tree, "case {case}: plan vs tree walker");
                if full_checks <= 4 {
                    assert!(
                        rep_a_membership(&t, leaf.instance()).is_some(),
                        "case {case}: leaf {} is not a Rep_A member of {t}",
                        leaf.instance()
                    );
                }
            }
            !on_delta
        });

        // Oracle run: identical search, but every leaf rebuilds its index
        // from the materialized instance (the pre-refactor behaviour).
        let rebuild = search_rep_a_indexed(&t, &q_consts, &budget, &mut |leaf| {
            !ev.holds_on(leaf.instance(), &empty)
        });
        assert_eq!(
            incremental.witness.is_some(),
            rebuild.witness.is_some(),
            "case {case}: t = {t}"
        );
        assert_eq!(incremental.leaves, rebuild.leaves, "case {case}");
        assert_eq!(
            incremental.completeness, rebuild.completeness,
            "case {case}"
        );
        if let (Some((wi, _)), Some((wr, _))) = (&incremental.witness, &rebuild.witness) {
            assert_eq!(wi, wr, "case {case}: identical witness instances");
        }
    }
}

/// End-to-end: the refutation pipelines built on the incremental solver
/// (certain / possible / 1-to-m / composition) agree with brute-force
/// expectations on a scenario where every regime fires.
#[test]
fn refutation_pipelines_agree_end_to_end() {
    let mapping = Mapping::parse("CiR(x:cl, z:op) <- CiSrc(x, y)").unwrap();
    let mut source = Instance::new();
    source.insert_names("CiSrc", &["a", "b"]);
    source.insert_names("CiSrc", &["c", "d"]);
    let empty = Tuple::new(Vec::<Value>::new());

    // Full-FO query, open annotation: replication refutes it.
    let q = Query::boolean(
        oc_exchange::logic::parse_formula(
            "exists x y. (CiR(x, y) & forall u v. (CiR(u, v) -> v = y))",
        )
        .unwrap(),
    );
    let out = dxcore::certain::certain_contains(&mapping, &source, &q, &empty, None);
    assert!(!out.certain);
    let cex = out.counterexample.expect("counterexample");
    assert!(!q.holds_boolean(&cex), "counterexample refutes the query");
    assert!(
        rep_a_membership(&canonical_solution(&mapping, &source).instance, &cex).is_some(),
        "counterexample is a Rep_A member"
    );

    // 1-to-m: m = 1 collapses to the CWA verdict.
    let cwa = dxcore::certain::certain_cwa(&mapping, &source, &q, &empty);
    let one = dxcore::certain::certain_contains_one_to_m(&mapping, &source, &q, &empty, 1);
    assert_eq!(cwa.certain, one.certain);

    // Possible answers bracket certain ones.
    let q_vals = Query::parse(&["a"], "exists p. CiR(p, a)").unwrap();
    let poss = dxcore::certain::possible_contains(
        &mapping,
        &source,
        &q_vals,
        &Tuple::from_names(&["zz"]),
        None,
    );
    assert!(poss.certain, "any value is possible for an open null");
}

/// The catalog's **negative cache**: a formula rejected by safe-range
/// lowering is compiled (and rejected) exactly once — every later lookup
/// is a cache hit — and `clear()` resets positive and negative entries
/// alike. Randomized over rejected shapes (unbound equalities, negated
/// atoms, negation under an existential) and interleavings with compiling
/// formulas.
#[test]
fn negative_cache_never_recompiles_rejections() {
    use oc_exchange::logic::{Formula, Term};
    use oc_exchange::Var;
    let mut rng = StdRng::seed_from_u64(0xCA7A);
    for case in 0..40 {
        let cat = PlanCatalog::new();
        let x = Var::new(&format!("ncx{}", rng.gen_range(0..4)));
        let y = Var::new(&format!("ncy{}", rng.gen_range(0..4)));
        let rel = format!("NcR{}", rng.gen_range(0..4));
        // A rejected formula: all three shapes are outside the safe-range
        // fragment for their head.
        let (bad, bad_head): (Formula, Vec<Var>) = match rng.gen_range(0..3) {
            0 => (Formula::eq(Term::Var(x), Term::Var(y)), vec![x, y]),
            1 => (
                Formula::not(Formula::atom(&rel, vec![Term::Var(x), Term::Var(y)])),
                vec![x, y],
            ),
            _ => (
                Formula::exists(
                    vec![y],
                    Formula::not(Formula::atom(&rel, vec![Term::Var(x), Term::Var(y)])),
                ),
                vec![x],
            ),
        };
        assert!(
            cat.formula(&bad, &bad_head).is_err(),
            "case {case}: rejected"
        );
        let after_first = cat.stats();
        assert_eq!(
            (after_first.hits, after_first.misses, after_first.entries),
            (0, 1, 1),
            "case {case}: one rejection, one (negative) entry"
        );
        // Interleave with a compiling formula and repeated rejected lookups.
        let good = Formula::atom(&rel, vec![Term::Var(x), Term::Var(y)]);
        let repeats = rng.gen_range(2..6u64);
        for i in 0..repeats {
            assert!(cat.formula(&bad, &bad_head).is_err());
            let c1 = cat.formula(&good, &[x, y]).expect("compiles");
            let c2 = cat.formula(&good, &[x, y]).expect("compiles");
            assert!(std::sync::Arc::ptr_eq(&c1, &c2), "positive entries shared");
            drop((c1, c2));
            let s = cat.stats();
            assert_eq!(
                s.misses, 2,
                "case {case} round {i}: neither entry is ever recompiled"
            );
            assert_eq!(s.entries, 2);
        }
        // Per round: the rejected lookup hits, `c2` hits, and `c1` hits on
        // every round but the first (where it compiles) — 3·repeats − 1.
        let before_clear = cat.stats();
        assert_eq!(before_clear.hits, repeats * 3 - 1);
        // clear() drops positive AND negative entries (and the counters).
        cat.clear();
        let cleared = cat.stats();
        assert_eq!((cleared.hits, cleared.misses, cleared.entries), (0, 0, 0));
        // The rejection is re-attempted exactly once after the reset.
        assert!(cat.formula(&bad, &bad_head).is_err());
        assert!(cat.formula(&bad, &bad_head).is_err());
        let reset = cat.stats();
        assert_eq!((reset.hits, reset.misses, reset.entries), (1, 1, 1));
    }
}
