//! Every worked example from the paper, end to end.

use oc_exchange::chase::{canonical_solution, is_solution, Mapping};
use oc_exchange::core::{certain, semantics, skstd::SkMapping};
use oc_exchange::logic::Query;
use oc_exchange::solver::repa::rep_a_membership;
use oc_exchange::{Ann, AnnInstance, AnnTuple, Annotation, Instance, RelSym, Tuple, Value};

fn at(vals: Vec<Value>, anns: Vec<Ann>) -> AnnTuple {
    AnnTuple::new(Tuple::new(vals), Annotation::new(anns))
}

/// §2: the canonical solution of R(x, z) :- E(x, y) on
/// E = {(a,c1),(a,c2),(b,c3)} has R = {(a,⊥1),(a,⊥2),(b,⊥3)}.
#[test]
fn section2_canonical_solution() {
    let m = Mapping::parse("R(x:cl, z:cl) <- E(x, y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("E", &["a", "c1"]);
    s.insert_names("E", &["a", "c2"]);
    s.insert_names("E", &["b", "c3"]);
    let csol = canonical_solution(&m, &s);
    let r = csol.rel_part();
    let rel = r.relation(RelSym::new("R")).unwrap();
    assert_eq!(rel.len(), 3);
    assert_eq!(rel.nulls().len(), 3, "three distinct nulls");
    // Exactly two tuples with first attribute a, one with b.
    assert_eq!(rel.iter().filter(|t| t.get(0) == Value::c("a")).count(), 2);
    assert_eq!(rel.iter().filter(|t| t.get(0) == Value::c("b")).count(), 1);
}

/// §2 (CWA): presolution {(a,⊥),(b,⊥′)} is a CWA-solution; equating the
/// a-null and the b-null is rejected as an unjustified fact.
#[test]
fn section2_cwa_solutions() {
    let m = Mapping::parse("R(x:cl, z:cl) <- E(x, y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("E", &["a", "c1"]);
    s.insert_names("E", &["a", "c2"]);
    s.insert_names("E", &["b", "c3"]);
    let r = RelSym::new("R");
    let cl2 = vec![Ann::Closed, Ann::Closed];

    let mut good = AnnInstance::new();
    good.insert(r, at(vec![Value::c("a"), Value::null(100)], cl2.clone()));
    good.insert(r, at(vec![Value::c("b"), Value::null(101)], cl2.clone()));
    assert!(is_solution(&m, &s, &good).is_some());

    let mut bad = AnnInstance::new();
    bad.insert(r, at(vec![Value::c("a"), Value::null(100)], cl2.clone()));
    bad.insert(r, at(vec![Value::c("a"), Value::null(102)], cl2.clone()));
    bad.insert(r, at(vec![Value::c("b"), Value::null(100)], cl2.clone()));
    assert!(
        is_solution(&m, &s, &bad).is_none(),
        "a and b sharing a value is unjustified under the CWA"
    );
}

/// §3: Rep_A({(a^cl, ⊥^op)}) = all relations with first projection {a};
/// Rep_A({(a^cl, ⊥^cl)}) = one-tuple relations {(a, b)}.
#[test]
fn section3_rep_a_semantics() {
    let rel = RelSym::new("RepEx");
    // Open second position.
    let mut open = AnnInstance::new();
    open.insert(
        rel,
        at(
            vec![Value::c("a"), Value::null(0)],
            vec![Ann::Closed, Ann::Open],
        ),
    );
    let mut many = Instance::new();
    many.insert_names("RepEx", &["a", "x"]);
    many.insert_names("RepEx", &["a", "y"]);
    assert!(rep_a_membership(&open, &many).is_some());
    // Closed second position: exactly one tuple.
    let mut closed = AnnInstance::new();
    closed.insert(
        rel,
        at(
            vec![Value::c("a"), Value::null(0)],
            vec![Ann::Closed, Ann::Closed],
        ),
    );
    assert!(rep_a_membership(&closed, &many).is_none());
    let mut one = Instance::new();
    one.insert_names("RepEx", &["a", "b"]);
    assert!(rep_a_membership(&closed, &one).is_some());
}

/// §3: canonical solution with the same variable annotated differently —
/// R(x^op, z1^cl) ∧ R(x^cl, z2^op) on S = {(a, c)} gives
/// CSol_A = {(a^op, ⊥1^cl), (a^cl, ⊥2^op)}.
#[test]
fn section3_mixed_annotation_csol() {
    let m = Mapping::parse("R(x:op, z1:cl), R(x:cl, z2:op) <- E(x, y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("E", &["a", "c"]);
    let csol = canonical_solution(&m, &s);
    let r = csol.instance.relation(RelSym::new("R")).unwrap();
    let anns: Vec<Annotation> = r.iter().map(|t| t.ann.clone()).collect();
    assert_eq!(anns.len(), 2);
    assert!(anns.contains(&Annotation::new(vec![Ann::Open, Ann::Closed])));
    assert!(anns.contains(&Annotation::new(vec![Ann::Closed, Ann::Open])));
}

/// §3's Σα-solution example: R(x^op, z1^cl) ∧ R(y^cl, z2^cl) :- S(x, y)
/// with S = {(a,b)}; equating the nulls yields a Σα-solution.
#[test]
fn section3_solution_example() {
    let m = Mapping::parse("R(x:op, z1:cl), R(y:cl, z2:cl) <- Src(x, y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("Src", &["a", "b"]);
    let r = RelSym::new("R");
    let mut t = AnnInstance::new();
    t.insert(
        r,
        at(
            vec![Value::c("a"), Value::null(7)],
            vec![Ann::Open, Ann::Closed],
        ),
    );
    t.insert(
        r,
        at(
            vec![Value::c("b"), Value::null(7)],
            vec![Ann::Closed, Ann::Closed],
        ),
    );
    assert!(is_solution(&m, &s, &t).is_some());
}

/// §1: the full three-rule conference mapping and its anomaly.
#[test]
fn section1_conference_mapping() {
    let m = oc_exchange::workloads::conference::mapping();
    let s = oc_exchange::workloads::conference::source(4, 2);
    let csol = canonical_solution(&m, &s);

    // The second rule (closed review) and third rule (open review for
    // unassigned papers) fire disjointly.
    let reviews = csol.instance.relation(RelSym::new("Reviews")).unwrap();
    let n_closed = reviews.iter().filter(|t| t.ann.is_all_closed()).count();
    let n_open_snd = reviews.iter().filter(|t| t.ann.get(1) == Ann::Open).count();
    assert_eq!(n_closed, 2, "p0, p2 assigned");
    assert_eq!(n_open_snd, 2, "p1, p3 unassigned");

    // The one-author anomaly (smaller source: the CWA side must *exhaust*
    // the valuation space, which is exponential in the number of nulls).
    let s_small = oc_exchange::workloads::conference::source(2, 2);
    let q = oc_exchange::workloads::conference::one_author_query();
    let empty = Tuple::new(Vec::<Value>::new());
    assert!(!certain::certain_contains(&m, &s_small, &q, &empty, None).certain);
    assert!(certain::certain_cwa(&m, &s_small, &q, &empty).certain);
}

/// §5 example (8): employee ids and phones through SkSTDs.
#[test]
fn section5_example8() {
    let m = SkMapping::parse("T(f(em):cl, em:cl, g(em, proj):op) <- S(em, proj)").unwrap();
    let mut s = Instance::new();
    s.insert_names("S", &["John", "P1"]);
    // The paper's example member: {(001, John, 1234), (001, John, 5678)}.
    let mut t = Instance::new();
    t.insert_names("T", &["001", "John", "1234"]);
    t.insert_names("T", &["001", "John", "5678"]);
    assert!(m.membership(&s, &t).is_some());
}

/// §4 membership PTIME/NP paths agree on the conference example.
#[test]
fn membership_paths_agree() {
    let m = oc_exchange::workloads::conference::mapping().all_open();
    let s = oc_exchange::workloads::conference::source(3, 2);
    let mut t = Instance::new();
    for i in 0..3 {
        t.insert_names("Submissions", &[&format!("p{i}"), "someone"]);
        t.insert_names("Reviews", &[&format!("p{i}"), "fine"]);
    }
    assert_eq!(
        semantics::is_member(&m, &s, &t),
        semantics::is_member_via_repa(&m, &s, &t)
    );
}

/// A query through the public Query API over a materialized canonical
/// solution: naive evaluation drops null answers.
#[test]
fn naive_evaluation_over_csol() {
    let m = Mapping::parse("Sub(x:cl, z:op) <- P(x)").unwrap();
    let mut s = Instance::new();
    s.insert_names("P", &["p1"]);
    s.insert_names("P", &["p2"]);
    let csol = canonical_solution(&m, &s).rel_part();
    let q_first = Query::parse(&["x"], "exists z. Sub(x, z)").unwrap();
    assert_eq!(q_first.naive_certain_answers(&csol).len(), 2);
    let q_second = Query::parse(&["z"], "exists x. Sub(x, z)").unwrap();
    assert_eq!(
        q_second.naive_certain_answers(&csol).len(),
        0,
        "author answers are nulls and must be dropped"
    );
}
