//! Failure-injection tests: malformed inputs, exhausted budgets, failing
//! chases, and ill-formed algebra must fail loudly and precisely — never
//! silently produce wrong answers.

use oc_exchange::chase::{canonical_solution_with_deps, ChaseOutcome, Egd, Mapping, TargetDep};
use oc_exchange::core::certain;
use oc_exchange::ctables::RaExpr;
use oc_exchange::logic::datalog::{DatalogError, DatalogProgram};
use oc_exchange::logic::{parse_formula, parse_rules, Query};
use oc_exchange::solver::{search_rep_a, Completeness, SearchBudget};
use oc_exchange::{Instance, Tuple, Value};
use std::collections::BTreeSet;

// ── Parser failures carry positions and messages ───────────────────────

#[test]
fn parser_reports_position() {
    let err = parse_formula("R(x, ) & S(y)").unwrap_err();
    assert!(err.pos > 0);
    assert!(!err.msg.is_empty());
    let err2 = parse_rules("T(x:cl) <- ").unwrap_err();
    assert!(
        err2.pos >= 10,
        "error near the missing body, got {}",
        err2.pos
    );
}

#[test]
fn parser_rejects_dangling_annotation() {
    assert!(parse_rules("T(x:, y) <- R(x, y)").is_err());
    assert!(
        parse_rules("T(x:open) <- R(x)").is_err(),
        "only op/cl are annotations"
    );
}

#[test]
#[should_panic(expected = "conflicting arity")]
fn mapping_rejects_inconsistent_arity() {
    // Same relation used with different arities across rules: the schema
    // builder fails fast.
    let _ = Mapping::parse("T(x:cl) <- R(x); T(x:cl, y:cl) <- R(x) & R(y)");
}

// ── Query construction invariants ───────────────────────────────────────

#[test]
#[should_panic(expected = "free variables")]
fn query_head_must_cover_free_vars() {
    let _ = Query::parse(&["x"], "R(x, y)");
}

#[test]
#[should_panic(expected = "arity mismatch")]
fn certain_rejects_wrong_arity_tuple() {
    let m = Mapping::parse("T(x:cl) <- R(x)").unwrap();
    let q = Query::parse(&["x"], "T(x)").unwrap();
    certain::certain_contains(
        &m,
        &Instance::new(),
        &q,
        &Tuple::from_names(&["a", "b"]),
        None,
    );
}

#[test]
#[should_panic(expected = "over Const")]
fn certain_rejects_null_tuples() {
    let m = Mapping::parse("T(x:cl) <- R(x)").unwrap();
    let q = Query::parse(&["x"], "T(x)").unwrap();
    certain::certain_contains(
        &m,
        &Instance::new(),
        &q,
        &Tuple::new(vec![Value::null(1)]),
        None,
    );
}

// ── Budget exhaustion is reported, not hidden ───────────────────────────

#[test]
fn leaf_cap_reports_capped() {
    // An instance with an open null and a check that never succeeds: with a
    // tiny leaf cap the search must say Capped, not Exact.
    let m = Mapping::parse("T(x:cl, z:op) <- R(x)").unwrap();
    let mut s = Instance::new();
    for i in 0..4 {
        s.insert_names("R", &[&format!("r{i}")]);
    }
    let csol = canonical(&m, &s);
    let budget = SearchBudget {
        max_external_consts: 2,
        max_extra_tuples: 3,
        max_extra_per_template: None,
        max_candidate_pool: 4096,
        max_leaves: Some(5),
    };
    let mut never = |_: &Instance| false;
    let out = search_rep_a(&csol, &BTreeSet::new(), &budget, &mut never);
    assert!(out.witness.is_none());
    assert_eq!(out.completeness, Completeness::Capped);
    assert!(out.leaves <= 6);
}

fn canonical(m: &Mapping, s: &Instance) -> oc_exchange::AnnInstance {
    oc_exchange::chase::canonical_solution(m, s).instance
}

#[test]
fn bounded_regime_never_claims_exact() {
    // #op = 2 (undecidable regime): a negative answer must carry Bounded or
    // Capped completeness.
    let m = Mapping::parse("T(x:cl, z1:op, z2:op) <- R(x)").unwrap();
    let q = Query::boolean(parse_formula("forall x y z. (T(x, y, z) -> y = z)").unwrap());
    let mut s = Instance::new();
    s.insert_names("R", &["a"]);
    let out = certain::certain_contains(&m, &s, &q, &Tuple::new(Vec::<Value>::new()), None);
    // The query is refutable (replicate with distinct values), so certain
    // should be false; but if the default budget had missed it, the regime
    // must NOT have been Exact.
    if out.certain {
        assert_ne!(out.completeness, Completeness::Exact);
    } else {
        assert!(out.counterexample.is_some());
    }
}

// ── Chase failures ──────────────────────────────────────────────────────

#[test]
fn egd_constant_clash_reported() {
    // Exchange copies two tuples with different second components for the
    // same key; a key egd then must fail on constants.
    let m = Mapping::parse("T(x:cl, y:cl) <- R(x, y)").unwrap();
    let egd = TargetDep::Egd(Egd::parse("y = z <- T(x, y) & T(x, z)").unwrap());
    let mut s = Instance::new();
    s.insert_names("R", &["k", "v1"]);
    s.insert_names("R", &["k", "v2"]);
    let out = canonical_solution_with_deps(&m, &[egd], &s, 100);
    assert!(
        matches!(out.outcome, ChaseOutcome::Failed { .. }),
        "constant clash must fail the chase, got {:?}",
        out.outcome
    );
}

#[test]
fn chase_step_limit_reported() {
    // A non-weakly-acyclic tgd that reproduces fresh nulls forever: the
    // step limit must trip, flagged as such.
    let m = Mapping::parse("T(x:cl, z:cl) <- R(x)").unwrap();
    let tgd = TargetDep::parse("T(y:cl, z:cl) <- T(x, y)").unwrap();
    assert!(!oc_exchange::chase::is_weakly_acyclic(
        std::slice::from_ref(&tgd)
    ));
    let mut s = Instance::new();
    s.insert_names("R", &["a"]);
    let out = canonical_solution_with_deps(&m, &[tgd], &s, 10);
    assert_eq!(out.outcome, ChaseOutcome::StepLimit);
}

// ── Datalog rejects bad programs precisely ─────────────────────────────

#[test]
fn datalog_error_messages_name_the_problem() {
    let e = DatalogProgram::parse("FmWin(x) <- FmMove(x, y) & !FmWin(y)").unwrap_err();
    assert!(e.to_string().contains("stratifiable"));
    let e = DatalogProgram::parse("FmP(x, y) <- FmQ(x)").unwrap_err();
    assert!(e.to_string().contains("unsafe"));
    let e = DatalogProgram::parse("FmP(x) <- FmQ(x) | FmR(x)").unwrap_err();
    assert!(matches!(e, DatalogError::NotDatalog { .. }));
}

// ── Relational algebra arity discipline ────────────────────────────────

#[test]
fn ra_arity_errors() {
    let lookup = |r: oc_exchange::RelSym| (r == oc_exchange::RelSym::new("FmA")).then_some(2);
    // Union of arity 2 with arity 1.
    let bad = RaExpr::rel("FmA").union(RaExpr::rel("FmA").project([0]));
    assert!(bad.arity_with(&lookup).is_err());
    // Projection out of range.
    let bad2 = RaExpr::rel("FmA").project([7]);
    assert!(bad2.arity_with(&lookup).is_err());
}

// ── Sources must be ground ──────────────────────────────────────────────

#[test]
#[should_panic(expected = "over Const")]
fn sources_with_nulls_rejected() {
    let m = Mapping::parse("T(x:cl) <- R(x)").unwrap();
    let mut s = Instance::new();
    s.insert(
        oc_exchange::RelSym::new("R"),
        Tuple::new(vec![Value::null(1)]),
    );
    let _ = oc_exchange::core::semantics::is_member(&m, &s, &Instance::new());
}
