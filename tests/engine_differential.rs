//! Differential testing of the two chase engines.
//!
//! `dx_chase::NaiveChase` (rescan-everything nested loops) is the reference
//! oracle; `dx_engine::IndexedChase` (stable-id store, delta work-queue,
//! selectivity-ordered index joins) is the fast implementation. A chase
//! result is unique only up to homomorphic equivalence, so the harness
//! compares:
//!
//! * **outcomes** (satisfied / failed / step-limit kind),
//! * **cross-engine dependency satisfaction** — each engine's `satisfies`
//!   accepts the other engine's result,
//! * **homomorphic equivalence** of the annotated results, and
//! * **isomorphism of the annotated cores** (the canonical representative
//!   of the equivalence class), via `dx_chase::hom` / `core` machinery.
//!
//! The second half of the file property-tests the engine's index
//! maintenance: random insert / merge (`replace_value`) workloads against a
//! model `AnnInstance`, with `IndexedInstance::check_invariants` (full
//! index-vs-slot-table verification) after every mutation batch.

use oc_exchange::chase::chase_engine::{ChaseOutcome, ChaseResult, DEFAULT_CHASE_LIMIT};
use oc_exchange::chase::core::{ann_core_of, ann_hom_equivalent, ann_isomorphic};
use oc_exchange::chase::target_deps::TargetDep;
use oc_exchange::chase::{canonical_solution_with_deps_via, ChaseStrategy, Mapping, NaiveChase};
use oc_exchange::engine::{IndexedChase, IndexedInstance, Inserted};
use oc_exchange::workloads::{conference, copying, random_gen};
use oc_exchange::{Ann, AnnInstance, AnnTuple, Annotation, Instance, RelSym, Schema, Tuple, Value};
use rand::Rng;

/// Chase the same exchange problem with both engines.
fn chase_both(
    mapping: &Mapping,
    deps: &[TargetDep],
    source: &Instance,
) -> (ChaseResult, ChaseResult) {
    let naive =
        canonical_solution_with_deps_via(&NaiveChase, mapping, deps, source, DEFAULT_CHASE_LIMIT);
    let indexed =
        canonical_solution_with_deps_via(&IndexedChase, mapping, deps, source, DEFAULT_CHASE_LIMIT);
    (naive, indexed)
}

/// The full cross-engine agreement check for one case.
fn assert_agreement(case: &str, deps: &[TargetDep], naive: &ChaseResult, indexed: &ChaseResult) {
    assert_eq!(
        std::mem::discriminant(&naive.outcome),
        std::mem::discriminant(&indexed.outcome),
        "{case}: outcomes diverge: naive {:?} vs indexed {:?}\nnaive result:\n{}\nindexed result:\n{}",
        naive.outcome,
        indexed.outcome,
        naive.instance,
        indexed.instance,
    );
    assert!(
        !matches!(naive.outcome, ChaseOutcome::StepLimit),
        "{case}: weakly acyclic deps must terminate"
    );
    if naive.outcome != ChaseOutcome::Satisfied {
        return; // failed chases carry best-effort instances; nothing more to compare
    }
    // Cross-engine satisfaction: each engine accepts both results.
    for (engine_name, engine) in [
        ("naive", &NaiveChase as &dyn ChaseStrategy),
        ("indexed", &IndexedChase as &dyn ChaseStrategy),
    ] {
        assert!(
            engine.satisfies(&naive.instance, deps),
            "{case}: {engine_name} rejects the naive result"
        );
        assert!(
            engine.satisfies(&indexed.instance, deps),
            "{case}: {engine_name} rejects the indexed result"
        );
    }
    // Same solution up to homomorphic equivalence…
    assert!(
        ann_hom_equivalent(&naive.instance, &indexed.instance),
        "{case}: results are not hom-equivalent\nnaive:\n{}\nindexed:\n{}",
        naive.instance,
        indexed.instance,
    );
    // …and the canonical representatives (annotated cores) are isomorphic.
    let core_n = ann_core_of(&naive.instance).core;
    let core_i = ann_core_of(&indexed.instance).core;
    assert!(
        ann_isomorphic(&core_n, &core_i).is_some(),
        "{case}: cores are not isomorphic\nnaive core:\n{core_n}\nindexed core:\n{core_i}",
    );
}

/// ≥ 100 randomized exchange-with-constraints problems: random annotated
/// mapping, random ground source, random weakly acyclic tgd/egd set.
#[test]
fn differential_chase_random_cases() {
    let schema = Schema::from_pairs([("DfA", 2), ("DfB", 1)]);
    let mut satisfied = 0usize;
    let mut failed = 0usize;
    let mut with_steps = 0usize;
    for seed in 0..140u64 {
        let mut rng = random_gen::rng(seed);
        let m = random_gen::random_mapping(&schema, 1, 0.5, &mut rng);
        let s = random_gen::random_instance(&schema, rng.gen_range(1..4), 3, &mut rng);
        let deps = random_gen::random_target_deps(&m.target, 3, 0.4, &mut rng);
        let (naive, indexed) = chase_both(&m, &deps, &s);
        match naive.outcome {
            ChaseOutcome::Satisfied => satisfied += 1,
            ChaseOutcome::Failed { .. } => failed += 1,
            ChaseOutcome::StepLimit => {}
        }
        if naive.steps > 0 {
            with_steps += 1;
        }
        assert_agreement(&format!("seed {seed}"), &deps, &naive, &indexed);
    }
    // The generator must actually exercise the engine, not vacuously pass.
    assert!(satisfied >= 80, "only {satisfied} satisfied cases");
    assert!(with_steps >= 40, "only {with_steps} cases actually chased");
    assert!(
        satisfied + failed == 140,
        "weak acyclicity must rule out step limits"
    );
}

/// The copying workload (§4's lower-bound carrier) with FDs and symmetry
/// dependencies over the copied relations, at growing sizes.
#[test]
fn differential_chase_copying_workload() {
    let schema = Schema::from_pairs([("DcE", 2)]);
    let m = copying::copy_mapping(&schema, Ann::Closed);
    let deps = TargetDep::parse_many(
        "DcE_p(y:cl, x:cl) <- DcE_p(x, y); \
         DcT(x:cl, z:op) <- DcE_p(x, y); \
         z1 = z2 <- DcT(x, z1) & DcT(x, z2)",
    )
    .unwrap();
    for n in [2usize, 5, 10, 20] {
        let mut s = Instance::new();
        for i in 0..n {
            s.insert_names("DcE", &[&format!("v{i}"), &format!("v{}", i + 1)]);
        }
        let (naive, indexed) = chase_both(&m, &deps, &s);
        assert_eq!(naive.outcome, ChaseOutcome::Satisfied);
        // Symmetry doubles the edges; DcT invents one null per vertex with
        // the FD collapsing per-source duplicates.
        assert_agreement(&format!("copying n={n}"), &deps, &naive, &indexed);
    }
}

/// The §1 conference (membership-workload) mapping with review-uniqueness
/// and submission-invention dependencies.
#[test]
fn differential_chase_conference_workload() {
    let m = conference::mapping();
    let deps = TargetDep::parse_many(
        "Decisions(p:cl, d:op) <- Reviews(p, r); \
         d1 = d2 <- Decisions(p, d1) & Decisions(p, d2)",
    )
    .unwrap();
    for n in [2usize, 6, 12] {
        let s = conference::source(n, 2);
        let (naive, indexed) = chase_both(&m, &deps, &s);
        assert_eq!(naive.outcome, ChaseOutcome::Satisfied);
        let decisions = naive
            .instance
            .relation(RelSym::new("Decisions"))
            .expect("chase invents decisions");
        assert_eq!(decisions.len(), n, "one merged decision per paper");
        assert_agreement(&format!("conference n={n}"), &deps, &naive, &indexed);
    }
}

/// Egd-heavy differential: constant/constant clashes must fail in both
/// engines, null merges must agree.
#[test]
fn differential_chase_failure_cases() {
    let m = Mapping::parse("DfR(x:cl, y:cl) <- DfS(x, y)").unwrap();
    let deps = TargetDep::parse_many("y1 = y2 <- DfR(x, y1) & DfR(x, y2)").unwrap();
    // Clash: (a, k) and (a, l).
    let mut clash = Instance::new();
    clash.insert_names("DfS", &["a", "k"]);
    clash.insert_names("DfS", &["a", "l"]);
    let (naive, indexed) = chase_both(&m, &deps, &clash);
    assert!(matches!(naive.outcome, ChaseOutcome::Failed { .. }));
    assert!(matches!(indexed.outcome, ChaseOutcome::Failed { .. }));
    // No clash: keys are unique.
    let mut ok = Instance::new();
    ok.insert_names("DfS", &["a", "k"]);
    ok.insert_names("DfS", &["b", "l"]);
    let (naive, indexed) = chase_both(&m, &deps, &ok);
    assert_agreement("unique keys", &deps, &naive, &indexed);
}

// ---------------------------------------------------------------------------
// Index-maintenance property tests
// ---------------------------------------------------------------------------

/// Apply `replace_value` semantics to a model instance.
fn model_replace(model: &AnnInstance, from: Value, to: Value) -> AnnInstance {
    let mut out = AnnInstance::new();
    for (rel, arel) in model.relations() {
        for at in arel.iter() {
            let vals: Vec<Value> = at
                .tuple
                .iter()
                .map(|v| if v == from { to } else { v })
                .collect();
            out.insert(rel, AnnTuple::new(Tuple::new(vals), at.ann.clone()));
        }
        for m in arel.empty_marks() {
            out.insert_empty_mark(rel, m.clone());
        }
    }
    out
}

/// Random insert / merge workloads: after every mutation the indexed store
/// must (a) pass full invariant verification and (b) agree with a model
/// `AnnInstance` maintained by the straightforward definition. The
/// egd-style null merge (`replace_value`) is the tricky path: it retracts,
/// rewrites, re-inserts, and may collide rewritten tuples with live ones.
#[test]
fn index_maintenance_under_insert_and_merge() {
    let rels = [
        (RelSym::new("ImR"), 2usize),
        (RelSym::new("ImS"), 3usize),
        (RelSym::new("ImU"), 1usize),
    ];
    for seed in 0..120u64 {
        let mut rng = random_gen::rng(seed + 10_000);
        let mut store = IndexedInstance::new();
        let mut model = AnnInstance::new();
        let value_pool = |rng: &mut rand::rngs::StdRng| -> Value {
            if rng.gen_bool(0.45) {
                Value::null(rng.gen_range(0..5u32))
            } else {
                Value::c(["a", "b", "c"][rng.gen_range(0..3)])
            }
        };
        for _op in 0..rng.gen_range(5..25) {
            if rng.gen_bool(0.7) || model.tuple_count() == 0 {
                // Insert a random annotated tuple.
                let (rel, arity) = rels[rng.gen_range(0..rels.len())];
                let vals: Vec<Value> = (0..arity).map(|_| value_pool(&mut rng)).collect();
                let ann = Annotation::new(
                    (0..arity)
                        .map(|_| {
                            if rng.gen_bool(0.5) {
                                Ann::Closed
                            } else {
                                Ann::Open
                            }
                        })
                        .collect::<Vec<_>>(),
                );
                let at = AnnTuple::new(Tuple::new(vals), ann);
                let was_new = model.insert(rel, at.clone());
                let inserted = store.insert(rel, at);
                assert_eq!(
                    was_new,
                    matches!(inserted, Inserted::Fresh(_)),
                    "seed {seed}: dedup disagrees with model"
                );
            } else {
                // Merge a null into another value (the egd path).
                let nulls: Vec<_> = model.nulls().into_iter().collect();
                if nulls.is_empty() {
                    continue;
                }
                let from = Value::Null(nulls[rng.gen_range(0..nulls.len())]);
                let to = value_pool(&mut rng);
                if from == to {
                    continue;
                }
                model = model_replace(&model, from, to);
                store.replace_value(from, to);
            }
            store
                .check_invariants()
                .unwrap_or_else(|e| panic!("seed {seed}: invariant violated: {e}"));
            assert_eq!(
                store.to_ann(),
                model,
                "seed {seed}: store diverged from model"
            );
        }
        // Dead slots accumulate but live counts match the model exactly.
        assert_eq!(store.live_count(), model.tuple_count());
    }
}

/// Merge chains: repeatedly merging nulls into one another (including
/// null → null and null → constant hops) keeps indexes consistent and ends
/// fully merged.
#[test]
fn index_maintenance_merge_chains() {
    let r = RelSym::new("ImChain");
    for seed in 0..40u64 {
        let mut rng = random_gen::rng(seed + 99_000);
        let mut store = IndexedInstance::new();
        let n = rng.gen_range(3..8u32);
        for i in 0..n {
            store.insert(
                r,
                AnnTuple::new(
                    Tuple::new(vec![Value::c("k"), Value::null(i)]),
                    Annotation::all_closed(2),
                ),
            );
        }
        // Chain ⊥0 ← ⊥1 ← … then ⊥0 → constant.
        for i in (1..n).rev() {
            store.replace_value(Value::null(i), Value::null(i - 1));
            store.check_invariants().unwrap();
        }
        store.replace_value(Value::null(0), Value::c("done"));
        store.check_invariants().unwrap();
        assert_eq!(store.live_count(), 1, "seed {seed}: everything merges");
        let final_ann = store.to_ann();
        let only = final_ann.tuples(r).next().unwrap();
        assert_eq!(only.tuple, Tuple::from_names(&["k", "done"]));
    }
}
