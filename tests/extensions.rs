//! Tests for the paper's §6 extensions and the engine fast paths built for
//! them: 1-to-m bounded open nulls, and the Lemma 3 embedding fast path.

use oc_exchange::chase::Mapping;
use oc_exchange::core::{certain, compose};
use oc_exchange::logic::Query;
use oc_exchange::solver::{find_embedding_valuation, Completeness};
use oc_exchange::{Instance, RelSym, Tuple, Value};

fn fd_query() -> Query {
    Query::boolean(
        oc_exchange::logic::parse_formula("forall x y1 y2. (R(x, y1) & R(x, y2) -> y1 = y2)")
            .unwrap(),
    )
}

fn unary_source(n: usize) -> Instance {
    let mut s = Instance::new();
    for i in 0..n {
        s.insert_names("E", &[&format!("e{i}")]);
    }
    s
}

/// §6: with m = 1, the 1-to-m semantics coincides with the CWA.
#[test]
fn one_to_m_at_one_is_cwa() {
    let open = Mapping::parse("R(x:cl, z:op) <- E(x)").unwrap();
    let s = unary_source(2);
    let q = fd_query();
    let empty = Tuple::new(Vec::<Value>::new());
    let m1 = certain::certain_contains_one_to_m(&open, &s, &q, &empty, 1);
    let cwa = certain::certain_cwa(&open, &s, &q, &empty);
    assert_eq!(m1.certain, cwa.certain);
    assert!(m1.certain, "one value per null: the FD holds");
    assert_eq!(m1.completeness, Completeness::Exact);
}

/// §6: m = 2 already lets an open null take two values, refuting the FD.
#[test]
fn one_to_m_at_two_refutes_fd() {
    let open = Mapping::parse("R(x:cl, z:op) <- E(x)").unwrap();
    let s = unary_source(1);
    let q = fd_query();
    let empty = Tuple::new(Vec::<Value>::new());
    let m2 = certain::certain_contains_one_to_m(&open, &s, &q, &empty, 2);
    assert!(!m2.certain);
    let cex = m2.counterexample.expect("counterexample");
    // The counterexample has exactly 2 values for the single key (1-to-2).
    assert_eq!(cex.relation(RelSym::new("R")).unwrap().len(), 2);
}

/// §6: certain answers shrink monotonically in m (larger m = more
/// counterexample instances).
#[test]
fn one_to_m_monotone_in_m() {
    let open = Mapping::parse("R(x:cl, z:op) <- E(x)").unwrap();
    let s = unary_source(2);
    let queries = [
        "forall x y1 y2. (R(x, y1) & R(x, y2) -> y1 = y2)",
        "forall x y1 y2 y3. (R(x, y1) & R(x, y2) & R(x, y3) \
         -> (y1 = y2 | y1 = y3 | y2 = y3))", // "at most 2 values"
    ];
    let empty = Tuple::new(Vec::<Value>::new());
    for src in queries {
        let q = Query::boolean(oc_exchange::logic::parse_formula(src).unwrap());
        let mut prev = true;
        for m in 1..=3 {
            let out = certain::certain_contains_one_to_m(&open, &s, &q, &empty, m);
            assert!(
                !out.certain || prev,
                "{src}: certain at m={m} but not at m-1 — not monotone"
            );
            prev = out.certain;
        }
    }
}

/// §6: "at most 2 values" is certain under 1-to-2 but not under 1-to-3.
#[test]
fn one_to_m_thresholds() {
    let open = Mapping::parse("R(x:cl, z:op) <- E(x)").unwrap();
    let s = unary_source(1);
    let at_most_two = Query::boolean(
        oc_exchange::logic::parse_formula(
            "forall x y1 y2 y3. (R(x, y1) & R(x, y2) & R(x, y3) \
             -> (y1 = y2 | y1 = y3 | y2 = y3))",
        )
        .unwrap(),
    );
    let empty = Tuple::new(Vec::<Value>::new());
    assert!(certain::certain_contains_one_to_m(&open, &s, &at_most_two, &empty, 2).certain);
    assert!(!certain::certain_contains_one_to_m(&open, &s, &at_most_two, &empty, 3).certain);
}

/// The embedding CSP: v(T) ⊆ R with shared nulls across relations.
#[test]
fn embedding_valuation_shared_nulls() {
    let mut t = Instance::new();
    t.insert(
        RelSym::new("A"),
        Tuple::new(vec![Value::c("a"), Value::null(0)]),
    );
    t.insert(RelSym::new("B"), Tuple::new(vec![Value::null(0)]));
    let mut r = Instance::new();
    r.insert_names("A", &["a", "k"]);
    r.insert_names("A", &["a", "l"]);
    r.insert_names("B", &["l"]);
    let v = find_embedding_valuation(&t, &r).expect("embedding exists");
    assert_eq!(v.get(oc_exchange::NullId(0)).unwrap().name(), "l");
    // No consistent choice: B only has "z".
    let mut r2 = Instance::new();
    r2.insert_names("A", &["a", "k"]);
    r2.insert_names("B", &["z"]);
    assert!(find_embedding_valuation(&t, &r2).is_none());
}

/// The Lemma 3 fast path (copy-like Δ) agrees with the generic valuation
/// search on an exhaustive small universe.
#[test]
fn embedding_fast_path_agrees_with_generic() {
    let sigma = Mapping::parse("M(x:cl, z:op) <- E(x, y)").unwrap();
    // Copy-like Δ → fast path.
    let fast_delta = Mapping::parse("F(x:op, y:op) <- M(x, y)").unwrap();
    // Equivalent Δ with a redundant second atom → generic path (multi-atom
    // body disables the preimage shortcut).
    let slow_delta = Mapping::parse("F(x:op, y:op) <- M(x, y) & M(x, y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("E", &["a", "b"]);
    let consts = ["a", "k", "l"];
    for c1 in consts {
        for c2 in consts {
            let mut w = Instance::new();
            w.insert_names("F", &[c1, c2]);
            let fast = compose::comp_membership(&sigma, &fast_delta, &s, &w, None);
            let slow = compose::comp_membership(&sigma, &slow_delta, &s, &w, None);
            assert_eq!(fast.path, compose::CompPath::MonotoneOpen);
            assert_eq!(
                fast.member, slow.member,
                "fast/generic disagreement on W = {w}"
            );
        }
    }
}

/// Σ-nulls that Δ ignores are unconstrained: membership holds for any W
/// covering the Δ-relevant part.
#[test]
fn embedding_ignores_irrelevant_nulls() {
    // Σ produces M and an unrelated relation K with its own null.
    let sigma = Mapping::parse("M(x:cl, z:op) <- E(x, y); K(w:cl) <- E(x, w)").unwrap();
    let delta = Mapping::parse("F(x:op, y:op) <- M(x, y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("E", &["a", "b"]);
    let mut w = Instance::new();
    w.insert_names("F", &["a", "anything"]);
    let out = compose::comp_membership(&sigma, &delta, &s, &w, None);
    assert!(out.member);
    let j = out.intermediate.expect("intermediate produced");
    assert!(j.is_ground(), "reported intermediate must be over Const");
}
