//! Differential testing of the streaming delta protocol
//! (`DESIGN.md §Streaming data exchange`).
//!
//! The first half sweeps generated scenarios (4 grades × 12 seeds) and, for
//! every ground-source one, drives a [`StreamSession`] through an extended
//! update trace: the scenario's own `.dx` `update` blocks followed by six
//! synthesized churn batches (seeded xorshift — inserts over the `c{i}`
//! constant palette, retractions replayed against earlier inserts so they
//! actually hit). After **every** batch the incrementally maintained state
//! is raced against recompute-from-scratch:
//!
//! * the maintained `CSol_A(S)` must be hom-equivalent to a fresh chase of
//!   the rolling source (annotations included), and
//! * every registered query's maintained certain answers must equal
//!   `certain_answers` recomputed from scratch under the same budget.
//!
//! The second half pins the retraction edge cases the protocol documents:
//! retract-then-reinsert round-trips, retraction feeding an egd-merged
//! null (the merged-taint rebuild arm), empty-delta no-ops, and
//! interleaved update/query determinism across pool widths.

use oc_exchange::chase::chase_engine::{ChaseOutcome, DEFAULT_CHASE_LIMIT};
use oc_exchange::chase::core::ann_hom_equivalent;
use oc_exchange::chase::{canonical_solution, canonical_solution_with_deps_via, Mapping};
use oc_exchange::core::certain::certain_answers;
use oc_exchange::core::streaming::{QueryPath, StreamRegime, StreamSession};
use oc_exchange::engine::IndexedChase;
use oc_exchange::relation::{Instance, RelSym, Tuple, Update};
use oc_exchange::solver::{Completeness, SearchBudget};
use oc_exchange::text::{gen, Grade, Scenario};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// The generated-corpus sweep: ≥30 ground scenarios × extended update traces.
// ---------------------------------------------------------------------------

/// The corpus harness's oracle budget (`dx_bench::corpus`): closed-world
/// enumeration for all-closed mappings, a bounded Prop 5 sweep otherwise.
fn scenario_budget(sc: &Scenario) -> SearchBudget {
    if sc.mapping.is_all_closed() {
        SearchBudget::closed_world()
    } else {
        SearchBudget {
            max_leaves: Some(5_000),
            ..SearchBudget::bounded(1, 1)
        }
    }
}

/// Deterministic xorshift64* — the trace synthesizer's only entropy.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Six synthesized batches over the scenario's source schema: inserts draw
/// from the generator's `c{i}` constant palette (plus fresh `s{i}` names so
/// the genericity palette actually moves), retractions replay earlier
/// inserts so the effective delta is nonempty.
fn synth_batches(sc: &Scenario, rng: &mut Rng) -> Vec<Update> {
    let rels: Vec<(RelSym, usize)> = sc.mapping.source.iter().collect();
    let mut inserted: Vec<(RelSym, Tuple)> = Vec::new();
    let mut batches = Vec::new();
    for b in 0..6 {
        let mut up = Update::new();
        for _ in 0..1 + rng.below(2) {
            let (rel, arity) = rels[rng.below(rels.len())];
            let names: Vec<String> = (0..arity)
                .map(|_| {
                    if rng.below(5) == 0 {
                        format!("s{b}")
                    } else {
                        format!("c{}", rng.below(6))
                    }
                })
                .collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let t = Tuple::from_names(&refs);
            inserted.push((rel, t.clone()));
            up.insert(rel, t);
        }
        if b >= 2 && !inserted.is_empty() {
            let (rel, t) = inserted.swap_remove(rng.below(inserted.len()));
            up.retract(rel, t);
        }
        batches.push(up);
    }
    batches
}

/// Race one scenario's full trace; returns the number of batches raced.
fn race_streaming(sc: &Scenario, seed: u64) -> usize {
    let budget = scenario_budget(sc);
    let mut sess = StreamSession::new(
        sc.mapping.clone(),
        sc.constraints.clone(),
        sc.source.clone(),
    );
    sess.set_search_budget(Some(budget.clone()));
    for nq in &sc.queries {
        sess.register(&nq.name, nq.query.clone(), StreamRegime::Certain);
    }
    let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDA7A);
    let mut trace: Vec<Update> = sc.updates.iter().map(|nu| nu.update.clone()).collect();
    trace.extend(synth_batches(sc, &mut rng));
    let mut rolling = sc.source.clone();
    for (i, up) in trace.iter().enumerate() {
        sess.update(up);
        up.apply(&mut rolling);
        let ctx = format!("{} batch {i}", sc.name);
        // Maintained CSol_A(S) vs a fresh chase of the rolling source.
        if sc.constraints.is_empty() {
            let scratch = canonical_solution(&sc.mapping, &rolling);
            assert!(
                ann_hom_equivalent(sess.exchange().csol(), &scratch.instance),
                "{ctx}: maintained csol diverged from scratch"
            );
        } else {
            let scratch = canonical_solution_with_deps_via(
                &IndexedChase,
                &sc.mapping,
                &sc.constraints,
                &rolling,
                DEFAULT_CHASE_LIMIT,
            );
            let outcome = sess.exchange().chase_outcome();
            assert_eq!(
                std::mem::discriminant(&outcome),
                std::mem::discriminant(&scratch.outcome),
                "{ctx}: chase outcomes diverged"
            );
            if matches!(outcome, ChaseOutcome::Satisfied) {
                assert!(
                    ann_hom_equivalent(&sess.exchange().chased(), &scratch.instance),
                    "{ctx}: maintained chased instance diverged from scratch"
                );
            }
        }
        // Maintained certain answers vs recompute-from-scratch. A *capped*
        // sweep is cut off mid-enumeration, and the enumeration order is
        // legitimately permuted by the maintained csol's renamed nulls
        // (DRed re-derivation mints fresh ids), so identity is guaranteed —
        // and asserted — only for completed (Exact / Bounded) outcomes on
        // both sides; see `DESIGN.md §Streaming data exchange`.
        for nq in &sc.queries {
            let (maintained, mcomp) = sess.answers(&nq.name).expect("registered");
            let (oracle, ocomp) = certain_answers(&sc.mapping, &rolling, &nq.query, Some(&budget));
            if mcomp == Completeness::Capped || ocomp == Completeness::Capped {
                continue;
            }
            assert_eq!(
                maintained, oracle,
                "{ctx} query {}: maintained answers diverged from recompute",
                nq.name
            );
        }
    }
    trace.len()
}

#[test]
fn generated_traces_match_recompute_from_scratch() {
    let mut raced_scenarios = 0usize;
    let mut raced_batches = 0usize;
    for grade in Grade::ALL {
        for seed in 0..12u64 {
            let sc = gen(seed, grade);
            if !sc.source.is_ground() {
                continue;
            }
            raced_scenarios += 1;
            raced_batches += race_streaming(&sc, seed);
        }
    }
    assert!(
        raced_scenarios >= 30,
        "the sweep must race ≥30 scenarios (got {raced_scenarios})"
    );
    assert!(raced_batches >= raced_scenarios * 6);
}

// ---------------------------------------------------------------------------
// Retraction edge cases.
// ---------------------------------------------------------------------------

fn answer_names(sess: &StreamSession, name: &str) -> BTreeSet<Vec<String>> {
    let (rel, _) = sess.answers(name).expect("registered");
    rel.iter()
        .map(|t| t.iter().map(|v| format!("{v}")).collect())
        .collect()
}

#[test]
fn retract_then_reinsert_round_trips() {
    let mapping = Mapping::parse("SdT(x:cl, z:op) <- SdE(x, y)").unwrap();
    let mut source = Instance::new();
    source.insert_names("SdE", &["a", "b"]);
    source.insert_names("SdE", &["c", "d"]);
    let q = oc_exchange::logic::Query::parse(&["x"], "exists z. SdT(x, z)").unwrap();
    let mut sess = StreamSession::new(mapping.clone(), Vec::new(), source.clone());
    sess.register("q", q.clone(), StreamRegime::Certain);
    let before = answer_names(&sess, "q");

    let out = Update::new().retract_names("SdE", &["a", "b"]);
    let back = Update::new().insert_names("SdE", &["a", "b"]);
    sess.update(&out);
    assert_eq!(answer_names(&sess, "q"), [vec!["c".to_string()]].into());
    sess.update(&back);
    assert_eq!(
        answer_names(&sess, "q"),
        before,
        "retract-then-reinsert must round-trip the answer set"
    );
    // And the maintained csol is hom-equivalent to scratch (null ids may
    // differ — the reinserted justification mints a fresh null).
    let scratch = canonical_solution(&mapping, &source);
    assert!(ann_hom_equivalent(
        sess.exchange().csol(),
        &scratch.instance
    ));
}

#[test]
fn retraction_feeding_a_merged_null_rebuilds_soundly() {
    // Two rules feed MgT; the egd merges their nulls through the shared
    // key. Retracting one feeder after the merge hits the merged-taint
    // rebuild arm: the surviving justification must keep its null.
    let mapping = Mapping::parse("MgT(x:cl, z:op) <- MgE(x); MgT(x:cl, z:op) <- MgF(x)").unwrap();
    let constraints =
        oc_exchange::chase::TargetDep::parse_many("a = b <- MgT(x, a) & MgT(x, b)").unwrap();
    let mut source = Instance::new();
    source.insert_names("MgE", &["k"]);
    source.insert_names("MgF", &["k"]);
    let q = oc_exchange::logic::Query::parse(&["x"], "exists z. MgT(x, z)").unwrap();
    let mut sess = StreamSession::new(mapping.clone(), constraints.clone(), source.clone());
    sess.set_search_budget(Some(SearchBudget::bounded(1, 1)));
    sess.register("q", q.clone(), StreamRegime::Certain);

    let up = Update::new().retract_names("MgF", &["k"]);
    sess.update(&up);
    let mut rolling = source.clone();
    up.apply(&mut rolling);
    let scratch = canonical_solution_with_deps_via(
        &IndexedChase,
        &mapping,
        &constraints,
        &rolling,
        DEFAULT_CHASE_LIMIT,
    );
    assert_eq!(scratch.outcome, ChaseOutcome::Satisfied);
    assert!(
        ann_hom_equivalent(&sess.exchange().chased(), &scratch.instance),
        "retracting a merged-null feeder must rebuild to the scratch chase"
    );
    assert_eq!(answer_names(&sess, "q"), [vec!["k".to_string()]].into());
}

#[test]
fn empty_effective_delta_is_a_no_op_and_skips_every_query() {
    let mapping = Mapping::parse("NpT(x:cl, y:cl) <- NpE(x, y)").unwrap();
    let mut source = Instance::new();
    source.insert_names("NpE", &["a", "b"]);
    let q = oc_exchange::logic::Query::parse(&["x"], "exists y. NpT(x, y)").unwrap();
    let mut sess = StreamSession::new(mapping, Vec::new(), source);
    sess.register("q", q, StreamRegime::Certain);
    let before = answer_names(&sess, "q");

    // Insert an already-present tuple, retract an absent one: the
    // effective delta is empty, so nothing may move and every query skips.
    let up = Update::new()
        .insert_names("NpE", &["a", "b"])
        .retract_names("NpE", &["z", "w"]);
    let report = sess.update(&up);
    assert!(report.update.added.is_empty() && report.update.removed.is_empty());
    assert!(
        report
            .queries
            .iter()
            .all(|(_, p)| matches!(p, QueryPath::Skipped)),
        "an empty delta must skip every registered query: {:?}",
        report.queries
    );
    assert_eq!(answer_names(&sess, "q"), before);
}

#[test]
fn interleaved_updates_and_queries_are_deterministic_across_pool_widths() {
    // The same interleaved update/query trace, replayed at pool widths 1
    // and 4: every intermediate answer set must be byte-identical.
    let run_trace = || -> Vec<BTreeSet<Vec<String>>> {
        let mapping = Mapping::parse("DetT(x:cl, y:cl) <- DetE(x, y)").unwrap();
        let mut source = Instance::new();
        source.insert_names("DetE", &["v0", "v1"]);
        let q = oc_exchange::logic::Query::parse(&["x", "z"], "exists y. DetT(x, y) & DetT(y, z)")
            .unwrap();
        let mut sess = StreamSession::new(mapping, Vec::new(), source);
        sess.register("hops", q, StreamRegime::Certain);
        let mut observed = Vec::new();
        for i in 1..6usize {
            let grow =
                Update::new().insert_names("DetE", &[&format!("v{i}"), &format!("v{}", i + 1)]);
            sess.update(&grow);
            observed.push(answer_names(&sess, "hops"));
            if i % 2 == 0 {
                let churn = Update::new()
                    .retract_names("DetE", &[&format!("v{}", i - 1), &format!("v{i}")]);
                sess.update(&churn);
                observed.push(answer_names(&sess, "hops"));
            }
        }
        observed
    };
    rayon::set_threads(1);
    let pinned = run_trace();
    rayon::set_threads(4);
    let pooled = run_trace();
    rayon::set_threads(0);
    assert_eq!(
        pinned, pooled,
        "interleaved update/query traces must not depend on the pool width"
    );
    // The trace actually moved: hop answers appear and later shrink.
    assert!(pinned.iter().any(|s| !s.is_empty()));
    assert!(pinned.windows(2).any(|w| w[1].len() < w[0].len()));
}
