//! Cross-validation of the two exact CWA certain-answer engines:
//!
//! * the **coNP valuation search** of `dx-core::certain` (Theorem 3(1)'s
//!   witness space), driven by FO queries;
//! * the **conditional-table** route of `dx-core::ctable_bridge`
//!   (Imieliński–Lipski, the §2-cited representation mechanism), driven by
//!   equivalent relational-algebra queries.
//!
//! Each test pairs an FO query with its RA translation by hand and asserts
//! the two engines produce identical certain-answer relations on the same
//! mapping and source. Agreement of two independent exact algorithms is
//! strong evidence for both.

use oc_exchange::chase::Mapping;
use oc_exchange::core::certain;
use oc_exchange::core::ctable_bridge::{certain_answers_cwa_ra, possible_answers_cwa_ra};
use oc_exchange::ctables::{RaExpr, RaPred};
use oc_exchange::logic::Query;
use oc_exchange::workloads::random_gen;
use oc_exchange::{Instance, Relation, Schema};

/// Collect the FO engine's certain answers for a unary query.
fn fo_certain(m: &Mapping, s: &Instance, q: &Query) -> Relation {
    let (rel, comp) = certain::certain_answers(m, s, q, None);
    assert_eq!(comp, dx_solver::Completeness::Exact);
    rel
}

/// `Q(x) = T(x) ∧ ¬S(x)` vs `T ∖ S` on an exchange inventing nulls.
#[test]
fn difference_query_agreement() {
    let m = Mapping::parse("XcT(x:cl) <- XcA(x, y); XcS(z:cl) <- XcB(y, z)").unwrap();
    let mut s = Instance::new();
    s.insert_names("XcA", &["a", "1"]);
    s.insert_names("XcA", &["b", "2"]);
    s.insert_names("XcB", &["3", "a"]);
    let fo = Query::parse(&["x"], "XcT(x) & !XcS(x)").unwrap();
    let ra = RaExpr::rel("XcT").diff(RaExpr::rel("XcS"));
    let via_search = fo_certain(&m, &s, &fo);
    let via_ctable = certain_answers_cwa_ra(&m, &s, &ra);
    assert_eq!(via_search, via_ctable);
    // b survives (a is certainly in XcS via the copied constant).
    assert!(via_ctable.contains(&oc_exchange::Tuple::from_names(&["b"])));
}

/// Join + selection with a constant vs its RA form, on a mapping that both
/// copies and invents.
#[test]
fn join_selection_agreement() {
    let m = Mapping::parse("XcR(x:cl, y:cl) <- XcE(x, y); XcR(x:cl, z:cl) <- XcLoner(x)").unwrap();
    let mut s = Instance::new();
    s.insert_names("XcE", &["a", "b"]);
    s.insert_names("XcE", &["b", "b"]);
    s.insert_names("XcLoner", &["c"]);
    // Q(x): ∃y (R(x,y) ∧ y = 'b')
    let fo = Query::parse(&["x"], "exists y. XcR(x, y) & y = 'b'").unwrap();
    let ra = RaExpr::rel("XcR")
        .select(RaPred::col_is(1, "b"))
        .project([0]);
    assert_eq!(fo_certain(&m, &s, &fo), certain_answers_cwa_ra(&m, &s, &ra));
}

/// Randomized agreement over many small mappings and sources, with a fixed
/// query pair (difference — the canonical naive-evaluation breaker).
/// Mappings are sampled from all-closed rule templates that copy, project,
/// and invent nulls.
#[test]
fn randomized_difference_agreement() {
    use rand::Rng;
    let schema = Schema::from_pairs([("XcA", 2), ("XcB", 1)]);
    let p_rules = [
        "XcP(x:cl) <- XcA(x, y)",
        "XcP(y:cl) <- XcA(x, y)",
        "XcP(z:cl) <- XcA(x, y)",
        "XcP(x:cl) <- XcB(x)",
    ];
    let q_rules = [
        "XcQ(x:cl) <- XcA(x, y)",
        "XcQ(y:cl) <- XcA(x, y)",
        "XcQ(z:cl) <- XcA(x, y)",
        "XcQ(x:cl) <- XcB(x)",
    ];
    let fo = Query::parse(&["x"], "XcP(x) & !XcQ(x)").unwrap();
    let ra = RaExpr::rel("XcP").diff(RaExpr::rel("XcQ"));
    for seed in 0..40u64 {
        let mut rng = random_gen::rng(seed);
        let rules = format!(
            "{}; {}",
            p_rules[rng.gen_range(0..p_rules.len())],
            q_rules[rng.gen_range(0..q_rules.len())],
        );
        let m = Mapping::parse(&rules).unwrap();
        assert!(m.is_all_closed());
        let s = random_gen::random_instance(&schema, 3, 3, &mut rng);
        let via_search = fo_certain(&m, &s, &fo);
        let via_ctable = certain_answers_cwa_ra(&m, &s, &ra);
        assert_eq!(via_search, via_ctable, "seed {seed}, rules `{rules}`");
    }
}

/// Possible answers are a superset of certain answers and contain every
/// copied constant.
#[test]
fn possible_superset_of_certain() {
    let m = Mapping::parse("XcT2(x:cl, z:cl) <- XcA(x, y)").unwrap();
    let mut s = Instance::new();
    s.insert_names("XcA", &["a", "1"]);
    s.insert_names("XcA", &["b", "2"]);
    let ra = RaExpr::rel("XcT2").project([0]);
    let certain = certain_answers_cwa_ra(&m, &s, &ra);
    let possible = possible_answers_cwa_ra(&m, &s, &ra);
    for t in certain.iter() {
        assert!(possible.contains(t));
    }
    assert_eq!(certain.len(), 2, "copied keys are certain");
}
